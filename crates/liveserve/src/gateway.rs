//! The loopback TCP gateway: an epoll readiness loop in front of the
//! shared admission bank.
//!
//! ## Wire protocol (line-based, one session per connection)
//!
//! ```text
//! client → REQ <id> <api_idx> [key]\n
//! server → OK <id> <latency_us>\n     request completed end-to-end
//!          REJ <id> limit\n           shed at the entry token bucket
//!          REJ <id> shed\n            shed by the priority gate
//!          ERR <id>\n                 dropped at a full service queue
//!                                     (or the line was malformed; id 0)
//! ```
//!
//! The optional `key` marks the request as a coalescable read of that
//! resource: when the front door is configured, duplicate keyed reads
//! are answered from the single-flight cache (`OK` with the cached
//! payload) or parked behind the in-flight leader and answered when it
//! completes — each follower reporting its own measured latency.
//!
//! Responses are **not** ordered with respect to requests: a client may
//! pipeline many `REQ` lines and match replies by id.
//!
//! ## Event loops
//!
//! The thread-per-connection gateway this replaced spent its time in
//! per-line syscalls and context switches. Here, N **sharded
//! acceptor+worker event loops** (one per core by default) each own an
//! epoll [`Poller`]: every loop polls a clone of the listening socket,
//! and each accepted connection is assigned round-robin to exactly one
//! loop, which owns its entire lifetime — no cross-loop locking on the
//! request path.
//!
//! Per wakeup, a loop batches the whole pipeline:
//!
//! 1. **read** — drain readable sockets in 64 KiB chunks (bounded per
//!    connection per wakeup; level-triggered epoll re-arms leftovers);
//! 2. **wire-parse** — the [`LineDecoder`] frames requests across
//!    arbitrary segment boundaries and resyncs past oversized garbage;
//! 3. **admission** — one [`LiveAdmission`] lock admits the whole
//!    batch through the full stage pipeline — coalescing, priority
//!    gate, token bucket (the bucket costs ~7 ns/decision; the lock
//!    and clock reads are amortized across the batch);
//! 4. **response** — `REJ`/`ERR` lines and worker completions are
//!    appended to per-connection output buffers and flushed with one
//!    `write` per connection per wakeup, with partial-write carry.
//!
//! Workers hand completed jobs back to the owning loop through its
//! completion queue + [`Waker`] (see [`crate::executors`]).
//!
//! ## Backpressure
//!
//! Output buffers are bounded. A connection whose peer stops reading is
//! first **paused** (its read interest is dropped at half the cap, so a
//! pipelining client can no longer mint new work) and, if completions
//! still push the buffer past the cap, **disconnected** — one slow
//! consumer can neither stall other connections nor the control tick,
//! and can only ever hold `max_conn_output` bytes. Tokens are
//! generation-tagged, so a completion addressed to a closed (and
//! possibly reused) slot is dropped, never misdelivered.
//!
//! The `/metrics`+`/spans` HTTP listener rides loop 0's poller as just
//! another connection kind — the dedicated exposition thread is gone.

use crate::clock::WallClock;
use crate::executors::{Completion, Job, ReplySink, Routing};
use crate::front::LiveAdmission;
use crate::http::{self, MetricsHttp};
use crate::metrics::{FrontStage, LiveMetrics, LoopStage};
use crate::poller::{Interest, Poller, Waker};
use crate::wire::{LineDecoder, WireItem};
use cluster::front::PreVerdict;
use std::io::{self, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

pub use crate::wire::parse_request;

/// Shared state every event loop needs. The shutdown flag is the same
/// `Arc` the worker pool polls, so one store stops the world.
pub struct GatewayShared {
    pub admission: Arc<Mutex<LiveAdmission>>,
    pub clock: WallClock,
    pub metrics: Arc<LiveMetrics>,
    pub routing: Arc<Routing>,
    pub shutdown: Arc<AtomicBool>,
}

/// Event-loop tunables (resolved from [`crate::LiveConfig`]).
#[derive(Clone, Copy, Debug)]
pub struct LoopConfig {
    /// Number of event loops; the caller resolves `0 = auto` upstream.
    pub loops: usize,
    /// Per-connection pending-output cap in bytes. Reads pause at half
    /// of this; crossing it disconnects the laggard.
    pub max_conn_output: usize,
}

const TOK_WAKER: u64 = u64::MAX;
const TOK_LISTENER: u64 = u64::MAX - 1;
const TOK_METRICS: u64 = u64::MAX - 2;

/// Read chunk size; also the per-read syscall granularity.
const READ_CHUNK: usize = 64 * 1024;
/// Max read syscalls per connection per wakeup — a firehose connection
/// yields to its loop-mates; epoll re-arms whatever is left.
const READ_BUDGET: usize = 4;
/// An HTTP request head larger than this is not a scrape.
const MAX_HTTP_HEAD: usize = 16 * 1024;

/// Handle for poking a sibling loop: hand off an accepted connection
/// and wake it.
struct LoopHandle {
    injector: Sender<TcpStream>,
    waker: Waker,
}

/// The running event loops; owned by [`crate::LiveServer`].
pub struct EventLoops {
    wakers: Vec<Waker>,
    handles: Vec<JoinHandle<()>>,
}

impl EventLoops {
    /// Kick every loop out of `epoll_wait` (to observe shutdown).
    pub fn wake_all(&self) {
        for w in &self.wakers {
            w.wake();
        }
    }

    /// Wake and join all loops. The shutdown flag must already be up.
    pub fn join(self) {
        self.wake_all();
        for h in self.handles {
            let _ = h.join();
        }
    }
}

/// What a connection speaks.
enum ConnKind {
    /// The `REQ`/`OK`/`REJ`/`ERR` request protocol.
    Wire(LineDecoder),
    /// One-shot HTTP exposition (`/metrics`, `/spans`); buffers the
    /// request head until blank line, answers, closes.
    Http(Vec<u8>),
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    token: u64,
    kind: ConnKind,
    /// Pending output; `out[out_start..]` is unwritten.
    out: Vec<u8>,
    out_start: usize,
    /// Interest currently registered with the poller.
    armed: Interest,
    /// Read side muted for backpressure (or post-request for HTTP).
    paused: bool,
    close_after_flush: bool,
    /// Already queued in the loop's dirty list this wakeup.
    dirty: bool,
}

impl Conn {
    fn pending_out(&self) -> usize {
        self.out.len() - self.out_start
    }

    fn push_out(&mut self, bytes: &[u8]) {
        // Compact lazily: reclaim the written prefix once it dominates.
        if self.out_start > 4096 && self.out_start * 2 > self.out.len() {
            self.out.drain(..self.out_start);
            self.out_start = 0;
        }
        self.out.extend_from_slice(bytes);
    }
}

/// A parsed request waiting for the batched admission decision.
struct PendingReq {
    slot: usize,
    token: u64,
    id: u64,
    api: usize,
    /// Coalescing resource key (the wire line's optional fourth token).
    key: Option<u64>,
    /// Causal-tracing opt-in (the wire line's optional fifth token).
    trace: Option<u64>,
}

/// The batched admission verdict for one pending request, computed
/// under the single per-wakeup lock; all bookkeeping (metrics, spans,
/// output buffers) happens after the lock is released.
enum Verdict {
    /// Answered inline from the single-flight cache.
    CacheHit(Arc<str>),
    /// Parked behind the in-flight leader; answered at flight settle.
    Parked,
    /// Shed by the priority gate before the token bucket.
    Shed,
    /// Rejected by the entry token bucket.
    RejectEntry,
    /// Admitted into the worker pool; `flight` is set when this request
    /// leads a coalesced read.
    Submit { flight: Option<(u32, u64)> },
}

/// One sharded acceptor+worker event loop.
struct EventLoop {
    idx: usize,
    poller: Poller,
    waker: Waker,
    listener: TcpListener,
    /// Loop 0 only: the exposition listener and its route state.
    metrics_listener: Option<TcpListener>,
    http: Option<Arc<MetricsHttp>>,
    shared: Arc<GatewayShared>,
    comp_tx: Sender<Completion>,
    comp_rx: Receiver<Completion>,
    inj_rx: Receiver<TcpStream>,
    peers: Arc<Vec<LoopHandle>>,
    rr: Arc<AtomicUsize>,
    max_out: usize,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_gen: u32,
    scratch: Vec<u8>,
    items: Vec<WireItem>,
    pending: Vec<PendingReq>,
    dirty: Vec<usize>,
    closing: Vec<usize>,
}

/// Spawn `cfg.loops` event loops over a bound gateway listener and the
/// exposition listener (which rides loop 0).
pub fn start_event_loops(
    listener: TcpListener,
    metrics_listener: TcpListener,
    http: Arc<MetricsHttp>,
    shared: &Arc<GatewayShared>,
    cfg: LoopConfig,
) -> io::Result<EventLoops> {
    let n = cfg.loops.max(1);
    listener.set_nonblocking(true)?;
    metrics_listener.set_nonblocking(true)?;
    let rr = Arc::new(AtomicUsize::new(0));
    let mut loops = Vec::with_capacity(n);
    let mut handles_for_peers = Vec::with_capacity(n);
    let mut wakers = Vec::with_capacity(n);
    for i in 0..n {
        let poller = Poller::new()?;
        let waker = Waker::new()?;
        waker.register(&poller, TOK_WAKER)?;
        let l = listener.try_clone()?;
        poller.add(l.as_raw_fd(), TOK_LISTENER, Interest::READ)?;
        let (metrics_l, http_state) = if i == 0 {
            poller.add(metrics_listener.as_raw_fd(), TOK_METRICS, Interest::READ)?;
            (Some(metrics_listener.try_clone()?), Some(Arc::clone(&http)))
        } else {
            (None, None)
        };
        let (inj_tx, inj_rx) = channel();
        let (comp_tx, comp_rx) = channel();
        handles_for_peers.push(LoopHandle {
            injector: inj_tx,
            waker: waker.clone(),
        });
        wakers.push(waker.clone());
        loops.push(EventLoop {
            idx: i,
            poller,
            waker,
            listener: l,
            metrics_listener: metrics_l,
            http: http_state,
            shared: Arc::clone(shared),
            comp_tx,
            comp_rx,
            inj_rx,
            peers: Arc::new(Vec::new()), // replaced below
            rr: Arc::clone(&rr),
            max_out: cfg.max_conn_output.max(4096),
            conns: Vec::new(),
            free: Vec::new(),
            next_gen: 0,
            scratch: vec![0u8; READ_CHUNK],
            items: Vec::new(),
            pending: Vec::new(),
            dirty: Vec::new(),
            closing: Vec::new(),
        });
    }
    let peers = Arc::new(handles_for_peers);
    let handles = loops
        .into_iter()
        .map(|mut el| {
            el.peers = Arc::clone(&peers);
            std::thread::Builder::new()
                .name(format!("live-loop-{}", el.idx))
                .spawn(move || el.run())
                .expect("spawn event loop")
        })
        .collect();
    Ok(EventLoops { wakers, handles })
}

impl EventLoop {
    fn run(mut self) {
        let mut events = Vec::new();
        while !self.shared.shutdown.load(Ordering::Relaxed) {
            if self
                .poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .is_err()
            {
                break;
            }
            // Per-stage batch profiling: one `Instant` pair per phase
            // per wakeup, never per request. Idle wakeups (poll timeout,
            // nothing ready) record nothing, so the histograms measure
            // work, not waiting.
            let busy = !events.is_empty();
            let t0 = busy.then(Instant::now);
            for ev in &events {
                match ev.token {
                    TOK_WAKER => self.waker.drain(),
                    TOK_LISTENER => self.accept_burst(),
                    TOK_METRICS => self.accept_http_burst(),
                    token => self.on_conn_event(token, ev.readable, ev.writable, ev.hangup),
                }
            }
            self.adopt_injected();
            self.drain_completions();
            let had_pending = !self.pending.is_empty();
            let t1 = if let Some(t0) = t0 {
                let t1 = Instant::now();
                self.shared
                    .metrics
                    .on_loop_stage(LoopStage::ReadParse, t1 - t0);
                Some(t1)
            } else {
                had_pending.then(Instant::now)
            };
            self.admit_pending();
            // Queue-full `ERR`s from submits land on the completion
            // queue synchronously — fold them into this wakeup's flush.
            self.drain_completions();
            let had_dirty = !self.dirty.is_empty();
            let t2 = match (t1, had_pending) {
                (Some(t1), true) => {
                    let t2 = Instant::now();
                    self.shared.metrics.on_loop_stage(LoopStage::Admit, t2 - t1);
                    Some(t2)
                }
                (t1, _) => t1,
            };
            self.flush_dirty();
            self.do_close();
            if let (Some(t2), true) = (t2, had_dirty) {
                self.shared
                    .metrics
                    .on_loop_stage(LoopStage::Write, Instant::now() - t2);
            }
        }
    }

    // ---- accept --------------------------------------------------------

    /// Accept until `WouldBlock`; every loop polls the shared listener
    /// (sharded accept), and ownership is dealt round-robin so
    /// connections spread evenly across loops regardless of which loop
    /// won the race to accept.
    fn accept_burst(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let n = self.peers.len();
                    let target = if n <= 1 {
                        self.idx
                    } else {
                        self.rr.fetch_add(1, Ordering::Relaxed) % n
                    };
                    if target == self.idx {
                        self.register(stream, ConnKind::Wire(LineDecoder::new()));
                    } else {
                        let peer = &self.peers[target];
                        if peer.injector.send(stream).is_ok() {
                            peer.waker.wake();
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn accept_http_burst(&mut self) {
        loop {
            let Some(l) = self.metrics_listener.as_ref() else {
                return;
            };
            match l.accept() {
                Ok((stream, _)) => self.register(stream, ConnKind::Http(Vec::new())),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    /// Take ownership of connections handed over by sibling acceptors.
    fn adopt_injected(&mut self) {
        while let Ok(stream) = self.inj_rx.try_recv() {
            self.register(stream, ConnKind::Wire(LineDecoder::new()));
        }
    }

    fn register(&mut self, stream: TcpStream, kind: ConnKind) {
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let slot = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.conns.len() - 1
        });
        self.next_gen = self.next_gen.wrapping_add(1);
        let token = (u64::from(self.next_gen) << 32) | slot as u64;
        if self
            .poller
            .add(stream.as_raw_fd(), token, Interest::READ)
            .is_err()
        {
            self.free.push(slot);
            return;
        }
        self.conns[slot] = Some(Conn {
            stream,
            token,
            kind,
            out: Vec::new(),
            out_start: 0,
            armed: Interest::READ,
            paused: false,
            close_after_flush: false,
            dirty: false,
        });
    }

    // ---- readiness dispatch -------------------------------------------

    fn on_conn_event(&mut self, token: u64, readable: bool, writable: bool, hangup: bool) {
        let slot = (token & u64::from(u32::MAX)) as usize;
        let live = self
            .conns
            .get(slot)
            .and_then(|c| c.as_ref())
            .map(|c| c.token);
        // A stale event for a connection closed earlier this wakeup (or
        // a since-reused slot) must not touch the new occupant.
        if live != Some(token) {
            return;
        }
        if readable || hangup {
            self.read_conn(slot);
        }
        if writable {
            self.mark_dirty(slot);
        }
    }

    fn mark_dirty(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].as_mut() {
            if !conn.dirty {
                conn.dirty = true;
                self.dirty.push(slot);
            }
        }
    }

    /// Drain a readable connection (bounded) and run the wire or HTTP
    /// state machine over the bytes.
    fn read_conn(&mut self, slot: usize) {
        let num_apis = self.shared.routing.stages.len();
        let mut newly_dirty = false;
        let mut close_now = false;
        for _ in 0..READ_BUDGET {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            if conn.paused {
                break;
            }
            let n = match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    // Peer finished sending. Flush what we owe and go.
                    if conn.pending_out() > 0 {
                        conn.close_after_flush = true;
                        conn.paused = true;
                        newly_dirty = true;
                    } else {
                        close_now = true;
                    }
                    break;
                }
                Ok(n) => n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    close_now = true;
                    break;
                }
            };
            match &mut conn.kind {
                ConnKind::Wire(decoder) => {
                    decoder.feed(&self.scratch[..n], &mut self.items);
                    let token = conn.token;
                    for item in self.items.drain(..) {
                        match item {
                            WireItem::Request {
                                id,
                                api,
                                key,
                                trace,
                            } if api < num_apis => {
                                self.pending.push(PendingReq {
                                    slot,
                                    token,
                                    id,
                                    api,
                                    key,
                                    trace,
                                });
                            }
                            WireItem::Request { id, .. } => {
                                conn.push_out(format!("ERR {id}\n").as_bytes());
                                newly_dirty = true;
                            }
                            WireItem::Malformed => {
                                conn.push_out(b"ERR 0\n");
                                newly_dirty = true;
                            }
                        }
                    }
                    // Backpressure, stage 1: a peer that pipelines but
                    // does not read loses its read interest before its
                    // replies can pile past the cap.
                    if conn.pending_out() >= self.max_out / 2 {
                        conn.paused = true;
                        newly_dirty = true;
                        break;
                    }
                }
                ConnKind::Http(head) => {
                    head.extend_from_slice(&self.scratch[..n]);
                    if head.len() > MAX_HTTP_HEAD {
                        close_now = true;
                        break;
                    }
                    if let Some(line_end) = http_head_complete(head) {
                        let request_line = String::from_utf8_lossy(&head[..line_end]).into_owned();
                        let http = self.http.as_ref().expect("http conns live on loop 0");
                        let (status, ctype, body) = http::route(&request_line, http);
                        let response = http::response_bytes(status, ctype, &body);
                        conn.out = response;
                        conn.out_start = 0;
                        conn.paused = true;
                        conn.close_after_flush = true;
                        newly_dirty = true;
                        break;
                    }
                }
            }
            if n < READ_CHUNK {
                break; // short read: the socket is drained
            }
        }
        if close_now {
            self.closing.push(slot);
        } else if newly_dirty {
            self.mark_dirty(slot);
        }
    }

    // ---- completions ---------------------------------------------------

    /// Append worker completions to their owning connections' output.
    fn drain_completions(&mut self) {
        while let Ok(c) = self.comp_rx.try_recv() {
            let slot = (c.token & u64::from(u32::MAX)) as usize;
            let Some(conn) = self.conns.get_mut(slot).and_then(|s| s.as_mut()) else {
                continue;
            };
            if conn.token != c.token {
                continue; // connection died; slot may be someone else now
            }
            conn.push_out(c.line.as_bytes());
            if !conn.dirty {
                conn.dirty = true;
                self.dirty.push(slot);
            }
        }
    }

    // ---- batched admission --------------------------------------------

    /// One admission lock and one clock read for every request this
    /// wakeup produced, then per-verdict bookkeeping.
    ///
    /// The lock scope runs the whole stage pipeline per request —
    /// coalescing lookup, priority gate, token bucket, and (for a
    /// leading read) flight registration — but *no* I/O or metric
    /// work: responses, spans and counters happen after release.
    fn admit_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.pending);
        let metrics = Arc::clone(&self.shared.metrics);
        let now = self.shared.clock.now();
        for p in &pending {
            metrics.on_offered(p.api);
        }
        let mut verdicts = Vec::with_capacity(pending.len());
        // Front-stage profiling samples the *first* request of the batch
        // only — a bounded number of extra clock reads per wakeup.
        let mut front_door_sample: Option<Duration> = None;
        let mut bucket_sample: Option<Duration> = None;
        {
            let mut adm = self.shared.admission.lock().expect("admission lock");
            let LiveAdmission { entry, front } = &mut *adm;
            for (i, p) in pending.iter().enumerate() {
                let api = cluster::ApiId(p.api as u32);
                let sample = i == 0;
                let lead = if let Some(front) = front.as_mut() {
                    let business = front.business(p.api);
                    let user = front.user_level(p.id);
                    let t_fd = sample.then(Instant::now);
                    let pre = front.door.pre_admit(api, p.key, business, user, now);
                    if let Some(t_fd) = t_fd {
                        front_door_sample = Some(t_fd.elapsed());
                    }
                    match pre {
                        PreVerdict::CacheHit(payload) => {
                            verdicts.push(Verdict::CacheHit(payload));
                            continue;
                        }
                        PreVerdict::Follower { .. } => {
                            let reply =
                                ReplySink::new(p.token, self.comp_tx.clone(), self.waker.clone());
                            front.park(api.0, p.key.expect("followers carry a key"), p.id, reply);
                            verdicts.push(Verdict::Parked);
                            continue;
                        }
                        PreVerdict::Shed { .. } => {
                            verdicts.push(Verdict::Shed);
                            continue;
                        }
                        PreVerdict::Proceed { lead } => lead,
                    }
                } else {
                    false
                };
                let t_tb = sample.then(Instant::now);
                let admitted = entry.try_admit(api, now);
                if let Some(t_tb) = t_tb {
                    bucket_sample = Some(t_tb.elapsed());
                }
                if admitted {
                    let flight = if lead {
                        let key = p.key.expect("a leading read carries a key");
                        front
                            .as_mut()
                            .expect("lead implies a front door")
                            .door
                            .begin_flight(api, key, p.id);
                        Some((api.0, key))
                    } else {
                        None
                    };
                    verdicts.push(Verdict::Submit { flight });
                } else {
                    verdicts.push(Verdict::RejectEntry);
                }
            }
        }
        if let Some(d) = front_door_sample {
            metrics.on_front_stage(FrontStage::FrontDoor, d);
        }
        if let Some(d) = bucket_sample {
            metrics.on_front_stage(FrontStage::TokenBucket, d);
        }
        let accepted = Instant::now();
        let slo = self.shared.routing.slo;
        let at = now.as_secs_f64();
        let shard = self.idx as u32;
        // Trace events cost nothing for untraced requests (one `Option`
        // check); a traced request takes one short mutex push per stage.
        let trace_ev = |p: &PendingReq, stage: &str, outcome: &str| {
            p.trace.map(|id| obs::TraceEvent {
                trace: id,
                request: p.id,
                api: p.api as u32,
                shard,
                stage: stage.into(),
                outcome: outcome.into(),
                at,
                dur: 0.0,
            })
        };
        for (p, verdict) in pending.iter().zip(&verdicts) {
            match verdict {
                Verdict::Submit { flight } => {
                    metrics.on_admitted(p.api);
                    if let Some(ev) = trace_ev(p, "token_bucket", "admitted") {
                        metrics.record_trace(ev);
                    }
                    let reply = ReplySink::new(p.token, self.comp_tx.clone(), self.waker.clone());
                    self.shared.routing.submit(
                        Job {
                            id: p.id,
                            api: p.api,
                            accepted,
                            enqueued: accepted,
                            stage: 0,
                            flight: *flight,
                            trace: p.trace,
                            reply,
                        },
                        &metrics,
                    );
                }
                Verdict::CacheHit(payload) => {
                    // A cached read never touches the worker pool: it is
                    // admitted and completed in the same wakeup, with
                    // effectively zero service latency.
                    metrics.on_admitted(p.api);
                    metrics.on_complete_traced(p.api, Duration::ZERO, slo, p.trace);
                    if let Some(ev) = trace_ev(p, "front_door", "cache_hit") {
                        metrics.record_trace(ev);
                    }
                    if let Some(ev) = trace_ev(p, "reply", "sent") {
                        metrics.record_trace(ev);
                    }
                    self.push_to_conn(p.slot, p.token, &format!("OK {} {payload}\n", p.id));
                }
                Verdict::Parked => {
                    // Counted admitted now; completion metrics land when
                    // the leader's flight settles (`front::settle_flight`).
                    metrics.on_admitted(p.api);
                    if let Some(ev) = trace_ev(p, "front_door", "follower") {
                        metrics.record_trace(ev);
                    }
                }
                Verdict::Shed | Verdict::RejectEntry => {
                    metrics.on_rejected(p.api);
                    // Zero-duration rejection marker at the API's entry
                    // service — the same span the simulator's gateway
                    // records, so the sim2real overlay can compare
                    // admission decisions span-for-span.
                    if let Some(entry) = self.shared.routing.stages[p.api].first() {
                        metrics.record_span(cluster::tracing::Span {
                            request: p.id,
                            api: cluster::ApiId(p.api as u32),
                            service: cluster::ServiceId(entry.service as u32),
                            parent: None,
                            start: now,
                            end: now,
                            verdict: cluster::tracing::SpanVerdict::RejectedAtEntry,
                        });
                    }
                    let class = if matches!(verdict, Verdict::Shed) {
                        "shed"
                    } else {
                        "limit"
                    };
                    let ev = if matches!(verdict, Verdict::Shed) {
                        trace_ev(p, "priority_gate", "shed")
                    } else {
                        trace_ev(p, "token_bucket", "rejected")
                    };
                    if let Some(ev) = ev {
                        metrics.record_trace(ev);
                    }
                    self.push_to_conn(p.slot, p.token, &format!("REJ {} {class}\n", p.id));
                }
            }
        }
        let mut pending = pending;
        pending.clear();
        self.pending = pending;
    }

    /// Append a response line to a connection's output buffer if the
    /// connection is still the one the token was minted for.
    fn push_to_conn(&mut self, slot: usize, token: u64, line: &str) {
        if let Some(conn) = self.conns.get_mut(slot).and_then(|s| s.as_mut()) {
            if conn.token == token {
                conn.push_out(line.as_bytes());
                if !conn.dirty {
                    conn.dirty = true;
                    self.dirty.push(slot);
                }
            }
        }
    }

    // ---- write side ----------------------------------------------------

    fn flush_dirty(&mut self) {
        while let Some(slot) = self.dirty.pop() {
            self.flush_conn(slot);
        }
    }

    /// Write as much pending output as the socket accepts, then settle
    /// backpressure state and poller interest.
    fn flush_conn(&mut self, slot: usize) {
        let max_out = self.max_out;
        let Some(conn) = self.conns.get_mut(slot).and_then(|s| s.as_mut()) else {
            return;
        };
        conn.dirty = false;
        while conn.out_start < conn.out.len() {
            match conn.stream.write(&conn.out[conn.out_start..]) {
                Ok(0) => {
                    self.closing.push(slot);
                    return;
                }
                Ok(n) => conn.out_start += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.closing.push(slot);
                    return;
                }
            }
        }
        let pending = conn.pending_out();
        if pending == 0 {
            conn.out.clear();
            conn.out_start = 0;
            if conn.close_after_flush {
                self.closing.push(slot);
                return;
            }
            // Backpressure, stage 1 release: the laggard caught up.
            if conn.paused {
                conn.paused = false;
            }
        } else if pending > max_out {
            // Backpressure, stage 2: the cap is a promise — a peer that
            // will not read its replies is disconnected, not buffered
            // without bound.
            self.closing.push(slot);
            return;
        }
        let desired = Interest {
            readable: !conn.paused && !conn.close_after_flush,
            writable: conn.pending_out() > 0,
        };
        if desired != conn.armed
            && self
                .poller
                .modify(conn.stream.as_raw_fd(), conn.token, desired)
                .is_ok()
        {
            conn.armed = desired;
        }
    }

    fn do_close(&mut self) {
        while let Some(slot) = self.closing.pop() {
            if let Some(conn) = self.conns[slot].take() {
                let _ = self.poller.remove(conn.stream.as_raw_fd());
                self.free.push(slot);
                // dropping `conn.stream` closes the socket
            }
        }
    }
}

/// If the request head is complete (blank line seen), return the length
/// of the request line (up to but excluding the first newline).
fn http_head_complete(head: &[u8]) -> Option<usize> {
    let complete =
        head.windows(4).any(|w| w == b"\r\n\r\n") || head.windows(2).any(|w| w == b"\n\n");
    if !complete {
        return None;
    }
    Some(head.iter().position(|&b| b == b'\n').unwrap_or(head.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn http_head_completion_detects_terminators() {
        assert_eq!(http_head_complete(b"GET /metrics HTTP/1.1\r\n"), None);
        // The request line runs up to the first `\n`; the trailing `\r`
        // is whitespace to the router.
        assert_eq!(
            http_head_complete(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"),
            Some(22)
        );
        assert_eq!(http_head_complete(b"GET /spans HTTP/1.0\n\n"), Some(19));
        assert_eq!(http_head_complete(b""), None);
    }
}
