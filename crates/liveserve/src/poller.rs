//! A minimal std-only epoll facade — the readiness engine under the
//! event-loop gateway.
//!
//! No `libc` crate: the four syscall wrappers the poller needs
//! (`epoll_create1`, `epoll_ctl`, `epoll_wait`, `eventfd`) are declared
//! as plain FFI prototypes and resolve against the C library std
//! already links on Linux. File descriptors are owned through
//! [`std::os::fd::OwnedFd`], so every registration target closes on
//! drop and nothing leaks across a panic.
//!
//! The surface is deliberately mio-shaped but tiny:
//!
//! * [`Poller`] — `add` / `modify` / `remove` a fd under a `u64` token
//!   with an [`Interest`] (readable and/or writable), then [`Poller::wait`]
//!   for level-triggered [`Event`]s;
//! * [`Waker`] — an eventfd registered like any other fd; any thread
//!   (worker completions, shutdown) can [`Waker::wake`] the loop out of
//!   `epoll_wait`, and the loop [`Waker::drain`]s it on wakeup. Writes
//!   coalesce in the eventfd counter, so a burst of completions costs
//!   one wakeup.
//!
//! Level-triggered mode keeps the state machine simple: a connection
//! with unread input or unflushed output keeps firing until the gateway
//! catches up, so a bounded per-wakeup read budget cannot lose data.

use std::fs::File;
use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EFD_NONBLOCK: i32 = 0o4000;
const EFD_CLOEXEC: i32 = 0o2000000;

/// Mirror of the kernel's `struct epoll_event`. Packed on x86-64, where
/// the kernel ABI leaves the 64-bit payload unaligned.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// What a registration wants to be woken for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };

    fn mask(self) -> u32 {
        let mut m = EPOLLRDHUP;
        if self.readable {
            m |= EPOLLIN;
        }
        if self.writable {
            m |= EPOLLOUT;
        }
        m
    }
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    /// `EPOLLERR`/`EPOLLHUP`/`EPOLLRDHUP` — the peer is gone or going;
    /// the owner should read to EOF and close.
    pub hangup: bool,
}

/// A level-triggered epoll instance.
pub struct Poller {
    ep: OwnedFd,
    /// Kernel-filled scratch; sized for one syscall's worth of events.
    buf: Vec<EpollEvent>,
}

impl Poller {
    pub fn new() -> io::Result<Poller> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poller {
            ep: unsafe { OwnedFd::from_raw_fd(fd) },
            buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest.mask(),
            data: token,
        };
        cvt(unsafe { epoll_ctl(self.ep.as_raw_fd(), op, fd, &mut ev) })?;
        Ok(())
    }

    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    pub fn remove(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = EpollEvent { events: 0, data: 0 };
        cvt(unsafe { epoll_ctl(self.ep.as_raw_fd(), EPOLL_CTL_DEL, fd, &mut ev) })?;
        Ok(())
    }

    /// Block up to `timeout` for readiness; `events` is cleared and
    /// refilled. A signal-interrupted wait returns zero events.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let ms = timeout.map_or(-1i32, |d| d.as_millis().min(i32::MAX as u128) as i32);
        let n = unsafe {
            epoll_wait(
                self.ep.as_raw_fd(),
                self.buf.as_mut_ptr(),
                self.buf.len() as i32,
                ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for e in &self.buf[..n as usize] {
            // Copy out of the packed struct before using (no refs into it).
            let bits = e.events;
            let token = e.data;
            events.push(Event {
                token,
                readable: bits & EPOLLIN != 0,
                writable: bits & EPOLLOUT != 0,
                hangup: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
            });
        }
        Ok(())
    }
}

/// Cross-thread wakeup for a [`Poller`], backed by a non-blocking
/// eventfd. Clone freely: all clones share the counter, and concurrent
/// wakes coalesce into one readiness event.
///
/// The `signaled` flag keeps bursts cheap: once one wake's eventfd
/// write is in flight, further wakes are a single uncontended atomic
/// swap and no syscall, until the owning loop [`Waker::drain`]s. A
/// worker finishing 1000 jobs costs one `write(2)`, not 1000.
#[derive(Clone)]
pub struct Waker {
    file: Arc<File>,
    signaled: Arc<AtomicBool>,
}

impl Waker {
    pub fn new() -> io::Result<Waker> {
        let fd = cvt(unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) })?;
        let owned = unsafe { OwnedFd::from_raw_fd(fd) };
        Ok(Waker {
            file: Arc::new(File::from(owned)),
            signaled: Arc::new(AtomicBool::new(false)),
        })
    }

    /// Register this waker in a poller under `token` (read interest).
    pub fn register(&self, poller: &Poller, token: u64) -> io::Result<()> {
        poller.add(self.file.as_raw_fd(), token, Interest::READ)
    }

    /// Wake the owning loop. Infallible by design: the only failure mode
    /// of a non-blocking eventfd write is a full counter, which still
    /// leaves the fd readable.
    pub fn wake(&self) {
        if !self.signaled.swap(true, Ordering::AcqRel) {
            let _ = (&*self.file).write(&1u64.to_ne_bytes());
        }
    }

    /// Reset the counter so the level-triggered registration goes quiet.
    /// The flag clears *before* the read, so a wake racing the drain
    /// either lands in this drain or pays the write and re-arms the fd —
    /// never goes silent.
    pub fn drain(&self) {
        self.signaled.store(false, Ordering::Release);
        let mut buf = [0u8; 8];
        while matches!((&*self.file).read(&mut buf), Ok(n) if n > 0) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn poller_reports_readable_after_peer_write() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");

        let mut poller = Poller::new().expect("poller");
        poller
            .add(server.as_raw_fd(), 7, Interest::READ)
            .expect("add");
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert!(events.is_empty(), "no data yet: {events:?}");

        client.write_all(b"x").expect("write");
        poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .expect("wait");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        // Level-triggered: unread data keeps firing.
        poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .expect("wait");
        assert_eq!(events.len(), 1, "level-triggered re-arm");

        poller.remove(server.as_raw_fd()).expect("remove");
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert!(events.is_empty(), "deregistered fd stays silent");
    }

    #[test]
    fn writable_interest_fires_and_modify_switches_it_off() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let _client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");

        let mut poller = Poller::new().expect("poller");
        poller
            .add(
                server.as_raw_fd(),
                1,
                Interest {
                    readable: false,
                    writable: true,
                },
            )
            .expect("add");
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .expect("wait");
        assert!(events.iter().any(|e| e.token == 1 && e.writable));

        poller
            .modify(server.as_raw_fd(), 1, Interest::READ)
            .expect("modify");
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert!(events.is_empty(), "idle socket with read-only interest");
    }

    #[test]
    fn waker_coalesces_and_drains() {
        let mut poller = Poller::new().expect("poller");
        let waker = Waker::new().expect("waker");
        waker.register(&poller, 99).expect("register");
        // Many wakes from another thread → one readiness event.
        let w2 = waker.clone();
        std::thread::spawn(move || {
            for _ in 0..64 {
                w2.wake();
            }
        })
        .join()
        .expect("join");
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .expect("wait");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 99);
        waker.drain();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert!(events.is_empty(), "drained waker goes quiet");
    }
}
