//! shardrun — N real gateways, one logical TopFull controller.
//!
//! The live analogue of `topfull::ShardedHarness`: every shard is a full
//! [`LiveServer`] (own TCP gateway, worker pool and metric windows), and
//! one controller runs against the *merged* observation each tick. The
//! same shard plane as the simulator —
//! [`topfull::ShardPlane`] for membership/aggregation/quota splits and
//! [`topfull::ShardLocalGuard`] for controller-loss degradation — sits
//! between the servers and the controller, so failover behaviour is
//! byte-identical in kind between sim and live.
//!
//! Chaos hooks:
//!
//! * **Shard kill** — [`ShardedLiveConfig::kill`] terminates one server
//!   abruptly mid-run ([`LiveServer::kill`], the in-process SIGKILL).
//!   Its load generator is stopped and the surviving shards' generators
//!   are restarted with the dead shard's traffic share redistributed —
//!   client-side failover. The plane strikes the shard out after
//!   `strike_out` silent ticks and redistributes its quota.
//! * **Controller loss** — [`ShardedLiveConfig::controller_loss`]
//!   suppresses the logical controller for a window; every shard's
//!   local guard holds last-good limits through the TTL, then degrades
//!   into the bounded MIMD fallback. Never fail-open.

use crate::loadgen::{value_at, ClosedLoopSpec, LoadGen, OpenLoopArm};
use crate::{LiveConfig, LiveRunResult, LiveServer, LiveTick};
use cluster::observe::ClusterObservation;
use cluster::{ApiId, Controller, RateLimitUpdate, Topology};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};
use topfull::{
    merge_observations, GuardStats, ShardLocalGuard, ShardPlane, ShardPlaneConfig, ShardPlaneStats,
};

/// Configuration of a sharded live run.
#[derive(Clone)]
pub struct ShardedLiveConfig {
    /// Number of gateway shards (each a full [`LiveServer`]).
    pub shards: usize,
    /// Per-shard live config. Shard 0 binds `port`/`metrics_port` as
    /// given; the other shards always take ephemeral ports.
    pub live: LiveConfig,
    /// Shard plane tunables (strike-out, re-entry ramp, TTL, …).
    pub plane: ShardPlaneConfig,
    /// `(shard, t_secs)`: SIGKILL-style termination of one shard.
    pub kill: Option<(usize, f64)>,
    /// `[from, until)` seconds during which the logical controller is
    /// unreachable; shard-local guards take over.
    pub controller_loss: Option<(f64, f64)>,
}

impl ShardedLiveConfig {
    pub fn new(shards: usize, live: LiveConfig) -> Self {
        ShardedLiveConfig {
            shards,
            live,
            plane: ShardPlaneConfig::default(),
            kill: None,
            controller_loss: None,
        }
    }
}

/// Outcome of a sharded live run.
pub struct ShardedLiveResult {
    /// Merged-observation tick series (the logical controller's view).
    pub result: LiveRunResult,
    pub plane_stats: ShardPlaneStats,
    /// Summed over shards.
    pub guard_stats: GuardStats,
    /// Which shard was killed, if any.
    pub killed: Option<usize>,
}

/// N live gateway shards under one logical controller.
pub struct ShardedLive {
    cfg: ShardedLiveConfig,
    servers: Vec<Option<LiveServer>>,
    gens: Vec<Option<LoadGen>>,
    plane: ShardPlane,
    guards: Vec<ShardLocalGuard>,
    /// Per-shard per-API entry quotas currently in force.
    quotas: Vec<Vec<f64>>,
    /// Last controller-pushed global per-API limits.
    globals: Vec<f64>,
    num_apis: usize,
    api_names: Vec<String>,
    /// Total (unsplit) workload, kept for failover re-splits.
    closed: Option<ClosedLoopSpec>,
    arms: Vec<OpenLoopArm>,
    killed: Option<usize>,
}

/// Scale every value of a step schedule by `k` (times stay put).
fn scale_steps(steps: &[(f64, f64)], k: f64) -> Vec<(f64, f64)> {
    steps.iter().map(|&(at, v)| (at, v * k)).collect()
}

/// Re-anchor a step schedule so a generator started at absolute time
/// `dt` sees the same absolute timeline: the value in force at `dt`
/// becomes the new t=0 baseline and later steps shift left.
fn shift_steps(steps: &[(f64, f64)], dt: f64) -> Vec<(f64, f64)> {
    let mut out = vec![(0.0, value_at(steps, dt))];
    for &(at, v) in steps {
        if at > dt {
            out.push((at - dt, v));
        }
    }
    out
}

impl ShardedLive {
    /// Start all shards and their load generators. The `closed` spec
    /// and `arms` describe the TOTAL offered load; each of the N shards
    /// receives a `1/N` share (client-side affinity).
    pub fn start(
        topo: &Topology,
        cfg: ShardedLiveConfig,
        closed: Option<ClosedLoopSpec>,
        arms: Vec<OpenLoopArm>,
    ) -> std::io::Result<Self> {
        assert!(cfg.shards > 0, "at least one shard");
        let mut servers = Vec::with_capacity(cfg.shards);
        for s in 0..cfg.shards {
            let mut live = cfg.live;
            if s != 0 {
                live.port = 0;
                live.metrics_port = 0;
            }
            servers.push(Some(LiveServer::start(topo, live)?));
        }
        // One scrape shows the whole fleet: every shard's instruments
        // also register into shard 0's registry under a `shard` label.
        let reg = Arc::clone(servers[0].as_ref().expect("shard 0").registry());
        for (s, srv) in servers.iter().enumerate() {
            let srv = srv.as_ref().expect("just started");
            srv.shared.metrics.register_into_sharded(&reg, &srv.desc, s);
        }
        let num_apis = topo.num_apis();
        let api_names = servers[0].as_ref().expect("shard 0").desc.api_names.clone();
        let share = 1.0 / cfg.shards as f64;
        let mut gens = Vec::with_capacity(cfg.shards);
        for srv in &servers {
            let addr = srv.as_ref().expect("just started").addr();
            gens.push(Some(start_gen(addr, &closed, &arms, share, 0.0)?));
        }
        let plane = ShardPlane::new(cfg.shards, cfg.plane);
        let guards = (0..cfg.shards)
            .map(|s| ShardLocalGuard::new(s as u32, cfg.plane))
            .collect();
        Ok(ShardedLive {
            quotas: vec![vec![f64::INFINITY; num_apis]; cfg.shards],
            globals: vec![f64::INFINITY; num_apis],
            plane,
            guards,
            servers,
            gens,
            num_apis,
            api_names,
            closed,
            arms,
            killed: None,
            cfg,
        })
    }

    /// Route membership/aggregation/split/fallback events — and every
    /// shard's SLO burn transitions — to `journal`.
    pub fn attach_journal(&mut self, journal: Arc<obs::Journal>) {
        self.plane.attach_journal(Arc::clone(&journal));
        for g in &mut self.guards {
            g.attach_journal(Arc::clone(&journal));
        }
        for srv in self.servers.iter_mut().flatten() {
            srv.attach_journal(Arc::clone(&journal));
        }
    }

    /// Replace every shard's burn-rate monitor config (each shard
    /// watches its own traffic slice).
    pub fn set_slo_config(&mut self, cfg: obs::SloConfig) {
        for srv in self.servers.iter_mut().flatten() {
            srv.set_slo_config(cfg);
        }
    }

    /// Trace events from every living shard's trace log, shard order.
    pub fn traces(&self) -> Vec<obs::TraceEvent> {
        self.servers
            .iter()
            .flatten()
            .flat_map(|s| s.traces())
            .collect()
    }

    /// Shard 0's exposition endpoint (all shards' series, `shard` label).
    pub fn metrics_addr(&self) -> SocketAddr {
        self.servers[0]
            .as_ref()
            .expect("shard 0 lives")
            .metrics_addr()
    }

    /// Gateway address of one shard (`None` once killed).
    pub fn shard_addr(&self, shard: usize) -> Option<SocketAddr> {
        self.servers[shard].as_ref().map(|s| s.addr())
    }

    /// Kill `shard` abruptly and fail its traffic over to survivors.
    fn kill_shard(&mut self, shard: usize, t: f64) {
        let Some(server) = self.servers[shard].take() else {
            return;
        };
        if let Some(g) = self.gens[shard].take() {
            g.stop();
        }
        server.kill();
        self.killed = Some(shard);
        // Client failover: restart the survivors' generators with the
        // dead shard's share redistributed, schedules re-anchored to
        // the kill instant so the workload timeline continues.
        let survivors = self.servers.iter().filter(|s| s.is_some()).count();
        if survivors == 0 {
            return;
        }
        let share = 1.0 / survivors as f64;
        for s in 0..self.cfg.shards {
            let Some(srv) = self.servers[s].as_ref() else {
                continue;
            };
            let addr = srv.addr();
            if let Some(g) = self.gens[s].take() {
                g.stop();
            }
            match start_gen(addr, &self.closed, &self.arms, share, t) {
                Ok(g) => self.gens[s] = Some(g),
                Err(e) => eprintln!("liveserve: shard {s} loadgen restart failed: {e}"),
            }
        }
    }

    /// One logical control tick over all shards; returns the merged
    /// observation (`None` when no shard reported).
    fn control_tick(&mut self, t: f64, controller: &mut dyn Controller) -> Option<LiveTick> {
        let views: Vec<Option<ClusterObservation>> = self
            .servers
            .iter_mut()
            .map(|s| s.as_mut().map(|srv| srv.observe_tick().obs))
            .collect();
        let lost = self
            .cfg
            .controller_loss
            .is_some_and(|(from, until)| t >= from && t < until);
        if !lost {
            if let Some(merged) = self.plane.observe(t, &views) {
                let updates = controller.control(&merged);
                let mut touched: Vec<ApiId> = Vec::new();
                for u in &updates {
                    self.globals[u.api.idx()] = u.rate;
                    touched.push(u.api);
                }
                if self.plane.membership_changed() || self.plane.any_ramping() {
                    touched = (0..self.num_apis).map(|i| ApiId(i as u32)).collect();
                }
                for api in touched {
                    let split = self.plane.split(t, api, self.globals[api.idx()]);
                    for (s, q) in split.iter().enumerate() {
                        self.quotas[s][api.idx()] = *q;
                    }
                }
                for s in 0..self.cfg.shards {
                    let Some(srv) = self.servers[s].as_mut() else {
                        continue;
                    };
                    let ups: Vec<RateLimitUpdate> = (0..self.num_apis)
                        .map(|i| RateLimitUpdate {
                            api: ApiId(i as u32),
                            rate: self.quotas[s][i],
                        })
                        .collect();
                    srv.push_limits(&ups);
                    self.guards[s].on_push(t);
                }
                self.plane.end_tick(t);
            }
        } else {
            // Controller unreachable: each surviving shard degrades on
            // its own observation slice — hold, then bounded MIMD.
            for (s, slot) in views.iter().enumerate() {
                let (Some(srv), Some(view)) = (self.servers[s].as_mut(), slot.as_ref()) else {
                    continue;
                };
                if self.guards[s].tick(t, view, &mut self.quotas[s]) {
                    let ups: Vec<RateLimitUpdate> = (0..self.num_apis)
                        .map(|i| RateLimitUpdate {
                            api: ApiId(i as u32),
                            rate: self.quotas[s][i],
                        })
                        .collect();
                    srv.push_limits(&ups);
                }
            }
        }
        let present: Vec<&ClusterObservation> = views.iter().flatten().collect();
        if present.is_empty() {
            return None;
        }
        Some(LiveTick {
            t_secs: t,
            obs: merge_observations(&present),
        })
    }

    /// Drive the sharded control loop for `duration` on the calling
    /// thread, ticking every `control_interval`.
    pub fn run(&mut self, controller: &mut dyn Controller, duration: Duration) -> LiveRunResult {
        let started = Instant::now();
        let interval = self.cfg.live.control_interval;
        let mut next = started + interval;
        let mut ticks = Vec::new();
        loop {
            let now = Instant::now();
            if now < next {
                std::thread::sleep(next - now);
            }
            next += interval;
            let t = started.elapsed().as_secs_f64();
            if let Some((shard, at)) = self.cfg.kill {
                if self.killed.is_none() && t >= at {
                    self.kill_shard(shard, t);
                }
            }
            if let Some(tick) = self.control_tick(t, controller) {
                ticks.push(tick);
            }
            if started.elapsed() >= duration {
                break;
            }
        }
        LiveRunResult {
            ticks,
            api_names: self.api_names.clone(),
        }
    }

    pub fn plane_stats(&self) -> ShardPlaneStats {
        self.plane.stats()
    }

    /// Guard activity summed over shards.
    pub fn guard_stats(&self) -> GuardStats {
        let mut total = GuardStats::default();
        for g in &self.guards {
            let s = g.stats();
            total.held_ticks += s.held_ticks;
            total.fallback_ticks += s.fallback_ticks;
            total.resyncs += s.resyncs;
        }
        total
    }

    /// Which shard was killed, if any.
    pub fn killed(&self) -> Option<usize> {
        self.killed
    }

    /// Stop every load generator, drain and shut down surviving shards.
    pub fn shutdown(mut self) -> ShardedLiveResult {
        let plane_stats = self.plane_stats();
        let guard_stats = self.guard_stats();
        for g in &mut self.gens {
            if let Some(g) = g.take() {
                g.stop();
            }
        }
        for s in &mut self.servers {
            if let Some(s) = s.take() {
                s.shutdown();
            }
        }
        ShardedLiveResult {
            result: LiveRunResult {
                ticks: Vec::new(),
                api_names: self.api_names.clone(),
            },
            plane_stats,
            guard_stats,
            killed: self.killed,
        }
    }
}

/// Start one shard's generator: the total workload scaled by `share`,
/// schedules re-anchored to absolute time `dt`.
fn start_gen(
    addr: SocketAddr,
    closed: &Option<ClosedLoopSpec>,
    arms: &[OpenLoopArm],
    share: f64,
    dt: f64,
) -> std::io::Result<LoadGen> {
    let closed = closed.as_ref().map(|c| ClosedLoopSpec {
        users_steps: scale_steps(&shift_steps(&c.users_steps, dt), share),
        think: c.think,
        api_weights: c.api_weights.clone(),
        key_spaces: c.key_spaces.clone(),
    });
    let arms = arms
        .iter()
        .map(|a| OpenLoopArm {
            api: a.api,
            rate_steps: scale_steps(&shift_steps(&a.rate_steps, dt), share),
            key_space: a.key_space,
        })
        .collect();
    LoadGen::start(addr, closed, arms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{ApiSpec, CallNode, NoControl, ServiceSpec};
    use simnet::SimDuration;

    fn tiny_topo() -> Topology {
        let mut t = Topology::default();
        let s = t.add_service(ServiceSpec::new("svc", 2).queue_capacity(128));
        t.add_api(ApiSpec::single(
            "ping",
            CallNode::leaf(s, SimDuration::from_micros(50)),
        ));
        t
    }

    #[test]
    fn step_helpers_rescale_and_reanchor() {
        let steps = [(0.0, 30.0), (10.0, 90.0)];
        assert_eq!(
            scale_steps(&steps, 1.0 / 3.0),
            vec![(0.0, 10.0), (10.0, 30.0)]
        );
        // Shift past the first step: its value becomes the baseline.
        assert_eq!(shift_steps(&steps, 4.0), vec![(0.0, 30.0), (6.0, 90.0)]);
        // Shift past everything: constant tail.
        assert_eq!(shift_steps(&steps, 20.0), vec![(0.0, 90.0)]);
    }

    #[test]
    fn three_shards_run_merge_and_survive_a_kill() {
        let mut cfg = ShardedLiveConfig::new(
            3,
            LiveConfig {
                control_interval: Duration::from_millis(50),
                ..LiveConfig::default()
            },
        );
        cfg.plane.strike_out = 2;
        cfg.kill = Some((1, 0.4));
        let arms = vec![OpenLoopArm {
            api: 0,
            rate_steps: vec![(0.0, 300.0)],
            key_space: 0,
        }];
        let journal = Arc::new(obs::Journal::new());
        let mut live = ShardedLive::start(&tiny_topo(), cfg, None, arms).expect("start");
        live.attach_journal(Arc::clone(&journal));
        let result = live.run(&mut NoControl, Duration::from_secs(1));
        assert!(!result.ticks.is_empty());
        assert_eq!(live.killed(), Some(1));
        // The kill was a real teardown: the dead shard has no address,
        // the survivors still answer.
        assert!(live.shard_addr(1).is_none());
        assert!(live.shard_addr(0).is_some() && live.shard_addr(2).is_some());
        // The plane noticed the kill and struck the shard out.
        assert!(
            live.plane_stats().strike_outs >= 1,
            "{:?}",
            live.plane_stats()
        );
        let jsonl = obs::to_jsonl(&journal.snapshot());
        assert!(jsonl.contains("struck out"), "journal: {jsonl}");
        // Schedule re-anchor: after failover the survivors' generators
        // carry the dead shard's share, so merged offered load and
        // goodput keep flowing on ticks well past the kill instant.
        let late: Vec<_> = result.ticks.iter().filter(|t| t.t_secs > 0.6).collect();
        assert!(!late.is_empty(), "run produced post-kill ticks");
        let late_offered: f64 = late
            .iter()
            .map(|t| t.obs.apis.iter().map(|a| a.offered).sum::<f64>())
            .sum();
        let late_goodput: f64 = late
            .iter()
            .map(|t| t.obs.apis.iter().map(|a| a.goodput).sum::<f64>())
            .sum();
        assert!(late_offered > 0.0, "survivors keep receiving traffic");
        assert!(late_goodput > 0.0, "survivors keep completing requests");
        // Clean drain: shutting the survivors down joins their event
        // loops and worker pools without hanging or panicking.
        let out = live.shutdown();
        assert_eq!(out.killed, Some(1));
    }

    #[test]
    fn sharded_registry_carries_shard_labels() {
        let cfg = ShardedLiveConfig::new(2, LiveConfig::default());
        let live = ShardedLive::start(&tiny_topo(), cfg, None, Vec::new()).expect("start");
        let text = live.servers[0]
            .as_ref()
            .expect("shard 0")
            .registry()
            .render_prometheus();
        assert!(text.contains("shard=\"0\""), "{text}");
        assert!(text.contains("shard=\"1\""), "{text}");
        live.shutdown();
    }

    #[test]
    fn controller_loss_engages_local_guards_without_fail_open() {
        let mut cfg = ShardedLiveConfig::new(
            2,
            LiveConfig {
                control_interval: Duration::from_millis(40),
                ..LiveConfig::default()
            },
        );
        cfg.plane.limit_ttl = 2;
        cfg.controller_loss = Some((0.2, 10.0));
        let arms = vec![OpenLoopArm {
            api: 0,
            rate_steps: vec![(0.0, 200.0)],
            key_space: 0,
        }];
        let mut live = ShardedLive::start(&tiny_topo(), cfg, None, arms).expect("start");
        // A controller that pushes a finite limit before the loss window.
        struct Fixed;
        impl Controller for Fixed {
            fn control(&mut self, obs: &ClusterObservation) -> Vec<RateLimitUpdate> {
                vec![RateLimitUpdate {
                    api: obs.apis[0].api,
                    rate: 120.0,
                }]
            }
        }
        live.run(&mut Fixed, Duration::from_secs(1));
        let gs = live.guard_stats();
        assert!(gs.held_ticks > 0, "guards held: {gs:?}");
        assert!(gs.fallback_ticks > 0, "guards fell back: {gs:?}");
        // Never fail-open or fail-closed while blind.
        for s in 0..2 {
            for &q in &live.quotas[s] {
                assert!(q.is_finite(), "blind quota must be finite");
                assert!(q > 0.0, "blind quota must admit something");
            }
        }
        live.shutdown();
    }
}
