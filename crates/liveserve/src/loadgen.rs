//! Load generation against the live gateway.
//!
//! Two client shapes, mirroring the simulator's workload specs:
//!
//! * **Closed-loop users** — a pool of threads, each holding its own
//!   connection, that send one request, wait for its reply, think, and
//!   repeat. The number of *active* users follows a step schedule, which
//!   is how scenarios express load swings without changing per-user
//!   behaviour.
//! * **Open-loop surge arms** — paced senders that push `REQ` lines at a
//!   scheduled rate regardless of responses (a drainer thread discards
//!   replies). This is the overload instrument: offered load does not
//!   back off when the server slows, exactly like the simulator's
//!   open-loop arrival process.

use std::io::{BufRead, BufReader, BufWriter, ErrorKind, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Piecewise-constant schedule: the value at time `t` is the value of
/// the last step at or before `t` (0.0 before the first step).
pub fn value_at(steps: &[(f64, f64)], t_secs: f64) -> f64 {
    let mut v = 0.0;
    for &(at, value) in steps {
        if at <= t_secs {
            v = value;
        } else {
            break;
        }
    }
    v
}

/// Closed-loop client pool specification.
#[derive(Clone)]
pub struct ClosedLoopSpec {
    /// `(t_secs, active_users)` steps.
    pub users_steps: Vec<(f64, f64)>,
    pub think: Duration,
    /// `(api_idx, weight)`; weights need not be normalized.
    pub api_weights: Vec<(usize, f64)>,
    /// Per-API coalescing key space, indexed by wire API index. A
    /// request to an API with space `k > 0` carries a uniformly drawn
    /// key in `[0, k)`; `0` (or a missing entry) sends keyless lines.
    pub key_spaces: Vec<u64>,
}

/// One open-loop surge arm.
#[derive(Clone)]
pub struct OpenLoopArm {
    pub api: usize,
    /// `(t_secs, requests_per_sec)` steps.
    pub rate_steps: Vec<(f64, f64)>,
    /// Coalescing key space; `0` sends keyless lines.
    pub key_space: u64,
}

/// Per-class reject counts, parsed from `REJ` replies by every reply
/// reader the generator runs. The two classes are the gateway's two
/// shed points: `limit` (entry token bucket) and `shed` (priority
/// gate); a legacy bare `REJ <id>` counts as `limit`.
#[derive(Default)]
pub struct RejectCounts {
    limit: AtomicU64,
    shed: AtomicU64,
}

impl RejectCounts {
    fn record(&self, line: &str) {
        let mut parts = line.split_ascii_whitespace();
        if parts.next() != Some("REJ") {
            return;
        }
        let _id = parts.next();
        match parts.next() {
            Some("shed") => self.shed.fetch_add(1, Ordering::Relaxed),
            _ => self.limit.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Rejections at the entry token bucket.
    pub fn limit(&self) -> u64 {
        self.limit.load(Ordering::Relaxed)
    }

    /// Sheds at the priority gate.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }
}

/// Running load generator; stop with [`LoadGen::stop`].
pub struct LoadGen {
    stop: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
    rejects: Arc<RejectCounts>,
}

impl LoadGen {
    /// Connect all clients to `addr` and start generating.
    pub fn start(
        addr: SocketAddr,
        closed: Option<ClosedLoopSpec>,
        arms: Vec<OpenLoopArm>,
    ) -> std::io::Result<Self> {
        let stop = Arc::new(AtomicBool::new(false));
        let rejects = Arc::new(RejectCounts::default());
        let start = Instant::now();
        let mut handles = Vec::new();
        if let Some(spec) = closed {
            let max_users = spec
                .users_steps
                .iter()
                .map(|&(_, u)| u)
                .fold(0.0f64, f64::max)
                .ceil() as usize;
            let spec = Arc::new(spec);
            for slot in 0..max_users {
                let conn = TcpStream::connect(addr)?;
                let stop = Arc::clone(&stop);
                let spec = Arc::clone(&spec);
                let rejects = Arc::clone(&rejects);
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("live-user-{slot}"))
                        .spawn(move || closed_user(conn, slot, &spec, start, &stop, &rejects))
                        .expect("spawn user"),
                );
            }
        }
        for (i, arm) in arms.into_iter().enumerate() {
            let send_conn = TcpStream::connect(addr)?;
            let drain_conn = send_conn.try_clone()?;
            let stop_s = Arc::clone(&stop);
            let stop_d = Arc::clone(&stop);
            let rejects_d = Arc::clone(&rejects);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("live-arm-{i}"))
                    .spawn(move || open_loop_sender(send_conn, i, &arm, start, &stop_s))
                    .expect("spawn arm sender"),
            );
            handles.push(
                std::thread::Builder::new()
                    .name(format!("live-arm-drain-{i}"))
                    .spawn(move || drain_replies(drain_conn, &stop_d, &rejects_d))
                    .expect("spawn arm drainer"),
            );
        }
        Ok(LoadGen {
            stop,
            handles,
            rejects,
        })
    }

    /// Per-class reject counts observed so far (live; monotone).
    pub fn rejects(&self) -> &RejectCounts {
        &self.rejects
    }

    /// Signal every client thread and join them.
    pub fn stop(self) {
        self.stop.store(true, Ordering::Relaxed);
        for h in self.handles {
            let _ = h.join();
        }
    }
}

/// Every `TRACE_SAMPLE`-th request of each sender carries a trace id
/// (the request id itself) in the optional fourth wire token, lighting
/// up the gateway's causal trace path on a steady trickle of requests
/// without changing the load shape. `-` fills the key slot when the
/// request is keyless (see [`crate::wire`]).
pub const TRACE_SAMPLE: u64 = 64;

/// Render one `REQ` line, attaching a trace id on sampled requests.
fn format_req(id: u64, api: usize, key: Option<u64>) -> String {
    let traced = id.is_multiple_of(TRACE_SAMPLE);
    match (key, traced) {
        (Some(k), true) => format!("REQ {id} {api} {k} {id}\n"),
        (Some(k), false) => format!("REQ {id} {api} {k}\n"),
        (None, true) => format!("REQ {id} {api} - {id}\n"),
        (None, false) => format!("REQ {id} {api}\n"),
    }
}

/// xorshift64* — deterministic per-slot API picks without a rand dep.
fn xorshift(state: &mut u64) -> f64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    (x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 53) as f64
}

fn pick_api(weights: &[(usize, f64)], state: &mut u64) -> usize {
    let total: f64 = weights.iter().map(|&(_, w)| w.max(0.0)).sum();
    if total <= 0.0 {
        return weights.first().map_or(0, |&(api, _)| api);
    }
    let mut roll = xorshift(state) * total;
    for &(api, w) in weights {
        roll -= w.max(0.0);
        if roll <= 0.0 {
            return api;
        }
    }
    weights[weights.len() - 1].0
}

fn closed_user(
    conn: TcpStream,
    slot: usize,
    spec: &ClosedLoopSpec,
    start: Instant,
    stop: &AtomicBool,
    rejects: &RejectCounts,
) {
    let _ = conn.set_nodelay(true);
    let _ = conn.set_read_timeout(Some(Duration::from_millis(250)));
    let mut writer = BufWriter::new(conn.try_clone().expect("clone user conn"));
    let mut reader = BufReader::new(conn);
    let mut rng = 0x9e37_79b9_7f4a_7c15u64 ^ ((slot as u64 + 1) << 17);
    let mut id: u64 = (slot as u64) << 32;
    let mut line = String::new();
    while !stop.load(Ordering::Relaxed) {
        let active = value_at(&spec.users_steps, start.elapsed().as_secs_f64());
        if (slot as f64) >= active {
            std::thread::sleep(Duration::from_millis(10));
            continue;
        }
        id += 1;
        let api = pick_api(&spec.api_weights, &mut rng);
        let key = match spec.key_spaces.get(api).copied().unwrap_or(0) {
            0 => None,
            space => Some(((xorshift(&mut rng) * space as f64) as u64).min(space - 1)),
        };
        let req = format_req(id, api, key);
        if writer
            .write_all(req.as_bytes())
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
        // Wait for this request's reply (any verdict); a read timeout
        // counts as a turn so a stalled server cannot wedge the pool.
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => rejects.record(&line),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
            }
            Err(_) => return,
        }
        std::thread::sleep(spec.think);
    }
}

fn open_loop_sender(
    conn: TcpStream,
    arm_idx: usize,
    arm: &OpenLoopArm,
    start: Instant,
    stop: &AtomicBool,
) {
    let _ = conn.set_nodelay(true);
    let mut writer = BufWriter::new(conn);
    let mut rng = 0x5851_f42d_4c95_7f2du64 ^ ((arm_idx as u64 + 1) << 21);
    let mut id: u64 = (1 << 62) | ((arm_idx as u64) << 40);
    let mut carry = 0.0f64;
    let mut last = Instant::now();
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(Duration::from_millis(2));
        let now = Instant::now();
        let dt = now.duration_since(last).as_secs_f64();
        last = now;
        let rate = value_at(&arm.rate_steps, start.elapsed().as_secs_f64());
        carry += rate * dt;
        let burst = carry as u64;
        carry -= burst as f64;
        for _ in 0..burst {
            id += 1;
            let key = (arm.key_space > 0).then(|| {
                ((xorshift(&mut rng) * arm.key_space as f64) as u64).min(arm.key_space - 1)
            });
            let req = format_req(id, arm.api, key);
            if writer.write_all(req.as_bytes()).is_err() {
                return;
            }
        }
        if burst > 0 && writer.flush().is_err() {
            return;
        }
    }
}

fn drain_replies(conn: TcpStream, stop: &AtomicBool, rejects: &RejectCounts) {
    let _ = conn.set_read_timeout(Some(Duration::from_millis(50)));
    let mut reader = BufReader::new(conn);
    let mut line = String::new();
    while !stop.load(Ordering::Relaxed) {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => rejects.record(&line),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_lookup_is_piecewise_constant() {
        let steps = [(0.0, 10.0), (5.0, 30.0), (10.0, 10.0)];
        assert_eq!(value_at(&steps, 0.0), 10.0);
        assert_eq!(value_at(&steps, 4.9), 10.0);
        assert_eq!(value_at(&steps, 5.0), 30.0);
        assert_eq!(value_at(&steps, 9.0), 30.0);
        assert_eq!(value_at(&steps, 100.0), 10.0);
        assert_eq!(value_at(&[], 3.0), 0.0);
        assert_eq!(value_at(&[(2.0, 5.0)], 1.0), 0.0, "zero before first step");
    }

    #[test]
    fn reject_classes_parse_from_reply_lines() {
        let counts = RejectCounts::default();
        counts.record("REJ 7 limit\n");
        counts.record("REJ 8 shed\n");
        counts.record("REJ 9\n"); // legacy bare REJ counts as limit
        counts.record("OK 10 123\n");
        counts.record("ERR 11\n");
        assert_eq!(counts.limit(), 2);
        assert_eq!(counts.shed(), 1);
    }

    #[test]
    fn trace_sampling_attaches_ids_on_the_wire() {
        assert_eq!(format_req(1, 0, None), "REQ 1 0\n");
        assert_eq!(format_req(1, 0, Some(7)), "REQ 1 0 7\n");
        assert_eq!(format_req(64, 2, None), "REQ 64 2 - 64\n");
        assert_eq!(format_req(128, 1, Some(9)), "REQ 128 1 9 128\n");
    }

    #[test]
    fn weighted_pick_respects_weights() {
        let weights = [(0usize, 3.0), (1usize, 1.0)];
        let mut rng = 42u64;
        let mut counts = [0u32; 2];
        for _ in 0..4000 {
            counts[pick_api(&weights, &mut rng)] += 1;
        }
        let frac = f64::from(counts[0]) / 4000.0;
        assert!((0.70..0.80).contains(&frac), "got {frac}");
        // Degenerate weights fall back to the first entry.
        assert_eq!(pick_api(&[(2, 0.0)], &mut rng), 2);
    }
}
