//! Live front-door admission: the simulator's coalescing + priority
//! pipeline ([`cluster::front::FrontDoor`]) wired to real sockets.
//!
//! The stage logic is shared verbatim with the simulator; this module
//! adds only what live traffic needs on top of it:
//!
//! * [`LiveAdmission`] — the entry token bucket and the optional front
//!   door under **one mutex**, so the gateway's batched admit path
//!   still costs one lock per wakeup (DESIGN.md §16);
//! * follower routes — a parked duplicate read must be answered later,
//!   from a worker thread, so each follower keeps its
//!   [`ReplySink`](crate::executors::ReplySink) until the leader's
//!   flight settles;
//! * a deterministic server-side user level hashed from the request id
//!   (clients don't authenticate; the hash gives the priority gate a
//!   stable, uniform user axis exactly like the simulator's sampled
//!   one).

use crate::executors::ReplySink;
use crate::metrics::LiveMetrics;
use cluster::front::{FrontConfig, FrontDoor};
use cluster::{ApiId, EntryAdmission, Topology};
use simnet::SimTime;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The gateway's combined admission state: stages 1–2 (front door) and
/// stage 3 (entry token bucket) behind a single lock.
pub struct LiveAdmission {
    pub entry: EntryAdmission,
    pub front: Option<LiveFront>,
}

/// One parked duplicate read, waiting for its leader's flight.
struct Follower {
    id: u64,
    accepted: Instant,
    reply: ReplySink,
}

/// Live-plane state around the shared [`FrontDoor`].
pub struct LiveFront {
    pub door: FrontDoor,
    /// Per-API business priority, indexed by wire API index.
    business: Vec<u8>,
    /// User sub-levels the priority gate distinguishes.
    user_levels: u32,
    /// Parked followers by `(api, key)` flight.
    followers: HashMap<(u32, u64), Vec<Follower>>,
}

impl LiveFront {
    pub fn new(cfg: FrontConfig, topo: &Topology) -> Self {
        LiveFront {
            door: FrontDoor::new(cfg),
            business: topo.apis().map(|(_, a)| a.business.0).collect(),
            user_levels: cfg.priority.map_or(1, |p| p.user_levels.max(1)),
            followers: HashMap::new(),
        }
    }

    /// The request's business tier (APIs beyond the topology default
    /// to the most important tier, matching the gateway's "unknown api
    /// answers ERR before admission" path never reaching here).
    pub fn business(&self, api: usize) -> u8 {
        self.business.get(api).copied().unwrap_or(0)
    }

    /// Deterministic user level from the request id (FNV-1a over the id
    /// bytes, folded into the gate's user axis). Server-side: clients
    /// don't carry identity, and hashing the id spreads levels
    /// uniformly the way the simulator's per-request sample does.
    pub fn user_level(&self, id: u64) -> u8 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in id.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        ((h >> 32) % u64::from(self.user_levels)) as u8
    }

    /// Park a duplicate read on the `(api, key)` flight.
    pub fn park(&mut self, api: u32, key: u64, id: u64, reply: ReplySink) {
        self.followers
            .entry((api, key))
            .or_default()
            .push(Follower {
                id,
                accepted: Instant::now(),
                reply,
            });
    }
}

/// Settle a coalesced flight after its leader finished: publish the
/// payload (success) or clear the flight (failure), then fan the
/// verdict out to every parked follower. `payload` is the leader's
/// response payload (its latency field); followers report their own
/// measured latency. Takes the admission lock briefly — call with it
/// released.
pub fn settle_flight(
    admission: &Mutex<LiveAdmission>,
    metrics: &LiveMetrics,
    slo: Duration,
    api: u32,
    key: u64,
    payload: Option<&str>,
    now: SimTime,
) {
    let followers = {
        let mut adm = admission.lock().expect("admission lock");
        let Some(front) = adm.front.as_mut() else {
            return;
        };
        match payload {
            Some(p) => front
                .door
                .complete_flight(ApiId(api), key, Arc::from(p), now),
            None => front.door.fail_flight(ApiId(api), key),
        }
        front.followers.remove(&(api, key)).unwrap_or_default()
    };
    for f in followers {
        if payload.is_some() {
            let latency = f.accepted.elapsed();
            metrics.on_complete(api as usize, latency, slo);
            f.reply
                .send(format!("OK {} {}\n", f.id, latency.as_micros()));
        } else {
            metrics.on_failed(api as usize);
            f.reply.send(format!("ERR {}\n", f.id));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::front::PriorityConfig;
    use cluster::{ApiSpec, CallNode, ServiceSpec};
    use simnet::SimDuration;

    fn topo() -> Topology {
        let mut t = Topology::default();
        let s = t.add_service(ServiceSpec::new("svc", 1));
        t.add_api(ApiSpec::single(
            "ping",
            CallNode::leaf(s, SimDuration::from_micros(50)),
        ));
        t
    }

    #[test]
    fn user_level_is_deterministic_and_within_the_gate_axis() {
        let front = LiveFront::new(
            FrontConfig {
                coalesce: None,
                priority: Some(PriorityConfig::default()),
            },
            &topo(),
        );
        let levels = PriorityConfig::default().user_levels;
        let mut seen = std::collections::HashSet::new();
        for id in 0..2048u64 {
            let u = front.user_level(id);
            assert_eq!(u, front.user_level(id), "stable per id");
            assert!(u32::from(u) < levels);
            seen.insert(u);
        }
        assert!(
            seen.len() > levels as usize / 2,
            "hash covers the user axis, got {} of {levels}",
            seen.len()
        );
    }
}
