//! Wire-protocol framing and parsing, independent of sockets.
//!
//! The gateway reads raw TCP segments; nothing guarantees a `REQ` line
//! arrives in one piece or that a peer is well-behaved. [`LineDecoder`]
//! turns an arbitrary byte stream into a sequence of [`WireItem`]s:
//!
//! * lines may be split across any number of segments (the partial tail
//!   is carried between [`LineDecoder::feed`] calls);
//! * a line longer than [`MAX_LINE`] bytes is garbage by definition
//!   (well-formed request lines are tens of bytes) — it yields one
//!   [`WireItem::Malformed`] and the decoder then *discards* bytes up to
//!   the next newline, so an abusive or corrupted peer cannot desync
//!   the framing or balloon the buffer;
//! * malformed-but-bounded lines yield [`WireItem::Malformed`] and the
//!   connection keeps going, matching the old per-thread reader's
//!   "answer `ERR 0` and carry on" behaviour.
//!
//! The decoder is pure state over bytes, which is what makes the
//! byte-at-a-time and fragmentation tests below possible without a
//! socket in sight.

/// Longest acceptable request line (bytes, excluding the newline). A
/// maximal legitimate line — `REQ <u64> <usize>` — is under 48 bytes;
/// the slack tolerates sloppy clients without tolerating abuse.
pub const MAX_LINE: usize = 256;

/// One framed outcome from the decoder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireItem {
    /// A well-formed `REQ <id> <api> [key|-] [trace]` line. `key` marks
    /// the request as a coalescable read of that resource key; `trace`
    /// opts it into causal tracing.
    Request {
        id: u64,
        api: usize,
        key: Option<u64>,
        trace: Option<u64>,
    },
    /// A complete but unparseable (or oversized) line; the gateway
    /// answers `ERR 0` and keeps the connection.
    Malformed,
}

/// Parse `REQ <id> <api_idx> [key|-] [trace]` → `(id, api, key, trace)`.
///
/// The grammar is positional and backward compatible:
/// * 3 tokens — the original protocol, no key, no trace;
/// * 4 tokens — a coalescing resource key (old clients unchanged), or
///   the placeholder `-` meaning "no key";
/// * 5 tokens — key (or `-`) plus a trace id opting the request into
///   causal tracing;
/// * 6+ tokens — rejected.
pub fn parse_request(line: &str) -> Option<(u64, usize, Option<u64>, Option<u64>)> {
    let mut parts = line.split_ascii_whitespace();
    if parts.next()? != "REQ" {
        return None;
    }
    let id = parts.next()?.parse().ok()?;
    let api = parts.next()?.parse().ok()?;
    let key = match parts.next() {
        Some("-") => None,
        Some(tok) => Some(tok.parse().ok()?),
        None => return Some((id, api, None, None)),
    };
    let trace = match parts.next() {
        Some(tok) => Some(tok.parse().ok()?),
        None => None,
    };
    if parts.next().is_some() {
        return None;
    }
    Some((id, api, key, trace))
}

/// Incremental line framer with oversized-line resynchronisation.
#[derive(Default)]
pub struct LineDecoder {
    /// Carry-over of an incomplete line between feeds.
    partial: Vec<u8>,
    /// Inside an oversized line: drop bytes until the next newline.
    discarding: bool,
}

impl LineDecoder {
    pub fn new() -> Self {
        LineDecoder::default()
    }

    /// Bytes currently buffered waiting for a newline.
    pub fn pending(&self) -> usize {
        self.partial.len()
    }

    /// Consume one TCP segment, appending framed items to `out`.
    pub fn feed(&mut self, mut bytes: &[u8], out: &mut Vec<WireItem>) {
        while !bytes.is_empty() {
            if self.discarding {
                match bytes.iter().position(|&b| b == b'\n') {
                    Some(nl) => {
                        bytes = &bytes[nl + 1..];
                        self.discarding = false;
                    }
                    None => return, // still inside the oversized line
                }
                continue;
            }
            match bytes.iter().position(|&b| b == b'\n') {
                Some(nl) => {
                    let line = &bytes[..nl];
                    if self.partial.is_empty() {
                        Self::emit(line, out);
                    } else {
                        self.partial.extend_from_slice(line);
                        let full = std::mem::take(&mut self.partial);
                        Self::emit(&full, out);
                    }
                    bytes = &bytes[nl + 1..];
                }
                None => {
                    if self.partial.len() + bytes.len() > MAX_LINE {
                        // Oversized without a newline in sight: flag it
                        // once, drop what we hoarded, skip to the next
                        // newline whenever it shows up.
                        out.push(WireItem::Malformed);
                        self.partial.clear();
                        self.discarding = true;
                        return;
                    }
                    self.partial.extend_from_slice(bytes);
                    return;
                }
            }
        }
    }

    /// Classify one complete line (newline excluded).
    fn emit(line: &[u8], out: &mut Vec<WireItem>) {
        if line.len() > MAX_LINE {
            out.push(WireItem::Malformed);
            return;
        }
        let Ok(text) = std::str::from_utf8(line) else {
            out.push(WireItem::Malformed);
            return;
        };
        let text = text.trim_end();
        if text.is_empty() {
            return; // blank lines are keep-alives, not errors
        }
        match parse_request(text) {
            Some((id, api, key, trace)) => out.push(WireItem::Request {
                id,
                api,
                key,
                trace,
            }),
            None => out.push(WireItem::Malformed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_all(decoder: &mut LineDecoder, bytes: &[u8]) -> Vec<WireItem> {
        let mut out = Vec::new();
        decoder.feed(bytes, &mut out);
        out
    }

    #[test]
    fn request_lines_parse_strictly() {
        assert_eq!(parse_request("REQ 7 2"), Some((7, 2, None, None)));
        assert_eq!(parse_request("REQ 0 0"), Some((0, 0, None, None)));
        assert_eq!(parse_request("REQ  12   1"), Some((12, 1, None, None)));
        // Optional fourth token: a coalescing resource key.
        assert_eq!(parse_request("REQ 7 2 9"), Some((7, 2, Some(9), None)));
        assert_eq!(parse_request("REQ 7 2 0"), Some((7, 2, Some(0), None)));
        assert_eq!(parse_request("GET 7 2"), None);
        assert_eq!(parse_request("REQ 7"), None);
        assert_eq!(parse_request("REQ 7 2 k"), None);
        assert_eq!(parse_request("REQ x 2"), None);
        assert_eq!(parse_request(""), None);
    }

    #[test]
    fn trace_token_extends_the_grammar_without_breaking_old_clients() {
        // 5 tokens: key + trace.
        assert_eq!(parse_request("REQ 7 2 9 4"), Some((7, 2, Some(9), Some(4))));
        // `-` is "no key", so traces work without coalescing.
        assert_eq!(parse_request("REQ 7 2 - 4"), Some((7, 2, None, Some(4))));
        assert_eq!(parse_request("REQ 7 2 -"), Some((7, 2, None, None)));
        // Garbage in either optional slot is malformed, not ignored.
        assert_eq!(parse_request("REQ 7 2 9 t"), None);
        assert_eq!(parse_request("REQ 7 2 - t"), None);
        // 6+ tokens stay rejected.
        assert_eq!(parse_request("REQ 7 2 9 4 5"), None);
        assert_eq!(parse_request("REQ 7 2 - 4 5"), None);
    }

    #[test]
    fn traced_lines_survive_segment_splits_and_garbage_resync() {
        // Split points land mid-trace-token, around the `-` placeholder,
        // and after an oversized-garbage resync.
        let fragments: [&[u8]; 6] = [
            b"REQ 1 0 7 4",
            b"2\nREQ 2 1 - ",
            b"9\n",
            &[b'z'; 300],
            b"\n",
            b"REQ 3 0 5 1\n",
        ];
        let mut dec = LineDecoder::new();
        let mut got = Vec::new();
        for f in fragments {
            dec.feed(f, &mut got);
        }
        assert_eq!(
            got,
            vec![
                WireItem::Request {
                    id: 1,
                    api: 0,
                    key: Some(7),
                    trace: Some(42)
                },
                WireItem::Request {
                    id: 2,
                    api: 1,
                    key: None,
                    trace: Some(9)
                },
                WireItem::Malformed,
                WireItem::Request {
                    id: 3,
                    api: 0,
                    key: Some(5),
                    trace: Some(1)
                },
            ]
        );
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn old_three_field_clients_decode_byte_identically() {
        // The exact byte stream an old client sends must produce the
        // exact items it always produced (trace simply absent).
        let input = b"REQ 1 0\nREQ 2 1 77\nREQ 3 0\n";
        let mut dec = LineDecoder::new();
        let mut got = Vec::new();
        dec.feed(input, &mut got);
        assert_eq!(
            got,
            vec![
                WireItem::Request {
                    id: 1,
                    api: 0,
                    key: None,
                    trace: None
                },
                WireItem::Request {
                    id: 2,
                    api: 1,
                    key: Some(77),
                    trace: None
                },
                WireItem::Request {
                    id: 3,
                    api: 0,
                    key: None,
                    trace: None
                },
            ]
        );
    }

    #[test]
    fn byte_at_a_time_yields_the_same_requests() {
        let input = b"REQ 1 0\nREQ 2 1\r\njunk\nREQ 3 0\n";
        let mut whole = LineDecoder::new();
        let expected = decode_all(&mut whole, input);
        assert_eq!(
            expected,
            vec![
                WireItem::Request {
                    id: 1,
                    api: 0,
                    key: None,
                    trace: None
                },
                WireItem::Request {
                    id: 2,
                    api: 1,
                    key: None,
                    trace: None
                },
                WireItem::Malformed,
                WireItem::Request {
                    id: 3,
                    api: 0,
                    key: None,
                    trace: None
                },
            ]
        );
        // Same stream, one byte per "segment".
        let mut trickle = LineDecoder::new();
        let mut got = Vec::new();
        for b in input {
            trickle.feed(std::slice::from_ref(b), &mut got);
        }
        assert_eq!(got, expected);
        assert_eq!(trickle.pending(), 0);
    }

    #[test]
    fn fragmented_segment_boundaries_do_not_split_requests() {
        // Split points chosen to land mid-token, mid-id and around \n.
        let fragments: [&[u8]; 7] = [
            b"RE", b"Q 12", b"34 ", b"0", b"\nREQ 5", b" 1\nREQ", b" 6 0\n",
        ];
        let mut dec = LineDecoder::new();
        let mut got = Vec::new();
        for f in fragments {
            dec.feed(f, &mut got);
        }
        assert_eq!(
            got,
            vec![
                WireItem::Request {
                    id: 1234,
                    api: 0,
                    key: None,
                    trace: None
                },
                WireItem::Request {
                    id: 5,
                    api: 1,
                    key: None,
                    trace: None
                },
                WireItem::Request {
                    id: 6,
                    api: 0,
                    key: None,
                    trace: None
                },
            ]
        );
    }

    #[test]
    fn oversized_line_resyncs_at_next_newline_without_desync() {
        let mut dec = LineDecoder::new();
        let mut got = Vec::new();
        // An unbounded garbage line arriving in chunks…
        dec.feed(&[b'x'; 200], &mut got);
        assert!(got.is_empty(), "still under MAX_LINE, just buffered");
        dec.feed(&[b'x'; 200], &mut got);
        assert_eq!(got, vec![WireItem::Malformed], "flagged exactly once");
        dec.feed(&[b'x'; 10_000], &mut got);
        assert_eq!(got.len(), 1, "no per-chunk re-flagging while discarding");
        assert_eq!(dec.pending(), 0, "oversized bytes are not hoarded");
        // …then the newline lands mid-segment and framing resumes clean.
        dec.feed(b"xxx\nREQ 9 0\n", &mut got);
        assert_eq!(
            got,
            vec![
                WireItem::Malformed,
                WireItem::Request {
                    id: 9,
                    api: 0,
                    key: None,
                    trace: None
                }
            ]
        );
    }

    #[test]
    fn garbage_and_binary_lines_flag_without_killing_the_stream() {
        let mut dec = LineDecoder::new();
        let mut got = Vec::new();
        dec.feed(b"\xff\xfe\x00\nREQ 4 0\n\n  \nREQ 5 0\n", &mut got);
        assert_eq!(
            got,
            vec![
                WireItem::Malformed, // invalid utf-8
                WireItem::Request {
                    id: 4,
                    api: 0,
                    key: None,
                    trace: None
                },
                // blank and whitespace-only lines are silently skipped
                WireItem::Request {
                    id: 5,
                    api: 0,
                    key: None,
                    trace: None
                },
            ]
        );
    }

    #[test]
    fn exactly_max_line_is_still_judged_not_discarded() {
        let mut dec = LineDecoder::new();
        let mut got = Vec::new();
        let mut line = vec![b'y'; MAX_LINE];
        line.push(b'\n');
        line.extend_from_slice(b"REQ 1 0\n");
        dec.feed(&line, &mut got);
        assert_eq!(
            got,
            vec![
                WireItem::Malformed,
                WireItem::Request {
                    id: 1,
                    api: 0,
                    key: None,
                    trace: None
                }
            ]
        );
    }
}
