//! # liveserve — the real-time serving plane (Sim2Real)
//!
//! Everything else in this workspace runs TopFull against a simulated
//! cluster. This crate runs the **same controller stack** —
//! `core::{detector, clustering, rate_controller}`, including a trained
//! PPO policy — against real threads, real sockets and a real clock:
//!
//! * an event-driven loopback **TCP gateway** ([`gateway`]) — sharded
//!   epoll readiness loops ([`poller`]) with per-wakeup batched
//!   admission through the *same* token-bucket bank as the simulator's
//!   gateway ([`cluster::EntryAdmission`], shared verbatim);
//! * a **worker pool** ([`executors`]) emulating the application DAG
//!   with genuine CPU burn and bounded per-service queues;
//! * **wall-clock metric windows** ([`metrics`]) folding atomics and a
//!   [`simnet::LatencyHistogram`] into the [`cluster::ClusterObservation`]
//!   struct the controller already consumes;
//! * a **load generator** ([`loadgen`]) with closed-loop user pools and
//!   open-loop surge arms.
//!
//! The controller runs on the thread that calls [`LiveServer::run`]
//! (the [`cluster::Controller`] trait is deliberately not `Send`), on a
//! real timer tick. Nothing in `core` or the policy knows whether its
//! observations came from virtual or wall-clock time.

pub mod clock;
pub mod executors;
pub mod front;
pub mod gateway;
pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod poller;
pub mod shardrun;
pub mod wire;

pub use clock::WallClock;
pub use loadgen::{ClosedLoopSpec, LoadGen, OpenLoopArm, RejectCounts};
pub use metrics::{AppDescriptor, LiveMetrics};
pub use shardrun::{ShardedLive, ShardedLiveConfig, ShardedLiveResult};

use cluster::observe::ClusterObservation;
use cluster::{ApiId, Controller, EntryAdmission, RateLimitUpdate, Topology};
use executors::WorkerPool;
use front::{LiveAdmission, LiveFront};
use gateway::{EventLoops, GatewayShared, LoopConfig};
use simnet::SimTime;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Live-plane tunables.
#[derive(Clone, Copy, Debug)]
pub struct LiveConfig {
    /// End-to-end latency SLO (goodput = completions within this).
    pub slo: Duration,
    /// Controller tick period (the simulator's control interval).
    pub control_interval: Duration,
    /// Global CPU-cost multiplier; capacity scales as `1 / cpu_scale`,
    /// letting one host emulate clusters of different sizes.
    pub cpu_scale: f64,
    /// Token-bucket burst window, in seconds of the current rate —
    /// passed straight to [`EntryAdmission::new`].
    pub gateway_burst_secs: f64,
    /// TCP port on 127.0.0.1; `0` picks an ephemeral port.
    pub port: u16,
    /// TCP port of the HTTP exposition endpoint (`GET /metrics`,
    /// `GET /spans`) on 127.0.0.1; `0` picks an ephemeral port.
    pub metrics_port: u16,
    /// Number of gateway event loops; `0` = one per core (capped at 8).
    pub event_loops: usize,
    /// Per-connection pending-output cap in bytes. Reads pause at half
    /// of this; a peer that lets completions pile past it is dropped.
    pub max_conn_output: usize,
    /// Optional front door (single-flight coalescing + priority
    /// admission) ahead of the token bucket — the same
    /// [`cluster::front::FrontDoor`] stages the simulator runs.
    pub front: Option<cluster::front::FrontConfig>,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            slo: Duration::from_secs(1),
            control_interval: Duration::from_millis(200),
            cpu_scale: 1.0,
            gateway_burst_secs: 0.05,
            port: 0,
            metrics_port: 0,
            event_loops: 0,
            max_conn_output: 1 << 20,
            front: None,
        }
    }
}

/// One control tick's worth of observed state.
pub struct LiveTick {
    /// Wall-clock seconds since server start at window close.
    pub t_secs: f64,
    pub obs: ClusterObservation,
}

/// A completed live run.
pub struct LiveRunResult {
    pub ticks: Vec<LiveTick>,
    pub api_names: Vec<String>,
}

impl LiveRunResult {
    /// `(t, total goodput rps)` per tick.
    pub fn total_goodput_series(&self) -> Vec<(f64, f64)> {
        self.ticks
            .iter()
            .map(|t| (t.t_secs, t.obs.apis.iter().map(|a| a.goodput).sum()))
            .collect()
    }

    /// `(t, goodput rps)` per tick for one API.
    pub fn goodput_series(&self, api: usize) -> Vec<(f64, f64)> {
        self.ticks
            .iter()
            .map(|t| (t.t_secs, t.obs.apis[api].goodput))
            .collect()
    }

    /// `(t, p99 seconds)` per tick for one API (0.0 when no samples).
    pub fn p99_series(&self, api: usize) -> Vec<(f64, f64)> {
        self.ticks
            .iter()
            .map(|t| {
                let p99 = t.obs.apis[api].p99.map_or(0.0, |d| d.as_secs_f64());
                (t.t_secs, p99)
            })
            .collect()
    }

    /// Mean per-tick value of `f` over ticks with `t_secs` in `[from, to)`.
    pub fn mean_over(&self, from: f64, to: f64, f: impl Fn(&ClusterObservation) -> f64) -> f64 {
        let vals: Vec<f64> = self
            .ticks
            .iter()
            .filter(|t| t.t_secs >= from && t.t_secs < to)
            .map(|t| f(&t.obs))
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }

    /// Mean goodput per API over the whole run.
    pub fn mean_goodput_per_api(&self) -> Vec<(String, f64)> {
        self.api_names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let m = self.mean_over(0.0, f64::INFINITY, |o| o.apis[i].goodput);
                (name.clone(), m)
            })
            .collect()
    }

    /// Mean offered load per API over the whole run.
    pub fn mean_offered_per_api(&self) -> Vec<(String, f64)> {
        self.api_names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let m = self.mean_over(0.0, f64::INFINITY, |o| o.apis[i].offered);
                (name.clone(), m)
            })
            .collect()
    }
}

/// Bind the metrics exposition listener. A busy `port` is retried with
/// bounded backoff (another shard or a stale listener may still hold
/// it), then falls back to an ephemeral port — a gateway that serves
/// traffic but not `/metrics` on the requested port beats one that
/// refuses to start at all. The substitution is logged to stderr.
fn bind_metrics(port: u16) -> std::io::Result<TcpListener> {
    if port == 0 {
        return TcpListener::bind(("127.0.0.1", 0));
    }
    let mut last_err: Option<std::io::Error> = None;
    for backoff in [
        Duration::ZERO,
        Duration::from_millis(25),
        Duration::from_millis(50),
    ] {
        std::thread::sleep(backoff);
        match TcpListener::bind(("127.0.0.1", port)) {
            Ok(l) => return Ok(l),
            Err(e) => last_err = Some(e),
        }
    }
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    eprintln!(
        "liveserve: metrics port {port} unavailable after retries ({}); \
         serving /metrics on ephemeral port {} instead",
        last_err.expect("retry loop records an error"),
        listener.local_addr()?.port()
    );
    Ok(listener)
}

/// The live serving plane: gateway + worker pool + metric windows.
pub struct LiveServer {
    addr: SocketAddr,
    metrics_addr: SocketAddr,
    shared: Arc<GatewayShared>,
    registry: Arc<obs::Registry>,
    desc: AppDescriptor,
    shutdown: Arc<AtomicBool>,
    pool: Option<WorkerPool>,
    loops: Option<EventLoops>,
    window_start: SimTime,
    control_interval: Duration,
    slo: obs::SloMonitor,
    journal: Arc<obs::Journal>,
}

/// Resolve `event_loops = 0` (auto) to one loop per available core,
/// capped — beyond a handful of loops the admission mutex, not epoll,
/// is the contended resource.
fn resolve_loops(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get().min(8))
}

impl LiveServer {
    /// Bind the gateway and the exposition endpoint, spawn the worker
    /// pool, and start accepting.
    pub fn start(topo: &Topology, cfg: LiveConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
        let addr = listener.local_addr()?;
        let metrics_listener = bind_metrics(cfg.metrics_port)?;
        let metrics_addr = metrics_listener.local_addr()?;
        let clock = WallClock::start();
        let desc = AppDescriptor::of(topo, cfg.slo);
        let metrics = Arc::new(LiveMetrics::new(topo.num_apis(), topo.num_services()));
        let registry = Arc::new(obs::Registry::new());
        metrics.register_into(&registry, &desc);
        let shutdown = Arc::new(AtomicBool::new(false));
        let front = cfg.front.map(|fc| {
            let lf = LiveFront::new(fc, topo);
            lf.door.stats().register_into(&registry);
            lf
        });
        let admission = Arc::new(Mutex::new(LiveAdmission {
            entry: EntryAdmission::new(topo.num_apis(), cfg.gateway_burst_secs),
            front,
        }));
        let (pool, routing) = WorkerPool::start(
            topo,
            cfg.cpu_scale,
            cfg.slo,
            clock,
            &metrics,
            &shutdown,
            Some(Arc::clone(&admission)),
        );
        let shared = Arc::new(GatewayShared {
            admission,
            clock,
            metrics: Arc::clone(&metrics),
            routing,
            shutdown: Arc::clone(&shutdown),
        });
        let http_state = Arc::new(http::MetricsHttp {
            registry: Arc::clone(&registry),
            metrics,
        });
        let loops = gateway::start_event_loops(
            listener,
            metrics_listener,
            http_state,
            &shared,
            LoopConfig {
                loops: resolve_loops(cfg.event_loops),
                max_conn_output: cfg.max_conn_output,
            },
        )?;
        Ok(LiveServer {
            addr,
            metrics_addr,
            shared,
            registry,
            desc,
            shutdown,
            pool: Some(pool),
            loops: Some(loops),
            window_start: SimTime::ZERO,
            control_interval: cfg.control_interval,
            slo: obs::SloMonitor::new(obs::SloConfig::default()),
            journal: obs::Journal::shared(),
        })
    }

    /// Replace the burn-rate monitor's objective/thresholds. Resets the
    /// window history; call before driving traffic.
    pub fn set_slo_config(&mut self, cfg: obs::SloConfig) {
        self.slo = obs::SloMonitor::new(cfg);
    }

    /// The server's event journal (SLO burn transitions land here, on
    /// the control thread, for `topfull explain`).
    pub fn journal(&self) -> &Arc<obs::Journal> {
        &self.journal
    }

    /// Route SLO burn transitions into an external journal — typically
    /// the one the controller's decisions already land in, so `topfull
    /// explain` renders one interleaved timeline.
    pub fn attach_journal(&mut self, journal: Arc<obs::Journal>) {
        self.journal = journal;
    }

    /// Snapshot of the gateway's causal trace log (every stage event of
    /// every traced request still retained by the bounded ring).
    pub fn traces(&self) -> Vec<obs::TraceEvent> {
        self.shared.metrics.trace_log().snapshot()
    }

    /// Address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Address of the HTTP exposition endpoint (`/metrics`, `/spans`).
    pub fn metrics_addr(&self) -> SocketAddr {
        self.metrics_addr
    }

    /// The server's metrics registry (instruments registered at start).
    pub fn registry(&self) -> &Arc<obs::Registry> {
        &self.registry
    }

    /// Current rate limit of one API (`f64::INFINITY` = unlimited).
    pub fn rate_limit(&self, api: usize) -> f64 {
        self.shared
            .admission
            .lock()
            .expect("admission lock")
            .entry
            .rate_limit(ApiId(api as u32))
    }

    /// Close the current metric window and return the observation,
    /// without running a controller. The sharded runner uses this to
    /// collect per-shard reports before one logical controller step.
    pub fn observe_tick(&mut self) -> LiveTick {
        let now = self.shared.clock.now();
        let window = now.duration_since(self.window_start);
        self.window_start = now;
        let rate_limits: Vec<f64> = {
            let admission = self.shared.admission.lock().expect("admission lock");
            (0..admission.entry.num_apis())
                .map(|i| admission.entry.rate_limit(ApiId(i as u32)))
                .collect()
        };
        let mut obs = self
            .shared
            .metrics
            .observe(&self.desc, now, window, &rate_limits);
        // SLO burn-rate pass on the control thread (same placement as
        // the simulator's harness): rates -> counts via the window
        // width, transitions journaled, signals attached to the
        // observation and mirrored to the exposition gauges.
        {
            let w = obs.window.as_secs_f64();
            let samples: Vec<obs::ApiSloSample> = obs
                .apis
                .iter()
                .map(|a| obs::ApiSloSample {
                    good: a.goodput * w,
                    bad: (a.slo_violated + a.failed) * w,
                })
                .collect();
            let slo_tick = self.slo.observe(obs.now.as_secs_f64(), &samples);
            for tr in &slo_tick.transitions {
                let name = obs
                    .apis
                    .get(tr.api as usize)
                    .map(|a| a.name.clone())
                    .unwrap_or_else(|| format!("api{}", tr.api));
                self.journal.record(obs::JournalEntry::SloBurn {
                    t: obs.now.as_secs_f64(),
                    api: tr.api,
                    api_name: name,
                    from: tr.from.as_str().into(),
                    to: tr.to.as_str().into(),
                    fast_burn: tr.fast_burn,
                    slow_burn: tr.slow_burn,
                    budget_remaining: tr.budget_remaining,
                });
            }
            self.shared.metrics.set_slo_signals(&slo_tick.signals);
            obs.slo_burn = slo_tick.signals;
        }
        // Bound the live path learner exactly like the simulator's tick.
        self.shared.metrics.compact_traces(now);
        // Close the front door's window on the same cadence as the
        // simulator's tick: counters fold into the stats gauges, and
        // the priority threshold adapts on the queuing-delay signal.
        {
            let mut admission = self.shared.admission.lock().expect("admission lock");
            if let Some(front) = admission.front.as_mut() {
                let overloaded = front.door.overloaded(&obs);
                let _ = front.door.tick(overloaded);
            }
        }
        LiveTick {
            t_secs: now.as_secs_f64(),
            obs,
        }
    }

    /// Apply rate-limit updates to the admission bank, effective for
    /// the next window.
    pub fn push_limits(&mut self, updates: &[RateLimitUpdate]) {
        if updates.is_empty() {
            return;
        }
        let mut admission = self.shared.admission.lock().expect("admission lock");
        let at = self.shared.clock.now();
        for u in updates {
            admission.entry.set_rate_limit(u.api, u.rate, at);
        }
    }

    /// Close the current metric window, run one controller step, and
    /// apply the resulting rate-limit updates to the admission bank.
    ///
    /// Mirrors the simulator's harness ordering exactly: the observation
    /// carries the limits that were in force *during* the window, and
    /// updates take effect for the next one.
    pub fn tick(&mut self, controller: &mut dyn Controller) -> LiveTick {
        let tick = self.observe_tick();
        let updates = controller.control(&tick.obs);
        self.push_limits(&updates);
        tick
    }

    /// Drive the control loop for `duration` on the calling thread,
    /// ticking every `control_interval`.
    pub fn run(&mut self, controller: &mut dyn Controller, duration: Duration) -> LiveRunResult {
        let started = Instant::now();
        let mut next = started + self.control_interval;
        let mut ticks = Vec::new();
        loop {
            let now = Instant::now();
            if now < next {
                std::thread::sleep(next - now);
            }
            next += self.control_interval;
            ticks.push(self.tick(controller));
            if started.elapsed() >= duration {
                break;
            }
        }
        LiveRunResult {
            ticks,
            api_names: self.desc.api_names.clone(),
        }
    }

    /// Stop accepting, stop the workers, and join everything. Event
    /// loops are woken out of `epoll_wait`, observe the flag, close
    /// their connections on drop and are joined; then the worker pool.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(l) = self.loops.take() {
            l.join();
        }
        if let Some(p) = self.pool.take() {
            p.join();
        }
    }

    /// Abrupt termination — the in-process analogue of SIGKILL for
    /// chaos drills. The shutdown flag is raised, the event loops are
    /// woken, and every handle is dropped *without joining*: loops and
    /// workers observe the flag and die, in-flight requests are
    /// abandoned, and nothing waits for a drain.
    pub fn kill(self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(l) = self.loops.as_ref() {
            l.wake_all();
        }
        // `self` drops here; detached threads observe the flag and die.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{ApiSpec, CallNode, NoControl, ServiceSpec};
    use simnet::SimDuration;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    fn tiny_topo() -> Topology {
        let mut t = Topology::default();
        let s = t.add_service(ServiceSpec::new("svc", 1).queue_capacity(64));
        t.add_api(ApiSpec::single(
            "ping",
            CallNode::leaf(s, SimDuration::from_micros(50)),
        ));
        t
    }

    #[test]
    fn end_to_end_request_gets_ok_reply() {
        let mut server = LiveServer::start(&tiny_topo(), LiveConfig::default()).expect("start");
        let mut conn = TcpStream::connect(server.addr()).expect("connect");
        conn.write_all(b"REQ 42 0\n").expect("send");
        let mut reader = BufReader::new(conn.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("reply");
        assert!(line.starts_with("OK 42 "), "got {line:?}");
        // Unknown API and malformed lines answer ERR without killing the
        // connection.
        conn.write_all(b"REQ 43 9\njunk\nREQ 44 0\n").expect("send");
        let mut verdicts = Vec::new();
        for _ in 0..3 {
            line.clear();
            reader.read_line(&mut line).expect("reply");
            verdicts.push(line.split_whitespace().next().unwrap_or("").to_string());
        }
        verdicts.sort();
        assert_eq!(verdicts, ["ERR", "ERR", "OK"], "verdicts {verdicts:?}");
        let tick = server.tick(&mut NoControl);
        assert_eq!(tick.obs.apis[0].name, "ping");
        server.shutdown();
    }

    /// One `GET` against the exposition endpoint; returns the body.
    fn http_get(addr: SocketAddr, path: &str) -> String {
        let mut conn = TcpStream::connect(addr).expect("connect metrics");
        conn.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .expect("send request");
        let mut reader = BufReader::new(conn);
        let mut status = String::new();
        reader.read_line(&mut status).expect("status line");
        assert!(status.contains("200"), "status {status:?}");
        let mut len = 0usize;
        let mut line = String::new();
        loop {
            line.clear();
            reader.read_line(&mut line).expect("header");
            if line == "\r\n" || line == "\n" {
                break;
            }
            if let Some(v) = line
                .to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(|v| v.trim().to_string())
            {
                len = v.parse().expect("content length");
            }
        }
        let mut body = vec![0u8; len];
        std::io::Read::read_exact(&mut reader, &mut body).expect("body");
        String::from_utf8(body).expect("utf8 body")
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_text_and_spans() {
        let mut server = LiveServer::start(&tiny_topo(), LiveConfig::default()).expect("start");
        let mut conn = TcpStream::connect(server.addr()).expect("connect");
        conn.write_all(b"REQ 1 0\n").expect("send");
        let mut reader = BufReader::new(conn.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("reply");
        assert!(line.starts_with("OK 1 "), "got {line:?}");
        server.tick(&mut NoControl);
        let text = http_get(server.metrics_addr(), "/metrics");
        assert!(
            text.contains("# TYPE topfull_gateway_requests_total counter"),
            "{text}"
        );
        assert!(
            text.contains("topfull_gateway_requests_total{api=\"ping\",verdict=\"admitted\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("topfull_request_duration_seconds_count{api=\"ping\"} 1"),
            "{text}"
        );
        let spans = http_get(server.metrics_addr(), "/spans");
        assert!(spans.contains("\"verdict\":\"admitted\""), "{spans}");
        server.shutdown();
    }

    #[test]
    fn traced_request_flows_to_trace_route_and_exemplars() {
        let mut server = LiveServer::start(&tiny_topo(), LiveConfig::default()).expect("start");
        let mut conn = TcpStream::connect(server.addr()).expect("connect");
        // Keyless traced request: `-` fills the key slot, trace id 5.
        conn.write_all(b"REQ 5 0 - 5\nREQ 6 0\n").expect("send");
        let mut reader = BufReader::new(conn);
        for _ in 0..2 {
            let mut line = String::new();
            reader.read_line(&mut line).expect("reply");
            assert!(line.starts_with("OK "), "got {line:?}");
        }
        server.tick(&mut NoControl);
        // The trace id links the wire, the trace log, and the metrics
        // exposition: /trace/<id> returns the causal chain, and the
        // latency histogram carries it as an OpenMetrics exemplar.
        let events = http_get(server.metrics_addr(), "/trace/5");
        assert!(
            events.contains("\"stage\":\"token_bucket\"")
                || events.contains("\"stage\":\"front_door\""),
            "admission stage missing: {events}"
        );
        assert!(events.contains("\"stage\":\"worker\""), "{events}");
        assert!(events.contains("\"stage\":\"reply\""), "{events}");
        // The untraced request (id 6) must not appear.
        assert!(!events.contains("\"request\":6"), "{events}");
        let all = http_get(server.metrics_addr(), "/trace");
        assert!(all.lines().count() >= events.lines().count());
        let text = http_get(server.metrics_addr(), "/metrics");
        assert!(text.contains("trace_id=\"5\""), "exemplar missing:\n{text}");
        assert!(
            text.contains("# TYPE topfull_slo_burn_rate gauge"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE topfull_loop_stage_seconds histogram"),
            "{text}"
        );
        server.shutdown();
    }

    #[test]
    fn duplicate_keyed_reads_coalesce_onto_one_flight() {
        // One API with a hefty burn so pipelined duplicates land while
        // the leader is still in flight (or, if the batch splits, after
        // it cached) — either way they coalesce, not re-execute.
        let mut t = Topology::default();
        let s = t.add_service(ServiceSpec::new("svc", 1).queue_capacity(64));
        t.add_api(ApiSpec::single(
            "read",
            CallNode::leaf(s, SimDuration::from_millis(20)),
        ));
        let cfg = LiveConfig {
            front: Some(cluster::front::FrontConfig {
                coalesce: Some(cluster::front::CoalesceConfig::default()),
                priority: None,
            }),
            ..LiveConfig::default()
        };
        let mut server = LiveServer::start(&t, cfg).expect("start");
        let mut conn = TcpStream::connect(server.addr()).expect("connect");
        conn.write_all(b"REQ 1 0 7\nREQ 2 0 7\nREQ 3 0 7\n")
            .expect("send");
        let mut reader = BufReader::new(conn);
        let mut ids = Vec::new();
        for _ in 0..3 {
            let mut line = String::new();
            reader.read_line(&mut line).expect("reply");
            let mut parts = line.split_whitespace();
            assert_eq!(parts.next(), Some("OK"), "got {line:?}");
            ids.push(parts.next().expect("id").to_string());
        }
        ids.sort();
        assert_eq!(ids, ["1", "2", "3"]);
        let text = http_get(server.metrics_addr(), "/metrics");
        let hits: u64 = text
            .lines()
            .filter(|l| l.starts_with("topfull_coalesce_hit_total"))
            .map(|l| l.split_whitespace().last().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(hits, 2, "two of three duplicates coalesced:\n{text}");
        let tick = server.tick(&mut NoControl);
        assert_eq!(tick.obs.apis[0].admitted, tick.obs.apis[0].offered);
        server.shutdown();
    }

    #[test]
    fn zero_rate_limit_rejects_at_entry() {
        struct Throttle;
        impl Controller for Throttle {
            fn control(&mut self, obs: &ClusterObservation) -> Vec<cluster::RateLimitUpdate> {
                vec![cluster::RateLimitUpdate {
                    api: obs.apis[0].api,
                    rate: 0.0,
                }]
            }
        }
        let mut server = LiveServer::start(&tiny_topo(), LiveConfig::default()).expect("start");
        server.tick(&mut Throttle); // applies the zero limit
        assert_eq!(server.rate_limit(0), 0.0);
        let mut conn = TcpStream::connect(server.addr()).expect("connect");
        conn.write_all(b"REQ 7 0\n").expect("send");
        let mut line = String::new();
        BufReader::new(conn).read_line(&mut line).expect("reply");
        assert_eq!(line, "REJ 7 limit\n");
        let tick = server.tick(&mut NoControl);
        assert!(tick.obs.apis[0].offered > 0.0);
        assert_eq!(tick.obs.apis[0].admitted, 0.0);
        server.shutdown();
    }
}
