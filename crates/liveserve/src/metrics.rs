//! Wall-clock metric windows → [`ClusterObservation`].
//!
//! The live plane's analogue of the engine's `metrics` module: per-API
//! and per-service counters accumulate lock-free on the request hot path
//! (atomics; the latency histogram takes a short mutex), and the control
//! thread folds a window into the *same* [`ClusterObservation`] struct
//! the simulator produces — so `core::{detector, clustering,
//! rate_controller}` and the trained policy run unchanged against real
//! threads and sockets.

use cluster::observe::{ApiWindow, ClusterObservation, ServiceWindow};
use cluster::resilience::ResilienceStats;
use cluster::tracing::{Span, SpanVerdict, TraceCollector};
use cluster::types::{ApiId, BusinessPriority, ServiceId};
use cluster::Topology;
use simnet::{LatencyHistogram, SimDuration, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Raw spans retained for `/spans` export.
const RAW_SPAN_BUFFER: usize = 2048;
/// Path-learner retention window for the live tracer.
const TRACE_WINDOW_SECS: u64 = 60;

/// Static facts about the served application, captured once at startup.
pub struct AppDescriptor {
    pub service_names: Vec<String>,
    pub replicas: Vec<u32>,
    pub api_names: Vec<String>,
    pub business: Vec<BusinessPriority>,
    /// Topology union per API — the live plane's execution-path map.
    pub api_paths: Vec<Vec<ServiceId>>,
    pub slo: SimDuration,
}

impl AppDescriptor {
    /// Capture the descriptor of a topology under a latency SLO.
    pub fn of(topo: &Topology, slo: Duration) -> Self {
        AppDescriptor {
            service_names: topo.services().map(|(_, s)| s.name.clone()).collect(),
            replicas: topo.services().map(|(_, s)| s.replicas).collect(),
            api_names: topo.apis().map(|(_, a)| a.name.clone()).collect(),
            business: topo.apis().map(|(_, a)| a.business).collect(),
            api_paths: topo.api_service_map(),
            slo: SimDuration::from_nanos(slo.as_nanos() as u64),
        }
    }
}

/// Per-API window accumulators (atomic on the hot path), plus cumulative
/// registered instruments (never reset; `/metrics` scrapes read these).
struct ApiCell {
    offered: AtomicU64,
    admitted: AtomicU64,
    good: AtomicU64,
    slo_violated: AtomicU64,
    failed: AtomicU64,
    latencies: Mutex<LatencyHistogram>,
    cum_offered: obs::Counter,
    cum_admitted: obs::Counter,
    cum_rejected: obs::Counter,
    cum_good: obs::Counter,
    cum_slo_violated: obs::Counter,
    cum_failed: obs::Counter,
    cum_latency: obs::Histogram,
}

impl ApiCell {
    fn new() -> Self {
        ApiCell {
            offered: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            good: AtomicU64::new(0),
            slo_violated: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            latencies: Mutex::new(LatencyHistogram::new()),
            cum_offered: obs::Counter::unregistered(),
            cum_admitted: obs::Counter::unregistered(),
            cum_rejected: obs::Counter::unregistered(),
            cum_good: obs::Counter::unregistered(),
            cum_slo_violated: obs::Counter::unregistered(),
            cum_failed: obs::Counter::unregistered(),
            cum_latency: obs::Histogram::unregistered(),
        }
    }
}

/// Per-service window accumulators.
struct ServiceCell {
    busy_ns: AtomicU64,
    started_calls: AtomicU64,
    dropped_calls: AtomicU64,
    queue_delay_ns: AtomicU64,
    /// Live queue-depth gauge (not reset at window close).
    depth: AtomicU64,
    /// Registered gauges, refreshed at each window close.
    util_gauge: obs::Gauge,
    depth_gauge: obs::Gauge,
}

impl ServiceCell {
    fn new() -> Self {
        ServiceCell {
            busy_ns: AtomicU64::new(0),
            started_calls: AtomicU64::new(0),
            dropped_calls: AtomicU64::new(0),
            queue_delay_ns: AtomicU64::new(0),
            depth: AtomicU64::new(0),
            util_gauge: obs::Gauge::unregistered(),
            depth_gauge: obs::Gauge::unregistered(),
        }
    }
}

/// Per-API SLO burn-rate gauges, refreshed by the control tick from the
/// [`obs::SloMonitor`]'s signals.
struct SloCell {
    burn_fast: obs::Gauge,
    burn_slow: obs::Gauge,
    budget: obs::Gauge,
}

impl SloCell {
    fn new() -> Self {
        SloCell {
            burn_fast: obs::Gauge::unregistered(),
            burn_slow: obs::Gauge::unregistered(),
            budget: obs::Gauge::unregistered(),
        }
    }
}

/// Per-stage event-loop profiling histograms. Each records one sample
/// per *batch* (wakeup), not per request — the profiling budget is one
/// `Instant` pair per batch phase.
struct StageCells {
    loop_read_parse: obs::Histogram,
    loop_admit: obs::Histogram,
    loop_write: obs::Histogram,
    front_door: obs::Histogram,
    token_bucket: obs::Histogram,
}

impl StageCells {
    fn new() -> Self {
        StageCells {
            loop_read_parse: obs::Histogram::unregistered(),
            loop_admit: obs::Histogram::unregistered(),
            loop_write: obs::Histogram::unregistered(),
            front_door: obs::Histogram::unregistered(),
            token_bucket: obs::Histogram::unregistered(),
        }
    }
}

/// An event-loop batch phase, for [`LiveMetrics::on_loop_stage`].
#[derive(Clone, Copy, Debug)]
pub enum LoopStage {
    /// Socket drain + wire parse (per wakeup).
    ReadParse,
    /// Batched admission through the stage pipeline.
    Admit,
    /// Response flush across dirty connections.
    Write,
}

/// A front-door admission stage, for [`LiveMetrics::on_front_stage`].
/// Sampled on the first request of each batch only.
#[derive(Clone, Copy, Debug)]
pub enum FrontStage {
    FrontDoor,
    TokenBucket,
}

/// Shared live metric state; cloned into every gateway and worker thread
/// behind an `Arc`.
pub struct LiveMetrics {
    apis: Vec<ApiCell>,
    services: Vec<ServiceCell>,
    slo_cells: Vec<SloCell>,
    stages: StageCells,
    /// Live span sink: the same [`TraceCollector`] the simulator uses,
    /// fed wall-clock spans. Bounded raw buffer backs `/spans` export;
    /// `compact_traces` (called per control tick) bounds the learner.
    tracer: Mutex<TraceCollector>,
    /// Causal request traces: bounded ring of per-stage events for
    /// requests that opted in via the wire line's trace token. Served by
    /// `GET /trace[/<id>]`.
    traces: obs::TraceLog,
}

impl LiveMetrics {
    pub fn new(num_apis: usize, num_services: usize) -> Self {
        LiveMetrics {
            apis: (0..num_apis).map(|_| ApiCell::new()).collect(),
            services: (0..num_services).map(|_| ServiceCell::new()).collect(),
            slo_cells: (0..num_apis).map(|_| SloCell::new()).collect(),
            stages: StageCells::new(),
            tracer: Mutex::new(
                TraceCollector::new(num_apis, SimDuration::from_secs(TRACE_WINDOW_SECS))
                    .with_raw_buffer(RAW_SPAN_BUFFER),
            ),
            traces: obs::TraceLog::new(),
        }
    }

    /// Adopt every cumulative instrument into `reg` under stable family
    /// names, labelled with the application's API/service names.
    pub fn register_into(&self, reg: &obs::Registry, desc: &AppDescriptor) {
        self.register_with(reg, desc, &[]);
    }

    /// Like [`LiveMetrics::register_into`], but every family carries an
    /// extra `shard` label — N gateway shards expose through one
    /// registry without series collisions.
    pub fn register_into_sharded(&self, reg: &obs::Registry, desc: &AppDescriptor, shard: usize) {
        let shard = shard.to_string();
        self.register_with(reg, desc, &[("shard", shard.as_str())]);
    }

    fn register_with(&self, reg: &obs::Registry, desc: &AppDescriptor, extra: &[(&str, &str)]) {
        fn join<'a>(
            base: &[(&'a str, &'a str)],
            extra: &[(&'a str, &'a str)],
        ) -> Vec<(&'a str, &'a str)> {
            base.iter().chain(extra.iter()).copied().collect()
        }
        for (i, cell) in self.apis.iter().enumerate() {
            let api = desc.api_names[i].as_str();
            for (verdict, c) in [
                ("offered", &cell.cum_offered),
                ("admitted", &cell.cum_admitted),
                ("rejected", &cell.cum_rejected),
            ] {
                reg.register_counter(
                    "topfull_gateway_requests_total",
                    &join(&[("api", api), ("verdict", verdict)], extra),
                    c,
                );
            }
            for (outcome, c) in [
                ("good", &cell.cum_good),
                ("slo_violated", &cell.cum_slo_violated),
                ("failed", &cell.cum_failed),
            ] {
                reg.register_counter(
                    "topfull_request_outcomes_total",
                    &join(&[("api", api), ("outcome", outcome)], extra),
                    c,
                );
            }
            reg.register_histogram(
                "topfull_request_duration_seconds",
                &join(&[("api", api)], extra),
                &cell.cum_latency,
            );
        }
        for (i, cell) in self.slo_cells.iter().enumerate() {
            let api = desc.api_names[i].as_str();
            reg.register_gauge(
                "topfull_slo_burn_rate",
                &join(&[("api", api), ("window", "fast")], extra),
                &cell.burn_fast,
            );
            reg.register_gauge(
                "topfull_slo_burn_rate",
                &join(&[("api", api), ("window", "slow")], extra),
                &cell.burn_slow,
            );
            // Budget reads 1.0 (untouched) until the first window closes.
            cell.budget.set(1.0);
            reg.register_gauge(
                "topfull_slo_budget_remaining",
                &join(&[("api", api)], extra),
                &cell.budget,
            );
        }
        for (stage, h) in [
            ("read_parse", &self.stages.loop_read_parse),
            ("admit", &self.stages.loop_admit),
            ("write", &self.stages.loop_write),
        ] {
            reg.register_histogram(
                "topfull_loop_stage_seconds",
                &join(&[("stage", stage)], extra),
                h,
            );
        }
        for (stage, h) in [
            ("front_door", &self.stages.front_door),
            ("token_bucket", &self.stages.token_bucket),
        ] {
            reg.register_histogram(
                "topfull_front_stage_seconds",
                &join(&[("stage", stage)], extra),
                h,
            );
        }
        for (i, cell) in self.services.iter().enumerate() {
            let svc = desc.service_names[i].as_str();
            reg.register_gauge(
                "topfull_service_utilization",
                &join(&[("service", svc)], extra),
                &cell.util_gauge,
            );
            reg.register_gauge(
                "topfull_service_queue_depth",
                &join(&[("service", svc)], extra),
                &cell.depth_gauge,
            );
        }
    }

    // ---- hot-path recording -------------------------------------------

    pub fn on_offered(&self, api: usize) {
        let cell = &self.apis[api];
        cell.offered.fetch_add(1, Ordering::Relaxed);
        cell.cum_offered.inc();
    }

    pub fn on_admitted(&self, api: usize) {
        let cell = &self.apis[api];
        cell.admitted.fetch_add(1, Ordering::Relaxed);
        cell.cum_admitted.inc();
    }

    /// The entry token bucket turned the request away. Window-level
    /// rejection is already implied by `offered - admitted`; this feeds
    /// the cumulative exposition counter only.
    pub fn on_rejected(&self, api: usize) {
        self.apis[api].cum_rejected.inc();
    }

    pub fn on_failed(&self, api: usize) {
        let cell = &self.apis[api];
        cell.failed.fetch_add(1, Ordering::Relaxed);
        cell.cum_failed.inc();
    }

    /// A request completed end-to-end with the given latency.
    pub fn on_complete(&self, api: usize, latency: Duration, slo: Duration) {
        self.on_complete_traced(api, latency, slo, None);
    }

    /// Like [`LiveMetrics::on_complete`]; a traced request additionally
    /// attaches its trace id to the latency histogram bucket it lands in
    /// (an OpenMetrics exemplar), so `/metrics` readers can jump from a
    /// suspicious bucket straight to `GET /trace/<id>`.
    pub fn on_complete_traced(
        &self,
        api: usize,
        latency: Duration,
        slo: Duration,
        trace: Option<u64>,
    ) {
        let cell = &self.apis[api];
        if latency <= slo {
            cell.good.fetch_add(1, Ordering::Relaxed);
            cell.cum_good.inc();
        } else {
            cell.slo_violated.fetch_add(1, Ordering::Relaxed);
            cell.cum_slo_violated.inc();
        }
        let d = SimDuration::from_nanos(latency.as_nanos() as u64);
        cell.latencies.lock().expect("latency lock").record(d);
        cell.cum_latency.record_with_exemplar(d, trace);
    }

    // ---- per-stage profiling ------------------------------------------

    /// One event-loop batch phase finished; `d` is the whole batch's
    /// wall time for that phase.
    pub fn on_loop_stage(&self, stage: LoopStage, d: Duration) {
        let h = match stage {
            LoopStage::ReadParse => &self.stages.loop_read_parse,
            LoopStage::Admit => &self.stages.loop_admit,
            LoopStage::Write => &self.stages.loop_write,
        };
        h.record(SimDuration::from_nanos(d.as_nanos() as u64));
    }

    /// One sampled front-door admission stage (first request of a
    /// batch).
    pub fn on_front_stage(&self, stage: FrontStage, d: Duration) {
        let h = match stage {
            FrontStage::FrontDoor => &self.stages.front_door,
            FrontStage::TokenBucket => &self.stages.token_bucket,
        };
        h.record(SimDuration::from_nanos(d.as_nanos() as u64));
    }

    // ---- SLO burn signals ---------------------------------------------

    /// Refresh the burn-rate/budget gauges from this tick's monitor
    /// signals (called by the control thread each window close).
    pub fn set_slo_signals(&self, signals: &[obs::SloBurnSignal]) {
        for s in signals {
            let Some(cell) = self.slo_cells.get(s.api as usize) else {
                continue;
            };
            cell.burn_fast.set(s.fast_burn);
            cell.burn_slow.set(s.slow_burn);
            cell.budget.set(s.budget_remaining);
        }
    }

    // ---- causal request traces ----------------------------------------

    /// Record one causal trace event (traced requests only).
    pub fn record_trace(&self, ev: obs::TraceEvent) {
        self.traces.push(ev);
    }

    /// The bounded causal trace log.
    pub fn trace_log(&self) -> &obs::TraceLog {
        &self.traces
    }

    /// The `/trace` endpoint body: JSONL, optionally filtered by id.
    pub fn traces_jsonl(&self, filter: Option<u64>) -> String {
        self.traces.to_jsonl(filter)
    }

    // ---- live tracing --------------------------------------------------

    /// Record one span (completed request or entry rejection).
    pub fn record_span(&self, span: Span) {
        self.tracer.lock().expect("tracer lock").record(span);
    }

    /// Prune expired path-learner entries (called per control tick).
    pub fn compact_traces(&self, now: SimTime) {
        self.tracer.lock().expect("tracer lock").compact(now);
    }

    /// Spans recorded so far (for tests/inspection).
    pub fn spans_recorded(&self) -> u64 {
        self.tracer.lock().expect("tracer lock").spans_recorded()
    }

    /// The raw span buffer as JSONL, one object per span, oldest first.
    pub fn spans_jsonl(&self) -> String {
        let tracer = self.tracer.lock().expect("tracer lock");
        let mut out = String::new();
        for s in tracer.raw_spans() {
            let parent = s.parent.map_or("null".to_string(), |p| p.0.to_string());
            let verdict = match s.verdict {
                SpanVerdict::Admitted => "admitted",
                SpanVerdict::RejectedAtEntry => "rejected_at_entry",
            };
            out.push_str(&format!(
                "{{\"request\":{},\"api\":{},\"service\":{},\"parent\":{},\"start\":{},\"end\":{},\"verdict\":\"{}\"}}\n",
                s.request,
                s.api.0,
                s.service.0,
                parent,
                s.start.as_secs_f64(),
                s.end.as_secs_f64(),
                verdict
            ));
        }
        out
    }

    /// A call started processing after waiting `queued` in the queue.
    pub fn on_started(&self, svc: usize, queued: Duration) {
        let cell = &self.services[svc];
        cell.started_calls.fetch_add(1, Ordering::Relaxed);
        cell.queue_delay_ns
            .fetch_add(queued.as_nanos() as u64, Ordering::Relaxed);
    }

    /// CPU burned at a service (wall time spent in the burn loop).
    pub fn on_busy(&self, svc: usize, burned: Duration) {
        self.services[svc]
            .busy_ns
            .fetch_add(burned.as_nanos() as u64, Ordering::Relaxed);
    }

    /// A call was dropped at a full service queue.
    pub fn on_dropped(&self, svc: usize) {
        self.services[svc]
            .dropped_calls
            .fetch_add(1, Ordering::Relaxed);
    }

    pub fn depth_inc(&self, svc: usize) {
        self.services[svc].depth.fetch_add(1, Ordering::Relaxed);
    }

    pub fn depth_dec(&self, svc: usize) {
        // Saturating: a dec can race a window close, never underflow.
        let d = &self.services[svc].depth;
        let _ = d.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(1))
        });
    }

    // ---- window close -------------------------------------------------

    /// Fold and reset the current window into a [`ClusterObservation`].
    ///
    /// `rate_limits` is the admission bank's current per-API limit
    /// mirror; `now`/`window` come from the server's [`WallClock`].
    ///
    /// [`WallClock`]: crate::clock::WallClock
    pub fn observe(
        &self,
        desc: &AppDescriptor,
        now: SimTime,
        window: SimDuration,
        rate_limits: &[f64],
    ) -> ClusterObservation {
        let window_ns = window.as_nanos().max(1);
        let secs = window_ns as f64 / 1e9;
        let services = self
            .services
            .iter()
            .enumerate()
            .map(|(i, cell)| {
                let busy = cell.busy_ns.swap(0, Ordering::Relaxed);
                let started = cell.started_calls.swap(0, Ordering::Relaxed);
                let dropped = cell.dropped_calls.swap(0, Ordering::Relaxed);
                let qd = cell.queue_delay_ns.swap(0, Ordering::Relaxed);
                // One worker thread emulates all replicas (per-call burn
                // is divided by the replica count), so the busy fraction
                // of the window *is* the pool utilization.
                let utilization = (busy as f64 / window_ns as f64).min(1.0);
                cell.util_gauge.set(utilization);
                cell.depth_gauge
                    .set(cell.depth.load(Ordering::Relaxed) as f64);
                ServiceWindow {
                    service: ServiceId(i as u32),
                    name: desc.service_names[i].clone(),
                    utilization,
                    alive_pods: desc.replicas[i],
                    desired_pods: desc.replicas[i],
                    queue_len: cell.depth.load(Ordering::Relaxed),
                    mean_queuing_delay: qd
                        .checked_div(started)
                        .map_or(SimDuration::ZERO, SimDuration::from_nanos),
                    started_calls: started,
                    dropped_calls: dropped,
                }
            })
            .collect();
        let apis = self
            .apis
            .iter()
            .enumerate()
            .map(|(i, cell)| {
                let mut hist = cell.latencies.lock().expect("latency lock");
                let (p50, p95, p99) = (
                    hist.quantile(0.50),
                    hist.quantile(0.95),
                    hist.quantile(0.99),
                );
                hist.reset();
                drop(hist);
                ApiWindow {
                    api: ApiId(i as u32),
                    name: desc.api_names[i].clone(),
                    business: desc.business[i],
                    offered: cell.offered.swap(0, Ordering::Relaxed) as f64 / secs,
                    admitted: cell.admitted.swap(0, Ordering::Relaxed) as f64 / secs,
                    goodput: cell.good.swap(0, Ordering::Relaxed) as f64 / secs,
                    slo_violated: cell.slo_violated.swap(0, Ordering::Relaxed) as f64 / secs,
                    failed: cell.failed.swap(0, Ordering::Relaxed) as f64 / secs,
                    p50,
                    p95,
                    p99,
                    rate_limit: rate_limits[i],
                }
            })
            .collect();
        ClusterObservation {
            now,
            window,
            services,
            apis,
            api_paths: desc.api_paths.clone(),
            slo: desc.slo,
            resilience: ResilienceStats::default(),
            slo_burn: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc() -> AppDescriptor {
        AppDescriptor {
            service_names: vec!["s0".into(), "s1".into()],
            replicas: vec![2, 1],
            api_names: vec!["a0".into()],
            business: vec![BusinessPriority(0)],
            api_paths: vec![vec![ServiceId(0), ServiceId(1)]],
            slo: SimDuration::from_millis(100),
        }
    }

    #[test]
    fn window_close_computes_rates_and_resets() {
        let m = LiveMetrics::new(1, 2);
        for _ in 0..100 {
            m.on_offered(0);
        }
        for _ in 0..80 {
            m.on_admitted(0);
        }
        for _ in 0..60 {
            m.on_complete(0, Duration::from_millis(10), Duration::from_millis(100));
        }
        for _ in 0..10 {
            m.on_complete(0, Duration::from_millis(500), Duration::from_millis(100));
        }
        for _ in 0..10 {
            m.on_failed(0);
        }
        m.on_busy(0, Duration::from_millis(500));
        m.on_started(0, Duration::from_millis(2));
        let obs = m.observe(
            &desc(),
            SimTime::from_secs(2),
            SimDuration::from_secs(2),
            &[f64::INFINITY],
        );
        let a = obs.api(ApiId(0));
        assert_eq!(a.offered, 50.0);
        assert_eq!(a.admitted, 40.0);
        assert_eq!(a.goodput, 30.0);
        assert_eq!(a.slo_violated, 5.0);
        assert_eq!(a.failed, 5.0);
        assert!(a.p99.expect("latencies recorded") >= SimDuration::from_millis(400));
        let s = obs.service(ServiceId(0));
        assert!((s.utilization - 0.25).abs() < 0.01, "{}", s.utilization);
        assert_eq!(s.started_calls, 1);
        // Second window starts from zero.
        let obs2 = m.observe(
            &desc(),
            SimTime::from_secs(3),
            SimDuration::from_secs(1),
            &[f64::INFINITY],
        );
        assert_eq!(obs2.api(ApiId(0)).offered, 0.0);
        assert_eq!(obs2.service(ServiceId(0)).utilization, 0.0);
        assert!(obs2.api(ApiId(0)).p99.is_none(), "histogram was reset");
    }

    #[test]
    fn cumulative_instruments_survive_window_close() {
        let m = LiveMetrics::new(1, 1);
        let reg = obs::Registry::new();
        let d = AppDescriptor {
            service_names: vec!["svc".into()],
            replicas: vec![1],
            api_names: vec!["ping".into()],
            business: vec![BusinessPriority(0)],
            api_paths: vec![vec![ServiceId(0)]],
            slo: SimDuration::from_millis(100),
        };
        m.register_into(&reg, &d);
        m.on_offered(0);
        m.on_offered(0);
        m.on_admitted(0);
        m.on_rejected(0);
        m.on_complete(0, Duration::from_millis(10), Duration::from_millis(100));
        // Window close resets the window atomics but not the cumulative
        // registered counters.
        let _ = m.observe(&d, SimTime::from_secs(1), SimDuration::from_secs(1), &[1.0]);
        let text = reg.render_prometheus();
        assert!(
            text.contains("topfull_gateway_requests_total{api=\"ping\",verdict=\"offered\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("topfull_gateway_requests_total{api=\"ping\",verdict=\"admitted\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("topfull_gateway_requests_total{api=\"ping\",verdict=\"rejected\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("topfull_request_duration_seconds_count{api=\"ping\"} 1"),
            "{text}"
        );
        assert!(text.contains("topfull_service_utilization{service=\"svc\"}"));
    }

    #[test]
    fn spans_export_as_jsonl() {
        let m = LiveMetrics::new(1, 1);
        m.record_span(Span {
            request: 7,
            api: ApiId(0),
            service: ServiceId(0),
            parent: None,
            start: SimTime::from_millis(100),
            end: SimTime::from_millis(150),
            verdict: SpanVerdict::Admitted,
        });
        m.record_span(Span {
            request: 8,
            api: ApiId(0),
            service: ServiceId(0),
            parent: None,
            start: SimTime::from_millis(160),
            end: SimTime::from_millis(160),
            verdict: SpanVerdict::RejectedAtEntry,
        });
        let jsonl = m.spans_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains("\"request\":7"), "{jsonl}");
        assert!(jsonl.contains("\"verdict\":\"admitted\""), "{jsonl}");
        assert!(
            jsonl.contains("\"verdict\":\"rejected_at_entry\""),
            "{jsonl}"
        );
        assert_eq!(m.spans_recorded(), 2);
        m.compact_traces(SimTime::from_secs(120));
    }

    #[test]
    fn depth_gauge_survives_windows_and_never_underflows() {
        let m = LiveMetrics::new(1, 1);
        m.depth_inc(0);
        m.depth_inc(0);
        m.depth_dec(0);
        let d = AppDescriptor {
            service_names: vec!["s".into()],
            replicas: vec![1],
            api_names: vec!["a".into()],
            business: vec![BusinessPriority(0)],
            api_paths: vec![vec![ServiceId(0)]],
            slo: SimDuration::from_secs(1),
        };
        let obs = m.observe(&d, SimTime::from_secs(1), SimDuration::from_secs(1), &[1.0]);
        assert_eq!(obs.service(ServiceId(0)).queue_len, 1);
        m.depth_dec(0);
        m.depth_dec(0); // extra dec must not wrap
        let obs = m.observe(&d, SimTime::from_secs(2), SimDuration::from_secs(1), &[1.0]);
        assert_eq!(obs.service(ServiceId(0)).queue_len, 0);
    }
}
