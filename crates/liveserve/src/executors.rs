//! The worker pool: real threads burning real CPU along the application
//! DAG.
//!
//! Each service gets **one worker thread** and a bounded queue
//! (`mpsc::sync_channel` sized to the topology's `queue_capacity`). A
//! request admitted by the gateway becomes a [`Job`] that hops through
//! the per-API stage list — the pre-order flattening of the API's
//! primary call path — burning `cost × cpu_scale / (replicas ×
//! pod_speed)` of wall-clock CPU at every stage. Dividing the burn by
//! the replica count makes the single thread emulate the whole replica
//! pool: its busy fraction of the window equals the pool utilization the
//! simulator would report, so relative bottlenecks (recommendation
//! before frontend, etc.) land in the same order as in the simulator.
//!
//! ## Completion handoff
//!
//! Workers never touch sockets. A finished (or shed) job's response
//! line goes back to the event loop that owns the connection through a
//! [`ReplySink`]: an unbounded completion queue plus that loop's
//! [`Waker`]. The loop drains the queue on wakeup, appends each line to
//! the owning connection's output buffer (connections are identified by
//! generation-tagged tokens, so a completion for a closed-and-reused
//! slot is dropped, not misdelivered) and flushes once per wakeup —
//! response syscalls are amortized across however many completions the
//! burst produced.
//!
//! Divergence from the simulator, by design (documented in DESIGN.md
//! §12): stages execute **linearly** — fan-out children run one after
//! another on the child service's thread rather than in parallel — and
//! only the primary (first) path of a branching API is exercised.

use crate::clock::WallClock;
use crate::front::{self, LiveAdmission};
use crate::metrics::LiveMetrics;
use crate::poller::Waker;
use cluster::tracing::{Span, SpanVerdict};
use cluster::types::{ApiId, ServiceId};
use cluster::Topology;
use simnet::SimDuration;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One hop of a request's execution path.
#[derive(Clone, Copy, Debug)]
pub struct Stage {
    pub service: usize,
    /// Wall-clock CPU to burn at this hop.
    pub burn: Duration,
}

/// A response line travelling from a worker back to the event loop that
/// owns the connection.
pub struct Completion {
    /// Generation-tagged connection token ([`ReplySink::token`]).
    pub token: u64,
    /// The full response line, newline included.
    pub line: String,
}

/// Route back to one connection on one event loop. Cloned into every
/// job admitted on that connection.
#[derive(Clone)]
pub struct ReplySink {
    /// The owning loop's token for the connection (slot + generation).
    pub token: u64,
    tx: Sender<Completion>,
    waker: Waker,
}

impl ReplySink {
    pub fn new(token: u64, tx: Sender<Completion>, waker: Waker) -> Self {
        ReplySink { token, tx, waker }
    }

    /// Queue a response line and wake the owning loop. Wakes coalesce in
    /// the loop's eventfd, so a burst of completions costs one wakeup.
    pub fn send(&self, line: String) {
        if self
            .tx
            .send(Completion {
                token: self.token,
                line,
            })
            .is_ok()
        {
            self.waker.wake();
        }
    }
}

/// A request in flight through the worker pool.
pub struct Job {
    pub id: u64,
    pub api: usize,
    /// When the gateway admitted the request (end-to-end latency anchor).
    pub accepted: Instant,
    /// When the job entered the current service queue.
    pub enqueued: Instant,
    /// Index into the API's stage list.
    pub stage: usize,
    /// `(api, key)` when this job leads a coalesced read; its
    /// completion (or failure) settles the flight and releases the
    /// followers parked behind it.
    pub flight: Option<(u32, u64)>,
    /// Causal-tracing opt-in: the wire line's trace id, threaded through
    /// the worker pool so completion events and the latency exemplar
    /// link back to the same trace.
    pub trace: Option<u64>,
    /// Completion route to the owning connection's event loop.
    pub reply: ReplySink,
}

/// Immutable routing table shared by the gateway and every worker.
pub struct Routing {
    /// Per-API linear stage lists.
    pub stages: Vec<Vec<Stage>>,
    /// Per-service bounded work queues.
    pub queues: Vec<SyncSender<Job>>,
    pub slo: Duration,
    /// The server's clock, for span timestamps.
    pub clock: WallClock,
    /// The gateway's admission bank, for settling coalesced flights
    /// from worker threads. `None` when no front door is configured.
    pub admission: Option<Arc<Mutex<LiveAdmission>>>,
}

impl Routing {
    /// Submit `job` to the queue of its current stage's service,
    /// recording metrics on both outcomes. Returns `false` (and replies
    /// `ERR`) when the queue is full.
    pub fn submit(&self, job: Job, metrics: &LiveMetrics) -> bool {
        let svc = self.stages[job.api][job.stage].service;
        let api = job.api;
        match self.queues[svc].try_send(job) {
            Ok(()) => {
                metrics.depth_inc(svc);
                true
            }
            Err(err) => {
                let job = match err {
                    TrySendError::Full(j) => j,
                    TrySendError::Disconnected(j) => j,
                };
                metrics.on_dropped(svc);
                metrics.on_failed(api);
                if let Some(trace) = job.trace {
                    metrics.record_trace(obs::TraceEvent {
                        trace,
                        request: job.id,
                        api: api as u32,
                        shard: 0,
                        stage: "worker".into(),
                        outcome: "error".into(),
                        at: self.clock.now().as_secs_f64(),
                        dur: 0.0,
                    });
                }
                job.reply.send(format!("ERR {}\n", job.id));
                // A failed leader clears its flight so followers fail
                // fast instead of hanging on a leader that will never
                // complete.
                if let Some((api, key)) = job.flight {
                    if let Some(adm) = self.admission.as_deref() {
                        front::settle_flight(
                            adm,
                            metrics,
                            self.slo,
                            api,
                            key,
                            None,
                            self.clock.now(),
                        );
                    }
                }
                false
            }
        }
    }
}

/// Flatten the primary path of each API into a linear stage list.
///
/// `cpu_scale` rescales every burn so the pool's saturation point can be
/// tuned to the host: capacity scales as `1 / cpu_scale`.
pub fn build_stages(topo: &Topology, cpu_scale: f64) -> Vec<Vec<Stage>> {
    topo.apis()
        .map(|(_, api)| {
            let mut stages = Vec::new();
            let (_, root) = &api.paths[0];
            root.visit(&mut |node| {
                let svc = topo.service(node.service);
                let burn =
                    node.cost.as_secs_f64() * cpu_scale / (f64::from(svc.replicas) * svc.pod_speed);
                stages.push(Stage {
                    service: node.service.0 as usize,
                    burn: Duration::from_secs_f64(burn.max(0.0)),
                });
            });
            stages
        })
        .collect()
}

/// The pool of per-service worker threads.
pub struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn one worker per service and return the pool plus the routing
    /// table to feed it through.
    pub fn start(
        topo: &Topology,
        cpu_scale: f64,
        slo: Duration,
        clock: WallClock,
        metrics: &Arc<LiveMetrics>,
        shutdown: &Arc<AtomicBool>,
        admission: Option<Arc<Mutex<LiveAdmission>>>,
    ) -> (Self, Arc<Routing>) {
        let stages = build_stages(topo, cpu_scale);
        let mut queues = Vec::with_capacity(topo.num_services());
        let mut receivers = Vec::with_capacity(topo.num_services());
        for (_, svc) in topo.services() {
            let (tx, rx) = sync_channel::<Job>(svc.queue_capacity as usize);
            queues.push(tx);
            receivers.push(rx);
        }
        let routing = Arc::new(Routing {
            stages,
            queues,
            slo,
            clock,
            admission,
        });
        let handles = receivers
            .into_iter()
            .enumerate()
            .map(|(svc, rx)| {
                let routing = Arc::clone(&routing);
                let metrics = Arc::clone(metrics);
                let shutdown = Arc::clone(shutdown);
                std::thread::Builder::new()
                    .name(format!("live-worker-{svc}"))
                    .spawn(move || worker_loop(svc, &rx, &routing, &metrics, &shutdown))
                    .expect("spawn worker thread")
            })
            .collect();
        (WorkerPool { handles }, routing)
    }

    /// Join all workers. Call after the shutdown flag is set; the routing
    /// table (and its senders) must be dropped by then or workers linger
    /// until the next 25ms poll.
    pub fn join(self) {
        for h in self.handles {
            let _ = h.join();
        }
    }
}

fn worker_loop(
    svc: usize,
    rx: &Receiver<Job>,
    routing: &Routing,
    metrics: &LiveMetrics,
    shutdown: &AtomicBool,
) {
    while !shutdown.load(Ordering::Relaxed) {
        let Ok(mut job) = rx.recv_timeout(Duration::from_millis(25)) else {
            continue;
        };
        metrics.depth_dec(svc);
        let started = Instant::now();
        metrics.on_started(svc, started.duration_since(job.enqueued));
        let burn = routing.stages[job.api][job.stage].burn;
        spin_burn(burn);
        // Measured, not nominal: preemption stretches the spin, and the
        // detector should see the wall time this thread truly held.
        metrics.on_busy(svc, started.elapsed());
        job.stage += 1;
        if job.stage < routing.stages[job.api].len() {
            job.enqueued = Instant::now();
            routing.submit(job, metrics);
        } else {
            let latency = job.accepted.elapsed();
            metrics.on_complete_traced(job.api, latency, routing.slo, job.trace);
            // One end-to-end span per completed request, anchored at the
            // API's entry service — the live analogue of the simulator's
            // admitted spans (exported via `/spans`).
            let end = routing.clock.now();
            let entry = routing.stages[job.api][0].service;
            metrics.record_span(Span {
                request: job.id,
                api: ApiId(job.api as u32),
                service: ServiceId(entry as u32),
                parent: None,
                start: end - SimDuration::from_nanos(latency.as_nanos() as u64),
                end,
                verdict: SpanVerdict::Admitted,
            });
            if let Some(trace) = job.trace {
                // Two closing events per traced request: the worker span
                // covering admission → completion, and the reply handoff.
                // No extra clock reads — `end` and `latency` were needed
                // above anyway.
                let lat_secs = latency.as_secs_f64();
                metrics.record_trace(obs::TraceEvent {
                    trace,
                    request: job.id,
                    api: job.api as u32,
                    shard: 0,
                    stage: "worker".into(),
                    outcome: "served".into(),
                    at: end.as_secs_f64() - lat_secs,
                    dur: lat_secs,
                });
                metrics.record_trace(obs::TraceEvent {
                    trace,
                    request: job.id,
                    api: job.api as u32,
                    shard: 0,
                    stage: "reply".into(),
                    outcome: "sent".into(),
                    at: end.as_secs_f64(),
                    dur: 0.0,
                });
            }
            job.reply
                .send(format!("OK {} {}\n", job.id, latency.as_micros()));
            // A completed leader publishes its payload to the response
            // cache and releases the followers parked on its flight.
            if let Some((api, key)) = job.flight {
                if let Some(adm) = routing.admission.as_deref() {
                    front::settle_flight(
                        adm,
                        metrics,
                        routing.slo,
                        api,
                        key,
                        Some(&latency.as_micros().to_string()),
                        end,
                    );
                }
            }
        }
    }
}

/// Burn CPU for `d` by spinning — sleep would model waiting, not work,
/// and the utilization signal the detector consumes must reflect genuine
/// busy time on the core.
fn spin_burn(d: Duration) {
    let end = Instant::now() + d;
    while Instant::now() < end {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{ApiSpec, CallNode, ServiceSpec, Topology};
    use simnet::SimDuration;
    use std::sync::mpsc::channel;

    fn test_sink(token: u64) -> (ReplySink, Receiver<Completion>) {
        let (tx, rx) = channel();
        let waker = Waker::new().expect("eventfd");
        (ReplySink::new(token, tx, waker), rx)
    }

    fn two_stage_topo() -> Topology {
        let mut t = Topology::default();
        let front = t.add_service(ServiceSpec::new("front", 2).queue_capacity(4));
        let back = t.add_service(ServiceSpec::new("back", 1).queue_capacity(4));
        t.add_api(ApiSpec::single(
            "get",
            CallNode {
                service: front,
                cost: SimDuration::from_micros(200),
                children: vec![CallNode::leaf(back, SimDuration::from_micros(100))],
            },
        ));
        t
    }

    #[test]
    fn stages_flatten_primary_path_with_replica_scaling() {
        let topo = two_stage_topo();
        let stages = build_stages(&topo, 1.0);
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].len(), 2);
        assert_eq!(stages[0][0].service, 0);
        // 200µs over 2 replicas → 100µs of real burn.
        assert_eq!(stages[0][0].burn, Duration::from_micros(100));
        assert_eq!(stages[0][1].service, 1);
        assert_eq!(stages[0][1].burn, Duration::from_micros(100));
        // cpu_scale rescales linearly.
        let scaled = build_stages(&topo, 0.5);
        assert_eq!(scaled[0][0].burn, Duration::from_micros(50));
    }

    #[test]
    fn jobs_traverse_stages_and_complete_with_tagged_tokens() {
        let topo = two_stage_topo();
        let metrics = Arc::new(LiveMetrics::new(1, 2));
        let shutdown = Arc::new(AtomicBool::new(false));
        let (pool, routing) = WorkerPool::start(
            &topo,
            1.0,
            Duration::from_millis(100),
            WallClock::start(),
            &metrics,
            &shutdown,
            None,
        );
        let (sink, rx) = test_sink(0xAB00_0001);
        let now = Instant::now();
        for id in 0..8 {
            let ok = routing.submit(
                Job {
                    id,
                    api: 0,
                    accepted: now,
                    enqueued: Instant::now(),
                    stage: 0,
                    flight: None,
                    trace: None,
                    reply: sink.clone(),
                },
                &metrics,
            );
            assert!(ok, "queue of 4 drains fast enough for 8 paced jobs");
            std::thread::sleep(Duration::from_millis(1));
        }
        let mut oks = 0;
        for _ in 0..8 {
            let c = rx
                .recv_timeout(Duration::from_secs(2))
                .expect("completion within 2s");
            assert_eq!(c.token, 0xAB00_0001, "completion carries the conn token");
            assert!(c.line.starts_with("OK "), "unexpected reply {:?}", c.line);
            assert!(c.line.ends_with('\n'));
            oks += 1;
        }
        assert_eq!(oks, 8);
        shutdown.store(true, Ordering::Relaxed);
        drop(routing);
        pool.join();
    }

    #[test]
    fn full_queue_rejects_with_err() {
        let mut t = Topology::default();
        let s = t.add_service(ServiceSpec::new("slow", 1).queue_capacity(1));
        t.add_api(ApiSpec::single(
            "one",
            CallNode::leaf(s, SimDuration::from_millis(20)),
        ));
        let metrics = Arc::new(LiveMetrics::new(1, 1));
        let shutdown = Arc::new(AtomicBool::new(false));
        let (pool, routing) = WorkerPool::start(
            &t,
            1.0,
            Duration::from_millis(100),
            WallClock::start(),
            &metrics,
            &shutdown,
            None,
        );
        let (sink, rx) = test_sink(1);
        // Flood far past the queue bound; at least one ERR must surface.
        let mut accepted = 0;
        for id in 0..32 {
            if routing.submit(
                Job {
                    id,
                    api: 0,
                    accepted: Instant::now(),
                    enqueued: Instant::now(),
                    stage: 0,
                    flight: None,
                    trace: None,
                    reply: sink.clone(),
                },
                &metrics,
            ) {
                accepted += 1;
            }
        }
        assert!(accepted < 32, "bounded queue must shed some of the flood");
        let mut errs = 0;
        while let Ok(c) = rx.try_recv() {
            if c.line.starts_with("ERR ") {
                errs += 1;
            }
        }
        assert_eq!(errs, 32 - accepted, "every shed job replied ERR");
        shutdown.store(true, Ordering::Relaxed);
        drop(routing);
        pool.join();
    }
}
