//! Entry-point controller interface.
//!
//! TopFull (and its ablations) actuate the cluster exclusively through
//! per-API rate limits at the entry gateway — "unlike existing approaches
//! that control the load at every microservice, TopFull only controls the
//! load of external user-facing APIs" (§3). A [`Controller`] is invoked
//! once per control interval with the latest [`ClusterObservation`] and
//! returns the rate-limit updates to apply.

use crate::observe::ClusterObservation;
use crate::types::ApiId;
use serde::{Deserialize, Serialize};

/// One rate-limit change for one API.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RateLimitUpdate {
    pub api: ApiId,
    /// New admitted rate in requests/s; `f64::INFINITY` removes the limit.
    pub rate: f64,
}

impl RateLimitUpdate {
    /// Limit `api` to `rate` requests/s.
    pub fn limit(api: ApiId, rate: f64) -> Self {
        RateLimitUpdate { api, rate }
    }

    /// Remove the limit on `api`.
    pub fn unlimited(api: ApiId) -> Self {
        RateLimitUpdate {
            api,
            rate: f64::INFINITY,
        }
    }
}

/// An entry-point overload controller, ticked once per control interval.
pub trait Controller {
    /// Inspect the observation and return rate-limit updates. APIs not
    /// mentioned keep their current limits.
    fn control(&mut self, obs: &ClusterObservation) -> Vec<RateLimitUpdate>;

    /// Human-readable name for experiment reports.
    fn name(&self) -> &str {
        "controller"
    }

    /// Adopt a shared decision journal. Controllers that explain their
    /// verdicts (TopFull) record detector transitions, re-clusterings and
    /// rate actions here; the default is a no-op so baselines stay
    /// journal-free.
    fn attach_journal(&mut self, _journal: std::sync::Arc<obs::Journal>) {}
}

/// The "no overload control" baseline: never touches any rate limit.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoControl;

impl Controller for NoControl {
    fn control(&mut self, _obs: &ClusterObservation) -> Vec<RateLimitUpdate> {
        Vec::new()
    }

    fn name(&self) -> &str {
        "no-control"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_constructors() {
        let u = RateLimitUpdate::limit(ApiId(3), 120.0);
        assert_eq!(u.api, ApiId(3));
        assert_eq!(u.rate, 120.0);
        assert!(RateLimitUpdate::unlimited(ApiId(0)).rate.is_infinite());
    }

    #[test]
    fn no_control_is_inert() {
        let obs = ClusterObservation {
            now: simnet::SimTime::ZERO,
            window: simnet::SimDuration::from_secs(1),
            services: vec![],
            apis: vec![],
            api_paths: vec![],
            slo: simnet::SimDuration::from_secs(1),
            resilience: Default::default(),
            slo_burn: Vec::new(),
        };
        assert!(NoControl.control(&obs).is_empty());
        assert_eq!(NoControl.name(), "no-control");
    }
}
