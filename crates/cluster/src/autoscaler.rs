//! Autoscaling: the Kubernetes HPA replica law and a VM-pool cluster
//! autoscaler.
//!
//! The paper's autoscaler baseline is the stock Kubernetes horizontal pod
//! autoscaler (§6), whose core law is
//! `desired = ceil(current · utilization / target)`, evaluated every sync
//! period, with a stabilization window damping scale-*down*. New pods take
//! time to become ready, and when the node pool is out of vCPUs a cluster
//! autoscaler provisions whole VMs after a (large, swept in Fig. 19)
//! startup delay. These delays are the fundamental gap overload control
//! fills: "autoscalers take several seconds to minutes to provision
//! additional resources" (§1).

use crate::types::ServiceId;
use serde::{Deserialize, Serialize};
use simnet::{SimDuration, SimTime};

/// Horizontal pod autoscaler configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HpaConfig {
    /// Target utilization (k8s default is 0.8 of requested CPU).
    pub target_utilization: f64,
    /// How often the control loop runs (k8s default 15 s).
    pub sync_period: SimDuration,
    /// Scale-down stabilization: use the *maximum* desired count proposed
    /// within this window (k8s default 300 s; shorter here so experiments
    /// of a few minutes exercise it).
    pub stabilization: SimDuration,
    /// Per-service replica ceiling.
    pub max_replicas: u32,
    /// Tolerance band around the target within which no action is taken
    /// (k8s default 0.1).
    pub tolerance: f64,
}

impl Default for HpaConfig {
    fn default() -> Self {
        HpaConfig {
            target_utilization: 0.7,
            sync_period: SimDuration::from_secs(15),
            stabilization: SimDuration::from_secs(60),
            max_replicas: 1000,
            tolerance: 0.1,
        }
    }
}

/// Per-service HPA state.
#[derive(Clone, Debug)]
struct HpaServiceState {
    min_replicas: u32,
    /// Recent desired-count proposals for scale-down stabilization.
    proposals: Vec<(SimTime, u32)>,
}

/// The HPA controller across all services.
#[derive(Clone, Debug)]
pub struct Hpa {
    pub config: HpaConfig,
    states: Vec<HpaServiceState>,
    last_sync: SimTime,
    first_sync_done: bool,
}

impl Hpa {
    /// An HPA managing `min_replicas[i]` as the floor for service `i`
    /// (typically the topology's initial replica counts).
    pub fn new(config: HpaConfig, min_replicas: Vec<u32>) -> Self {
        Hpa {
            config,
            states: min_replicas
                .into_iter()
                .map(|m| HpaServiceState {
                    min_replicas: m.max(1),
                    proposals: Vec::new(),
                })
                .collect(),
            last_sync: SimTime::ZERO,
            first_sync_done: false,
        }
    }

    /// True when a sync is due at `now`.
    pub fn sync_due(&self, now: SimTime) -> bool {
        !self.first_sync_done || now.duration_since(self.last_sync) >= self.config.sync_period
    }

    /// Run one sync: given each service's `(utilization, current_replicas)`,
    /// return `(service, desired)` for services whose desired count
    /// changed.
    ///
    /// `current_replicas` should count pods that exist or are being
    /// created (k8s scales on spec, not readiness).
    pub fn sync(&mut self, now: SimTime, per_service: &[(f64, u32)]) -> Vec<(ServiceId, u32)> {
        assert_eq!(per_service.len(), self.states.len());
        self.last_sync = now;
        self.first_sync_done = true;
        let cfg = self.config.clone();
        let mut out = Vec::new();
        for (i, &(util, current)) in per_service.iter().enumerate() {
            let st = &mut self.states[i];
            let current = current.max(1);
            let ratio = util / cfg.target_utilization;
            // Tolerance band: no action when close to target.
            let raw = if (ratio - 1.0).abs() <= cfg.tolerance {
                current
            } else {
                (f64::from(current) * ratio).ceil() as u32
            };
            let raw = raw.clamp(st.min_replicas, cfg.max_replicas);
            // Record the proposal, prune old ones, and apply scale-down
            // stabilization: desired = max proposal in the window.
            st.proposals.push((now, raw));
            let horizon = now - cfg.stabilization;
            st.proposals.retain(|(t, _)| *t >= horizon);
            let desired = if raw < current {
                st.proposals
                    .iter()
                    .map(|(_, d)| *d)
                    .max()
                    .unwrap_or(raw)
                    .min(cfg.max_replicas)
            } else {
                raw
            };
            if desired != current {
                out.push((ServiceId(i as u32), desired));
            }
        }
        out
    }
}

/// Cluster-level vCPU pool with VM provisioning.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VmPoolConfig {
    /// vCPUs per VM (the paper's D48ds_v5 has 48).
    pub vcpus_per_vm: u32,
    /// VMs running at t = 0.
    pub initial_vms: u32,
    /// Upper bound on VMs (paper: "dynamically scale up to 10 VMs").
    pub max_vms: u32,
    /// Time from provisioning request to the VM's vCPUs being usable
    /// (swept 20/40/60 s in Fig. 19).
    pub vm_startup: SimDuration,
    /// vCPUs one pod occupies.
    pub vcpus_per_pod: f64,
}

impl Default for VmPoolConfig {
    fn default() -> Self {
        VmPoolConfig {
            vcpus_per_vm: 48,
            initial_vms: 2,
            max_vms: 10,
            vm_startup: SimDuration::from_secs(40),
            vcpus_per_pod: 1.0,
        }
    }
}

/// Tracks vCPU allocation and in-flight VM provisioning.
#[derive(Clone, Debug)]
pub struct VmPool {
    pub config: VmPoolConfig,
    vms: u32,
    vms_provisioning: u32,
    vcpus_used: f64,
}

impl VmPool {
    pub fn new(config: VmPoolConfig) -> Self {
        VmPool {
            vms: config.initial_vms,
            vms_provisioning: 0,
            vcpus_used: 0.0,
            config,
        }
    }

    /// Total vCPUs across running VMs.
    pub fn capacity(&self) -> f64 {
        f64::from(self.vms * self.config.vcpus_per_vm)
    }

    /// vCPUs currently allocated to pods.
    pub fn used(&self) -> f64 {
        self.vcpus_used
    }

    /// Running VM count.
    pub fn vms(&self) -> u32 {
        self.vms
    }

    /// Try to allocate one pod's vCPUs; false when the pool is exhausted.
    pub fn try_allocate_pod(&mut self) -> bool {
        let need = self.config.vcpus_per_pod;
        if self.vcpus_used + need <= self.capacity() + 1e-9 {
            self.vcpus_used += need;
            true
        } else {
            false
        }
    }

    /// Release one pod's vCPUs.
    pub fn release_pod(&mut self) {
        self.vcpus_used = (self.vcpus_used - self.config.vcpus_per_pod).max(0.0);
    }

    /// Request capacity for `pending_pods` more pods: returns how many new
    /// VMs to start provisioning now (the caller schedules their arrival
    /// after `config.vm_startup`).
    pub fn provision_for(&mut self, pending_pods: u32) -> u32 {
        let need_vcpus = self.vcpus_used + f64::from(pending_pods) * self.config.vcpus_per_pod;
        let have = self.capacity() + f64::from(self.vms_provisioning * self.config.vcpus_per_vm);
        let deficit = need_vcpus - have;
        if deficit <= 0.0 {
            return 0;
        }
        let want = (deficit / f64::from(self.config.vcpus_per_vm)).ceil() as u32;
        let slots = self
            .config
            .max_vms
            .saturating_sub(self.vms + self.vms_provisioning);
        let start = want.min(slots);
        self.vms_provisioning += start;
        start
    }

    /// A provisioned VM came online.
    pub fn vm_ready(&mut self) {
        debug_assert!(self.vms_provisioning > 0, "vm_ready without provisioning");
        self.vms_provisioning = self.vms_provisioning.saturating_sub(1);
        self.vms += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hpa2() -> Hpa {
        Hpa::new(
            HpaConfig {
                target_utilization: 0.5,
                sync_period: SimDuration::from_secs(15),
                stabilization: SimDuration::from_secs(60),
                max_replicas: 100,
                tolerance: 0.1,
            },
            vec![2, 2],
        )
    }

    #[test]
    fn hpa_scales_up_proportionally() {
        let mut h = hpa2();
        // Service 0 at 100% util with target 50% → double replicas.
        let ups = h.sync(SimTime::from_secs(15), &[(1.0, 4), (0.5, 2)]);
        assert_eq!(ups, vec![(ServiceId(0), 8)]);
    }

    #[test]
    fn hpa_tolerance_band_holds() {
        let mut h = hpa2();
        // 0.52/0.5 = 1.04 → within 10% tolerance → no change.
        assert!(h
            .sync(SimTime::from_secs(15), &[(0.52, 4), (0.45, 2)])
            .is_empty());
    }

    #[test]
    fn hpa_scale_down_is_stabilized() {
        let mut h = hpa2();
        // High utilization proposes 8.
        let ups = h.sync(SimTime::from_secs(15), &[(1.0, 4), (0.5, 2)]);
        assert_eq!(ups, vec![(ServiceId(0), 8)]);
        // Load drops immediately; proposal is 2 but the 60 s window still
        // holds the 8 → no scale-down yet.
        let ups = h.sync(SimTime::from_secs(30), &[(0.1, 8), (0.5, 2)]);
        assert!(ups.is_empty(), "stabilization holds, got {ups:?}");
        // After the window expires the scale-down goes through.
        let ups = h.sync(SimTime::from_secs(120), &[(0.1, 8), (0.5, 2)]);
        assert!(!ups.is_empty());
        assert!(ups[0].1 < 8);
    }

    #[test]
    fn hpa_respects_min_and_max() {
        let mut h = Hpa::new(
            HpaConfig {
                max_replicas: 6,
                ..HpaConfig::default()
            },
            vec![3],
        );
        // Utilization 0 → raw desire would be min; floor at 3.
        let ups = h.sync(SimTime::from_secs(300), &[(0.0, 3)]);
        assert!(ups.is_empty());
        // Explosive overload → capped at 6.
        let ups = h.sync(SimTime::from_secs(600), &[(1.0, 5)]);
        assert_eq!(ups, vec![(ServiceId(0), 6)]);
    }

    #[test]
    fn hpa_sync_due_follows_period() {
        let mut h = hpa2();
        assert!(h.sync_due(SimTime::ZERO), "first sync always due");
        h.sync(SimTime::ZERO, &[(0.5, 2), (0.5, 2)]);
        assert!(!h.sync_due(SimTime::from_secs(10)));
        assert!(h.sync_due(SimTime::from_secs(15)));
    }

    #[test]
    fn vm_pool_allocates_until_full() {
        let mut p = VmPool::new(VmPoolConfig {
            vcpus_per_vm: 4,
            initial_vms: 1,
            max_vms: 2,
            vm_startup: SimDuration::from_secs(40),
            vcpus_per_pod: 1.0,
        });
        for _ in 0..4 {
            assert!(p.try_allocate_pod());
        }
        assert!(!p.try_allocate_pod(), "pool exhausted at 4 vCPUs");
        p.release_pod();
        assert!(p.try_allocate_pod());
    }

    #[test]
    fn vm_pool_provisions_within_limits() {
        let mut p = VmPool::new(VmPoolConfig {
            vcpus_per_vm: 4,
            initial_vms: 1,
            max_vms: 3,
            vm_startup: SimDuration::from_secs(40),
            vcpus_per_pod: 1.0,
        });
        for _ in 0..4 {
            assert!(p.try_allocate_pod());
        }
        // Need room for 6 more pods → 6 vCPUs deficit → 2 VMs.
        assert_eq!(p.provision_for(6), 2);
        // Asking again while they provision starts nothing new.
        assert_eq!(p.provision_for(6), 0);
        p.vm_ready();
        p.vm_ready();
        assert_eq!(p.vms(), 3);
        assert_eq!(p.capacity(), 12.0);
        // max_vms reached: no more provisioning even with deficit.
        assert_eq!(p.provision_for(100), 0);
    }
}
