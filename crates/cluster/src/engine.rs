//! The discrete-event cluster engine.
//!
//! [`Engine`] executes a [`Topology`] under a [`Workload`]: requests
//! arrive at the gateway, traverse their API's call tree across services
//! and pods, and complete (within or beyond the SLO) or fail. The engine
//! also runs the metrics window, the HPA + VM-pool autoscaler, the
//! crash-loop prober and injected failures — everything that happens
//! *inside* the cluster. Overload controllers live outside: entry
//! controllers set gateway rate limits between [`Engine::run_until`]
//! calls (see [`crate::harness`]), and per-service admission controllers
//! plug in via [`Engine::set_admission`].
//!
//! ## Determinism
//!
//! The engine is single-threaded, draws randomness from one seeded RNG,
//! and uses a FIFO-stable event queue — a run is a pure function of
//! `(topology, config, workload, seed, control inputs)`.

use crate::admission::AdmissionControl;
use crate::autoscaler::{Hpa, HpaConfig, VmPool, VmPoolConfig};
use crate::failure::{CrashLoopConfig, FailureSpec};
use crate::faults::{FaultPlane, FaultSpec};
use crate::gateway::Gateway;
use crate::observe::{ApiWindow, ClusterObservation, ServiceWindow};
use crate::resilience::{EdgeBreakers, ResilienceConfig, ResilienceStats};
use crate::topology::{CallNode, Topology};
use crate::tracing::{Span, TraceCollector};
use crate::types::{ApiId, RequestMeta, RequestOutcome, ServiceId};
use crate::workload::{Arrival, ResponseKind, UserRef, Workload};
use rand::rngs::SmallRng;
use rand::Rng;
use rand_distr::{Distribution, LogNormal};
use simnet::{EventQueue, LatencyHistogram, SimDuration, SimTime};
use std::collections::{HashMap, VecDeque};

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Root RNG seed; forked per concern.
    pub seed: u64,
    /// Latency SLO defining goodput (paper: 1 s).
    pub slo: SimDuration,
    /// Observation / control window (paper: 1 s).
    pub control_interval: SimDuration,
    /// One-way network latency per hop.
    pub hop_latency: SimDuration,
    /// Log-normal sigma of service-time jitter (0 disables).
    pub service_jitter: f64,
    /// Gateway token-bucket depth in seconds of rate.
    pub gateway_burst_secs: f64,
    /// Time for a new pod to become ready once vCPUs are available.
    pub pod_startup: SimDuration,
    /// Crash-loop model for `crash_on_overload` services.
    pub crash: CrashLoopConfig,
    /// When true, the observation's `api_paths` come from the distributed
    /// tracing collector (paths *learned* from spans, §4.1/§5) instead of
    /// the static topology union.
    pub learn_paths: bool,
    /// Span retention window for learned paths.
    pub trace_window: SimDuration,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            seed: 1,
            slo: SimDuration::from_secs(1),
            control_interval: SimDuration::from_secs(1),
            hop_latency: SimDuration::from_micros(500),
            service_jitter: 0.1,
            gateway_burst_secs: 0.05,
            pod_startup: SimDuration::from_secs(10),
            crash: CrashLoopConfig::default(),
            learn_paths: false,
            trace_window: SimDuration::from_secs(60),
        }
    }
}

/// A call waiting in a pod queue. The cost is embedded so wasted work is
/// still executed even if the owning request has already failed.
#[derive(Clone, Copy, Debug)]
struct QueuedCall {
    req: u64,
    node: u32,
    cost: SimDuration,
    enqueued: SimTime,
}

/// A call being processed by a pod.
#[derive(Clone, Copy, Debug)]
struct InFlight {
    req: u64,
    node: u32,
    started: SimTime,
    done_at: SimTime,
}

#[derive(Clone, Debug, PartialEq)]
enum PodPhase {
    Ready,
    /// Crashed or injected-killed; restarting at the given time.
    Down,
    /// Tombstone after scale-down.
    Removed,
}

#[derive(Debug)]
struct Pod {
    phase: PodPhase,
    /// Bumped on crash so stale `PodDone` events are ignored.
    epoch: u64,
    queue: VecDeque<QueuedCall>,
    busy: Option<InFlight>,
    saturated_probes: u32,
    /// Consecutive crash-loop count, for exponential restart backoff
    /// (k8s CrashLoopBackOff: 10 s, 20 s, 40 s, … capped).
    crash_count: u32,
}

impl Pod {
    fn fresh() -> Self {
        Pod {
            phase: PodPhase::Ready,
            epoch: 0,
            queue: VecDeque::new(),
            busy: None,
            saturated_probes: 0,
            crash_count: 0,
        }
    }

    fn is_ready(&self) -> bool {
        self.phase == PodPhase::Ready
    }

    fn load(&self) -> usize {
        self.queue.len() + usize::from(self.busy.is_some())
    }
}

/// Per-service runtime state.
struct ServiceRt {
    pods: Vec<Pod>,
    /// Replicas the autoscaler wants.
    desired: u32,
    /// Pods allocated vCPUs and starting up (PodReady scheduled).
    starting: u32,
    /// Pods waiting for vCPUs.
    pending_unscheduled: u32,
    // --- per-window accumulators ---
    busy_ns: u64,
    queuing_delay_ns: u64,
    started_calls: u64,
    dropped_calls: u64,
    /// Integral of ready-pod count over the window (pod·ns).
    alive_integral_ns: u64,
    alive_last_change: SimTime,
}

impl ServiceRt {
    fn ready_pods(&self) -> u32 {
        self.pods.iter().filter(|p| p.is_ready()).count() as u32
    }

    /// Pods that exist or are being created (the HPA's "current").
    fn spec_pods(&self) -> u32 {
        self.pods
            .iter()
            .filter(|p| p.phase != PodPhase::Removed)
            .count() as u32
            + self.starting
            + self.pending_unscheduled
    }

    fn accumulate_alive(&mut self, now: SimTime) {
        let ready = u64::from(self.ready_pods());
        let dt = now.duration_since(self.alive_last_change).as_nanos();
        self.alive_integral_ns += ready * dt;
        self.alive_last_change = now;
    }
}

/// Flattened call-tree node of a live request.
#[derive(Clone, Debug)]
struct NodeRt {
    service: ServiceId,
    cost: SimDuration,
    parent: Option<u32>,
    children: Vec<u32>,
    /// Children still running (counts down to completion).
    pending: u32,
}

/// A live request.
struct RequestRt {
    meta: RequestMeta,
    user: Option<UserRef>,
    nodes: Vec<NodeRt>,
}

/// Per-API per-window metric accumulators.
#[derive(Clone)]
struct ApiAccum {
    offered: u64,
    admitted: u64,
    good: u64,
    slo_violated: u64,
    failed: u64,
    latencies: LatencyHistogram,
}

impl ApiAccum {
    fn new() -> Self {
        ApiAccum {
            offered: 0,
            admitted: 0,
            good: 0,
            slo_violated: 0,
            failed: 0,
            latencies: LatencyHistogram::new(),
        }
    }

    fn reset(&mut self) {
        *self = ApiAccum::new();
    }
}

/// Cumulative per-API counters over the whole run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ApiTotals {
    pub offered: u64,
    pub admitted: u64,
    pub good: u64,
    pub slo_violated: u64,
    pub failed: u64,
    pub rejected_entry: u64,
}

enum Ev {
    Arrival(Arrival),
    /// A call travelling to `svc`. Service and cost are embedded so the
    /// call still executes (as wasted work) when its request has already
    /// failed elsewhere in the tree — an in-flight RPC fan-out does not
    /// recall sub-requests that were already sent.
    CallArrive {
        req: u64,
        node: u32,
        svc: ServiceId,
        cost: SimDuration,
    },
    PodDone {
        svc: ServiceId,
        pod: u32,
        epoch: u64,
    },
    NodeJoin {
        req: u64,
        node: u32,
    },
    MetricsTick,
    WorkloadTick,
    ClientTimeout {
        user: UserRef,
    },
    /// A starting pod of `svc` became ready.
    PodReady {
        svc: ServiceId,
    },
    /// A crashed pod restarts.
    PodRestart {
        svc: ServiceId,
        pod: u32,
        epoch: u64,
    },
    VmReady,
    InjectFailure(usize),
}

/// The cluster engine. See module docs.
pub struct Engine {
    topo: Topology,
    cfg: EngineConfig,
    queue: EventQueue<Ev>,
    /// Clock floor: `run_until` advances this beyond the last event.
    now_floor: SimTime,
    services: Vec<ServiceRt>,
    gateway: Gateway,
    workload: Box<dyn Workload>,
    admission: Option<Box<dyn AdmissionControl>>,
    hpa: Option<Hpa>,
    vm_pool: VmPool,
    failures: Vec<FailureSpec>,
    faults: FaultPlane,
    requests: HashMap<u64, RequestRt>,
    next_req_id: u64,
    rng: SmallRng,
    api_accums: Vec<ApiAccum>,
    api_totals: Vec<ApiTotals>,
    window_start: SimTime,
    latest_obs: Option<ClusterObservation>,
    latest_true_obs: Option<ClusterObservation>,
    api_paths: Vec<Vec<ServiceId>>,
    tracer: Option<TraceCollector>,
    /// Resolved per-request deadline budget (`None` = deadlines off).
    deadline_budget: Option<SimDuration>,
    /// Skip doomed queued work and tear down timed-out requests.
    cancel_doomed: bool,
    /// Per-downstream-edge circuit breakers (`None` = breakers off).
    breakers: Option<EdgeBreakers>,
    /// Resilience counters for the current window / whole run.
    res_window: ResilienceStats,
    res_totals: ResilienceStats,
    /// Workload retry counters already folded into the stats above.
    retry_snapshot: (u64, u64),
    /// Breaker transitions already folded into the stats above.
    breaker_snapshot: u64,
    /// Live root request per closed-loop `(user, generation)`, so a
    /// firing client timeout can tear down the in-flight subtree.
    user_reqs: HashMap<(u32, u64), u64>,
    /// Services whose pods crashed at least once (for assertions in tests
    /// and experiment reporting).
    pub crash_events: u64,
}

/// What to do with the call at the head of a pod queue.
enum Triage {
    Execute,
    /// Owning request already cancelled: skip, count doomed work avoided.
    SkipDoomed,
    /// Deadline expired while queued: skip and fail the request.
    SkipExpired,
}

impl Engine {
    /// Build an engine over `topo`, driven by `workload`.
    pub fn new(topo: Topology, cfg: EngineConfig, workload: Box<dyn Workload>) -> Self {
        let mut vm_pool = VmPool::new(VmPoolConfig {
            // Effectively unlimited until `set_vm_pool` is called.
            vcpus_per_vm: u32::MAX / 2,
            initial_vms: 1,
            max_vms: 1,
            vm_startup: SimDuration::from_secs(40),
            vcpus_per_pod: 1.0,
        });
        let services: Vec<ServiceRt> = topo
            .services()
            .map(|(_, spec)| {
                let pods = (0..spec.replicas).map(|_| Pod::fresh()).collect();
                for _ in 0..spec.replicas {
                    let ok = vm_pool.try_allocate_pod();
                    debug_assert!(ok, "initial pods exceed VM pool");
                }
                ServiceRt {
                    pods,
                    desired: spec.replicas,
                    starting: 0,
                    pending_unscheduled: 0,
                    busy_ns: 0,
                    queuing_delay_ns: 0,
                    started_calls: 0,
                    dropped_calls: 0,
                    alive_integral_ns: 0,
                    alive_last_change: SimTime::ZERO,
                }
            })
            .collect();
        let num_apis = topo.num_apis();
        let api_paths = topo.api_service_map();
        let tracer = cfg
            .learn_paths
            .then(|| TraceCollector::new(num_apis, cfg.trace_window));
        let rng = simnet::rng::fork(cfg.seed, "engine");
        let seed_for_faults = cfg.seed;
        let mut queue = EventQueue::new();
        queue.schedule(SimTime::ZERO, Ev::WorkloadTick);
        queue.schedule(SimTime::ZERO + cfg.control_interval, Ev::MetricsTick);
        Engine {
            gateway: Gateway::new(num_apis, cfg.gateway_burst_secs),
            topo,
            cfg,
            queue,
            now_floor: SimTime::ZERO,
            services,
            workload,
            admission: None,
            hpa: None,
            vm_pool,
            failures: Vec::new(),
            faults: FaultPlane::new(simnet::rng::fork(seed_for_faults, "faults")),
            requests: HashMap::new(),
            next_req_id: 0,
            rng,
            api_accums: vec![ApiAccum::new(); num_apis],
            api_totals: vec![ApiTotals::default(); num_apis],
            window_start: SimTime::ZERO,
            latest_obs: None,
            latest_true_obs: None,
            api_paths,
            tracer,
            deadline_budget: None,
            cancel_doomed: false,
            breakers: None,
            res_window: ResilienceStats::default(),
            res_totals: ResilienceStats::default(),
            retry_snapshot: (0, 0),
            breaker_snapshot: 0,
            user_reqs: HashMap::new(),
            crash_events: 0,
        }
    }

    /// Enable the request-plane resilience layer ([`crate::resilience`]):
    /// deadline propagation with doomed-work cancellation and/or
    /// per-edge circuit breakers. The deadline budget defaults to the
    /// workload's client timeout, falling back to the latency SLO.
    pub fn set_resilience(&mut self, cfg: ResilienceConfig) {
        match cfg.deadlines {
            Some(d) => {
                let budget = d
                    .budget
                    .or_else(|| self.workload.client_timeout())
                    .unwrap_or(self.cfg.slo);
                self.deadline_budget = Some(budget);
                self.cancel_doomed = d.cancel_doomed;
            }
            None => {
                self.deadline_budget = None;
                self.cancel_doomed = false;
            }
        }
        self.breakers = cfg.breakers.map(EdgeBreakers::new);
    }

    /// Cumulative resilience counters since the start of the run,
    /// including the window in progress.
    pub fn resilience_totals(&self) -> ResilienceStats {
        let mut t = self.res_totals;
        t.add(&self.res_window);
        let (ri, rs) = self.workload.retry_stats();
        t.retries_issued += ri - self.retry_snapshot.0;
        t.retries_suppressed += rs - self.retry_snapshot.1;
        if let Some(b) = &self.breakers {
            t.breaker_transitions += b.transitions() - self.breaker_snapshot;
        }
        t
    }

    /// The edge breakers, when enabled (state inspection for tests).
    pub fn breakers(&self) -> Option<&EdgeBreakers> {
        self.breakers.as_ref()
    }

    /// The tracing collector, when `learn_paths` is enabled.
    pub fn trace_collector(&self) -> Option<&TraceCollector> {
        self.tracer.as_ref()
    }

    /// Install a per-service admission controller (DAGOR, Breakwater).
    pub fn set_admission(&mut self, a: Box<dyn AdmissionControl>) {
        self.admission = Some(a);
    }

    /// Enable the HPA over all services, flooring at current replicas.
    pub fn enable_hpa(&mut self, cfg: HpaConfig) {
        let mins: Vec<u32> = self.topo.services().map(|(_, s)| s.replicas).collect();
        self.hpa = Some(Hpa::new(cfg, mins));
    }

    /// Constrain the cluster to a finite VM pool (enables Fig. 19-style
    /// VM-provisioning delays). Panics if current pods don't fit.
    pub fn set_vm_pool(&mut self, cfg: VmPoolConfig) {
        let mut pool = VmPool::new(cfg);
        let total_pods: u32 = self.services.iter().map(|s| s.spec_pods()).sum();
        for _ in 0..total_pods {
            assert!(
                pool.try_allocate_pod(),
                "initial pods exceed configured VM pool"
            );
        }
        self.vm_pool = pool;
    }

    /// Schedule pod-kill failures.
    pub fn inject_failures(&mut self, specs: Vec<FailureSpec>) {
        for spec in specs {
            let idx = self.failures.len();
            self.failures.push(spec);
            self.queue
                .schedule(spec.at.max(self.now()), Ev::InjectFailure(idx));
        }
    }

    /// Install a schedule of [`FaultSpec`]s (the gray-failure fault
    /// plane). Pod kills route through the existing failure path; all
    /// other faults are evaluated per event from their own RNG fork, so
    /// the base simulation streams are unperturbed.
    pub fn inject_faults(&mut self, specs: Vec<FaultSpec>) {
        let kills = self.faults.add(specs);
        if !kills.is_empty() {
            self.inject_failures(kills);
        }
    }

    /// Whether the control plane is stalled right now (a
    /// [`FaultSpec::ControllerStall`] window is active). The harness
    /// checks this each tick and skips control while true.
    pub fn control_stalled(&self) -> bool {
        self.faults.control_stalled(self.now())
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now().max(self.now_floor)
    }

    /// The topology under simulation.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Latest finalized observation window, if one has completed. This
    /// is the *controller-facing* view: telemetry faults (dropout,
    /// staleness, noise) have already been applied.
    pub fn latest_observation(&self) -> Option<&ClusterObservation> {
        self.latest_obs.as_ref()
    }

    /// Latest finalized window *before* telemetry faults — ground truth
    /// for measurement and experiment reporting.
    pub fn latest_true_observation(&self) -> Option<&ClusterObservation> {
        self.latest_true_obs.as_ref()
    }

    /// Set the entry rate limit for `api` (requests/s; infinity = none).
    pub fn set_rate_limit(&mut self, api: ApiId, rate: f64) {
        let now = self.now();
        self.gateway.set_rate_limit(api, rate, now);
    }

    /// Current entry rate limit for `api`.
    pub fn rate_limit(&self, api: ApiId) -> f64 {
        self.gateway.rate_limit(api)
    }

    /// Ready pods of a service.
    pub fn ready_pods(&self, svc: ServiceId) -> u32 {
        self.services[svc.idx()].ready_pods()
    }

    /// vCPUs currently allocated across the cluster.
    pub fn vcpus_used(&self) -> f64 {
        self.vm_pool.used()
    }

    /// Running VM count.
    pub fn vms(&self) -> u32 {
        self.vm_pool.vms()
    }

    /// Cumulative per-API counters since the start of the run.
    pub fn api_totals(&self, api: ApiId) -> ApiTotals {
        self.api_totals[api.idx()]
    }

    /// Events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.queue.events_processed()
    }

    /// Immediately bring a service to `total` *ready* pods (experiment
    /// hook emulating an allocation that already completed, e.g. Fig. 16
    /// pre-provisioning or a specialization-training scale-up). Growth
    /// stops early if the VM pool is exhausted; shrinking is not done
    /// here (use the autoscaler for graceful scale-down).
    pub fn grow_service(&mut self, sid: ServiceId, total: u32) {
        let now = self.now();
        self.services[sid.idx()].desired = self.services[sid.idx()].desired.max(total);
        while self.services[sid.idx()].ready_pods() < total {
            if !self.vm_pool.try_allocate_pod() {
                break;
            }
            let svc = &mut self.services[sid.idx()];
            svc.accumulate_alive(now);
            if let Some(p) = svc.pods.iter_mut().find(|p| p.phase == PodPhase::Removed) {
                p.phase = PodPhase::Ready;
                p.epoch += 1;
                p.saturated_probes = 0;
                p.queue.clear();
                p.busy = None;
            } else {
                svc.pods.push(Pod::fresh());
            }
        }
    }

    /// Run the simulation up to (and including) time `t`.
    pub fn run_until(&mut self, t: SimTime) {
        while let Some((at, ev)) = self.queue.pop_until(t) {
            self.handle(at, ev);
        }
        self.now_floor = self.now_floor.max(t);
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn handle(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::Arrival(a) => self.on_arrival(now, a),
            Ev::CallArrive {
                req,
                node,
                svc,
                cost,
            } => self.on_call_arrive(now, req, node, svc, cost),
            Ev::PodDone { svc, pod, epoch } => self.on_pod_done(now, svc, pod, epoch),
            Ev::NodeJoin { req, node } => self.on_node_complete(now, req, node),
            Ev::MetricsTick => self.on_metrics_tick(now),
            Ev::WorkloadTick => self.on_workload_tick(now),
            Ev::ClientTimeout { user } => self.on_client_timeout(now, user),
            Ev::PodReady { svc } => self.on_pod_ready(now, svc),
            Ev::PodRestart { svc, pod, epoch } => self.on_pod_restart(now, svc, pod, epoch),
            Ev::VmReady => self.on_vm_ready(now),
            Ev::InjectFailure(i) => self.on_inject_failure(now, i),
        }
    }

    fn schedule_arrivals(&mut self, now: SimTime, arrivals: Vec<Arrival>) {
        for a in arrivals {
            let at = a.at.max(now);
            self.queue.schedule(at, Ev::Arrival(Arrival { at, ..a }));
            if let Some(user) = a.user {
                if let Some(t) = self.workload.client_timeout() {
                    self.queue.schedule(at + t, Ev::ClientTimeout { user });
                }
            }
        }
    }

    fn on_workload_tick(&mut self, now: SimTime) {
        let arrivals = self.workload.on_tick(now, &mut self.rng);
        self.schedule_arrivals(now, arrivals);
        let next = now + self.workload.tick_interval();
        self.queue.schedule(next, Ev::WorkloadTick);
    }

    fn on_arrival(&mut self, now: SimTime, a: Arrival) {
        let acc = &mut self.api_accums[a.api.idx()];
        acc.offered += 1;
        self.api_totals[a.api.idx()].offered += 1;
        if !self.gateway.try_admit(a.api, now) {
            self.api_totals[a.api.idx()].rejected_entry += 1;
            self.notify_response(now, a.user, ResponseKind::Failed);
            return;
        }
        self.api_accums[a.api.idx()].admitted += 1;
        self.api_totals[a.api.idx()].admitted += 1;

        // Materialize the request: sample an execution path, flatten it.
        let spec = self.topo.api(a.api);
        let path_idx = sample_weighted(&spec.paths, &mut self.rng);
        let mut nodes = Vec::with_capacity(spec.paths[path_idx].1.len());
        flatten(&spec.paths[path_idx].1, None, &mut nodes);
        let meta = RequestMeta {
            api: a.api,
            business: spec.business,
            user: self.rng.gen_range(0..=127),
            arrival: now,
            deadline: self.deadline_budget.map(|b| now + b),
        };
        let id = self.next_req_id;
        self.next_req_id += 1;
        self.requests.insert(
            id,
            RequestRt {
                meta,
                user: a.user,
                nodes,
            },
        );
        if self.cancel_doomed {
            if let Some(u) = a.user {
                self.user_reqs.insert((u.id, u.gen), id);
            }
        }
        self.dispatch_call(now, id, 0);
    }

    /// Dispatch the call for `node` of request `req`: check the deadline
    /// and the edge's circuit breaker on the caller side, consult
    /// admission (the upstream checks the downstream's advertised
    /// threshold before sending) and, if admitted, deliver after one hop
    /// of latency.
    fn dispatch_call(&mut self, now: SimTime, req: u64, node: u32) {
        let Some(r) = self.requests.get(&req) else {
            return;
        };
        let svc = r.nodes[node as usize].service;
        let cost = r.nodes[node as usize].cost;
        let meta = r.meta;
        // A caller never dispatches work its deadline can no longer use.
        if let Some(dl) = meta.deadline {
            if now >= dl {
                self.res_window.deadline_rejected += 1;
                self.fail_request(now, req, RequestOutcome::DeadlineExpired(svc));
                return;
            }
        }
        let caller = r.nodes[node as usize]
            .parent
            .map(|p| r.nodes[p as usize].service);
        if let Some(b) = self.breakers.as_mut() {
            if !b.allow(caller, svc, now) {
                self.res_window.breaker_rejected += 1;
                self.fail_request(now, req, RequestOutcome::BreakerOpen(svc));
                return;
            }
        }
        if let Some(adm) = self.admission.as_mut() {
            if !adm.admit(svc, &meta, now) {
                self.services[svc.idx()].dropped_calls += 1;
                self.record_edge_failure(now, caller, svc);
                self.fail_request(now, req, RequestOutcome::RejectedAtService(svc));
                return;
            }
        }
        let net = self.faults.net_effect(now, svc);
        if net.dropped {
            self.services[svc.idx()].dropped_calls += 1;
            self.record_edge_failure(now, caller, svc);
            self.fail_request(now, req, RequestOutcome::NetworkLost(svc));
            return;
        }
        self.queue.schedule(
            now + self.cfg.hop_latency + net.extra,
            Ev::CallArrive {
                req,
                node,
                svc,
                cost,
            },
        );
    }

    fn record_edge_failure(&mut self, now: SimTime, caller: Option<ServiceId>, callee: ServiceId) {
        if let Some(b) = self.breakers.as_mut() {
            b.on_failure(caller, callee, now);
        }
    }

    fn record_edge_success(&mut self, now: SimTime, req: u64, node: u32, callee: ServiceId) {
        if self.breakers.is_none() {
            return;
        }
        // The caller is the node's parent; unknowable once the request is
        // gone (wasted work), in which case nothing is recorded.
        let Some(r) = self.requests.get(&req) else {
            return;
        };
        let caller = r.nodes[node as usize]
            .parent
            .map(|p| r.nodes[p as usize].service);
        if let Some(b) = self.breakers.as_mut() {
            b.on_success(caller, callee, now);
        }
    }

    fn on_call_arrive(
        &mut self,
        now: SimTime,
        req: u64,
        node: u32,
        svc_id: ServiceId,
        cost: SimDuration,
    ) {
        // The request may have failed elsewhere already; by default the
        // call still arrives and consumes capacity (wasted work), but
        // with cancellation enabled the service recognizes the dead
        // request and drops the call at the door.
        let request_alive = self.requests.contains_key(&req);
        if !request_alive && self.cancel_doomed {
            self.res_window.doomed_cancelled += 1;
            return;
        }
        // The service checks the propagated deadline before accepting.
        if let Some(dl) = self.requests.get(&req).and_then(|r| r.meta.deadline) {
            if now >= dl {
                self.res_window.deadline_rejected += 1;
                self.services[svc_id.idx()].dropped_calls += 1;
                self.fail_request(now, req, RequestOutcome::DeadlineExpired(svc_id));
                return;
            }
        }
        let caller = self.requests.get(&req).and_then(|r| {
            r.nodes[node as usize]
                .parent
                .map(|p| r.nodes[p as usize].service)
        });
        let spec_q = self.topo.service(svc_id).queue_capacity as usize;
        let svc = &mut self.services[svc_id.idx()];
        // Shortest-queue dispatch across ready pods.
        let pod_idx = svc
            .pods
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_ready())
            .min_by_key(|(i, p)| (p.load(), *i))
            .map(|(i, _)| i);
        let Some(pi) = pod_idx else {
            // No pod alive: the request fails here.
            svc.dropped_calls += 1;
            if request_alive {
                self.record_edge_failure(now, caller, svc_id);
                self.fail_request(now, req, RequestOutcome::PodCrashed(svc_id));
            }
            return;
        };
        if svc.pods[pi].queue.len() >= spec_q {
            svc.dropped_calls += 1;
            if request_alive {
                self.record_edge_failure(now, caller, svc_id);
                self.fail_request(now, req, RequestOutcome::QueueOverflow(svc_id));
            }
            return;
        }
        svc.pods[pi].queue.push_back(QueuedCall {
            req,
            node,
            cost,
            enqueued: now,
        });
        if svc.pods[pi].busy.is_none() {
            self.start_processing(now, svc_id, pi);
        }
    }

    /// The service checks each queued call before spending CPU on it:
    /// work for an already-cancelled request is skipped (doomed-work
    /// cancellation), and a call whose deadline expired while queued
    /// fails without executing.
    fn triage(&self, now: SimTime, call: &QueuedCall) -> Triage {
        match self.requests.get(&call.req) {
            None if self.cancel_doomed => Triage::SkipDoomed,
            None => Triage::Execute,
            Some(r) => match r.meta.deadline {
                Some(dl) if now >= dl => Triage::SkipExpired,
                _ => Triage::Execute,
            },
        }
    }

    fn start_processing(&mut self, now: SimTime, svc_id: ServiceId, pod: usize) {
        let call = loop {
            let Some(call) = self.services[svc_id.idx()].pods[pod].queue.pop_front() else {
                return;
            };
            match self.triage(now, &call) {
                Triage::Execute => break call,
                Triage::SkipDoomed => {
                    self.res_window.doomed_cancelled += 1;
                }
                Triage::SkipExpired => {
                    self.res_window.deadline_rejected += 1;
                    self.services[svc_id.idx()].dropped_calls += 1;
                    self.fail_request(now, call.req, RequestOutcome::DeadlineExpired(svc_id));
                }
            }
        };
        let speed = self.topo.service(svc_id).pod_speed;
        let jitter = self.sample_jitter();
        let slow = self.faults.slow_factor(now, svc_id);
        let svc = &mut self.services[svc_id.idx()];
        svc.queuing_delay_ns += now.duration_since(call.enqueued).as_nanos();
        svc.started_calls += 1;
        let proc = call
            .cost
            .mul_f64(jitter * slow / speed)
            .max(SimDuration::from_nanos(1));
        let done_at = now + proc;
        svc.pods[pod].busy = Some(InFlight {
            req: call.req,
            node: call.node,
            started: now,
            done_at,
        });
        let epoch = svc.pods[pod].epoch;
        self.queue.schedule(
            done_at,
            Ev::PodDone {
                svc: svc_id,
                pod: pod as u32,
                epoch,
            },
        );
    }

    fn sample_jitter(&mut self) -> f64 {
        let sigma = self.cfg.service_jitter;
        if sigma <= 0.0 {
            return 1.0;
        }
        // Mean-preserving log-normal: E[exp(N(-σ²/2, σ²))] = 1.
        let ln = LogNormal::new(-sigma * sigma / 2.0, sigma).expect("valid lognormal");
        ln.sample(&mut self.rng)
    }

    fn on_pod_done(&mut self, now: SimTime, svc_id: ServiceId, pod: u32, epoch: u64) {
        let svc = &mut self.services[svc_id.idx()];
        let p = &mut svc.pods[pod as usize];
        if p.epoch != epoch || !p.is_ready() {
            return; // stale completion from before a crash
        }
        let Some(fl) = p.busy.take() else {
            return;
        };
        debug_assert_eq!(fl.done_at, now, "PodDone at wrong time");
        // Busy-time accounting within the current window.
        let win_start = self.window_start;
        svc.busy_ns += now.duration_since(fl.started.max(win_start)).as_nanos();
        // Next queued call starts immediately.
        if !svc.pods[pod as usize].queue.is_empty() {
            self.start_processing(now, svc_id, pod as usize);
        }
        // Emit the span to the tracing collector.
        if let Some(tracer) = self.tracer.as_mut() {
            if let Some(r) = self.requests.get(&fl.req) {
                let parent = r.nodes[fl.node as usize]
                    .parent
                    .map(|p| r.nodes[p as usize].service);
                tracer.record(Span {
                    request: fl.req,
                    api: r.meta.api,
                    service: svc_id,
                    parent,
                    start: fl.started,
                    end: now,
                });
            }
        }
        // A completed call is a success signal for its inbound edge.
        self.record_edge_success(now, fl.req, fl.node, svc_id);
        // Propagate completion of this node's processing.
        self.on_node_processed(now, fl.req, fl.node);
    }

    /// A node finished its CPU work: dispatch its children, or complete.
    fn on_node_processed(&mut self, now: SimTime, req: u64, node: u32) {
        let Some(r) = self.requests.get_mut(&req) else {
            return;
        };
        let children = r.nodes[node as usize].children.clone();
        if children.is_empty() {
            self.on_node_complete(now, req, node);
        } else {
            r.nodes[node as usize].pending = children.len() as u32;
            for c in children {
                self.dispatch_call(now, req, c);
                // A child dispatch can fail the whole request (admission
                // rejection); stop dispatching the rest if so.
                if !self.requests.contains_key(&req) {
                    return;
                }
            }
        }
    }

    /// A node's subtree fully completed (processing + all children).
    fn on_node_complete(&mut self, now: SimTime, req: u64, node: u32) {
        let Some(r) = self.requests.get_mut(&req) else {
            return;
        };
        match r.nodes[node as usize].parent {
            None => self.complete_request(now, req),
            Some(parent) => {
                let pn = &mut r.nodes[parent as usize];
                debug_assert!(pn.pending > 0, "join underflow");
                pn.pending -= 1;
                if pn.pending == 0 {
                    // The parent's response travels one hop back.
                    self.queue.schedule(
                        now + self.cfg.hop_latency,
                        Ev::NodeJoin { req, node: parent },
                    );
                }
            }
        }
    }

    fn complete_request(&mut self, now: SimTime, req: u64) {
        let Some(r) = self.requests.remove(&req) else {
            return;
        };
        if let Some(u) = r.user {
            self.user_reqs.remove(&(u.id, u.gen));
        }
        let api = r.meta.api;
        let latency = now.duration_since(r.meta.arrival);
        let acc = &mut self.api_accums[api.idx()];
        acc.latencies.record(latency);
        let kind = if latency <= self.cfg.slo {
            acc.good += 1;
            self.api_totals[api.idx()].good += 1;
            ResponseKind::Success
        } else {
            acc.slo_violated += 1;
            self.api_totals[api.idx()].slo_violated += 1;
            ResponseKind::Late
        };
        self.notify_response(now, r.user, kind);
    }

    fn fail_request(&mut self, now: SimTime, req: u64, _outcome: RequestOutcome) {
        let Some(r) = self.requests.remove(&req) else {
            return;
        };
        if let Some(u) = r.user {
            self.user_reqs.remove(&(u.id, u.gen));
        }
        let api = r.meta.api;
        self.api_accums[api.idx()].failed += 1;
        self.api_totals[api.idx()].failed += 1;
        self.notify_response(now, r.user, ResponseKind::Failed);
    }

    fn notify_response(&mut self, now: SimTime, user: Option<UserRef>, kind: ResponseKind) {
        if let Some(u) = user {
            let follow = self.workload.on_response(u, kind, now, &mut self.rng);
            self.schedule_arrivals(now, follow);
        }
    }

    fn on_client_timeout(&mut self, now: SimTime, user: UserRef) {
        // The workload ignores stale generations internally, so this is
        // safe to fire unconditionally. Notifying first bumps the user's
        // generation, so the teardown's failure notification below is
        // recognized as stale and cannot resurrect the user.
        let follow = self
            .workload
            .on_response(user, ResponseKind::Timeout, now, &mut self.rng);
        self.schedule_arrivals(now, follow);
        // With cancellation enabled, the abandoned request's in-flight
        // subtree is torn down instead of silently finishing: queued
        // calls get skipped at their pods, scheduled hops evaporate on
        // arrival. (In-flight CPU work still runs to completion — a
        // busy pod cannot be preempted mid-call.)
        if self.cancel_doomed {
            if let Some(req) = self.user_reqs.remove(&(user.id, user.gen)) {
                if self.requests.contains_key(&req) {
                    self.res_window.client_cancelled += 1;
                    self.fail_request(now, req, RequestOutcome::ClientTimeout);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Metrics, autoscaling, probes
    // ------------------------------------------------------------------

    fn on_metrics_tick(&mut self, now: SimTime) {
        let obs = self.finalize_window(now);
        // Admission controllers update their thresholds on fresh metrics.
        if let Some(adm) = self.admission.as_mut() {
            adm.on_interval(&obs);
        }
        // Crash-loop probes.
        self.run_probes(now);
        // HPA sync on its own cadence (evaluated at metric ticks).
        self.run_hpa(now, &obs);
        // Telemetry faults distort only what leaves the cluster toward
        // the control plane; admission, probes and the HPA above ran on
        // the true window (they are in-cluster mechanisms, not part of
        // the observability pipeline being degraded). The true window is
        // kept alongside for ground-truth measurement.
        self.latest_true_obs = Some(obs.clone());
        self.latest_obs = Some(self.faults.distort(now, obs));
        self.queue
            .schedule(now + self.cfg.control_interval, Ev::MetricsTick);
    }

    fn finalize_window(&mut self, now: SimTime) -> ClusterObservation {
        let window = now.duration_since(self.window_start);
        let window_ns = window.as_nanos().max(1);
        let mut services = Vec::with_capacity(self.services.len());
        for (i, svc) in self.services.iter_mut().enumerate() {
            svc.accumulate_alive(now);
            // Credit partial busy time of in-flight calls to this window.
            let mut busy = svc.busy_ns;
            for p in &svc.pods {
                if let Some(fl) = p.busy {
                    busy += now
                        .duration_since(fl.started.max(self.window_start))
                        .as_nanos();
                }
            }
            let denom = svc.alive_integral_ns;
            let queue_len: u64 = svc.pods.iter().map(|p| p.queue.len() as u64).sum();
            let utilization = if denom > 0 {
                (busy as f64 / denom as f64).min(1.0)
            } else if queue_len > 0 || svc.dropped_calls > 0 {
                1.0 // all pods down with work arriving: fully overloaded
            } else {
                0.0
            };
            let mean_qd = svc
                .queuing_delay_ns
                .checked_div(svc.started_calls)
                .map_or(SimDuration::ZERO, SimDuration::from_nanos);
            let sid = ServiceId(i as u32);
            services.push(ServiceWindow {
                service: sid,
                name: self.topo.service(sid).name.clone(),
                utilization,
                alive_pods: svc.ready_pods(),
                desired_pods: svc.desired,
                queue_len,
                mean_queuing_delay: mean_qd,
                started_calls: svc.started_calls,
                dropped_calls: svc.dropped_calls,
            });
            // Reset window accumulators.
            svc.busy_ns = 0;
            svc.queuing_delay_ns = 0;
            svc.started_calls = 0;
            svc.dropped_calls = 0;
            svc.alive_integral_ns = 0;
            svc.alive_last_change = now;
        }
        let secs = window_ns as f64 / 1e9;
        let mut apis = Vec::with_capacity(self.api_accums.len());
        for (i, acc) in self.api_accums.iter_mut().enumerate() {
            let aid = ApiId(i as u32);
            let spec = self.topo.api(aid);
            apis.push(ApiWindow {
                api: aid,
                name: spec.name.clone(),
                business: spec.business,
                offered: acc.offered as f64 / secs,
                admitted: acc.admitted as f64 / secs,
                goodput: acc.good as f64 / secs,
                slo_violated: acc.slo_violated as f64 / secs,
                failed: acc.failed as f64 / secs,
                p50: acc.latencies.quantile(0.50),
                p95: acc.latencies.quantile(0.95),
                p99: acc.latencies.quantile(0.99),
                rate_limit: self.gateway.rate_limit(aid),
            });
            acc.reset();
        }
        self.window_start = now;
        let api_paths = match self.tracer.as_mut() {
            Some(tr) => {
                tr.compact(now);
                tr.learned_paths(now)
            }
            None => self.api_paths.clone(),
        };
        // Fold client-side retry counters and breaker transitions into
        // this window, then roll the window into the run totals.
        let (ri, rs) = self.workload.retry_stats();
        self.res_window.retries_issued += ri - self.retry_snapshot.0;
        self.res_window.retries_suppressed += rs - self.retry_snapshot.1;
        self.retry_snapshot = (ri, rs);
        if let Some(b) = &self.breakers {
            let t = b.transitions();
            self.res_window.breaker_transitions += t - self.breaker_snapshot;
            self.breaker_snapshot = t;
        }
        let resilience = self.res_window;
        self.res_totals.add(&resilience);
        self.res_window = ResilienceStats::default();
        ClusterObservation {
            now,
            window,
            services,
            apis,
            api_paths,
            slo: self.cfg.slo,
            resilience,
        }
    }

    fn run_probes(&mut self, now: SimTime) {
        let crash = self.cfg.crash;
        for i in 0..self.services.len() {
            let sid = ServiceId(i as u32);
            if !self.topo.service(sid).crash_on_overload {
                continue;
            }
            let cap = self.topo.service(sid).queue_capacity as f64;
            let threshold = (cap * crash.saturation_fraction) as usize;
            for pi in 0..self.services[i].pods.len() {
                let pod = &mut self.services[i].pods[pi];
                if !pod.is_ready() {
                    continue;
                }
                if pod.queue.len() >= threshold.max(1) {
                    pod.saturated_probes += 1;
                } else {
                    if pod.saturated_probes == 0 && pod.crash_count > 0 {
                        // A healthy probe streak decays the backoff.
                        pod.crash_count -= 1;
                    }
                    pod.saturated_probes = 0;
                }
                if pod.saturated_probes >= crash.probes_to_crash {
                    // This crash is number `crash_count + 1`; the backoff
                    // policy (fixed, or capped exponential) sets the delay.
                    let backoff = crash
                        .backoff
                        .delay(crash.restart_delay, pod.crash_count + 1);
                    self.crash_pod(now, sid, pi, backoff);
                }
            }
        }
    }

    /// Crash a pod: lose its backlog and in-flight call, restart later.
    fn crash_pod(&mut self, now: SimTime, sid: ServiceId, pod: usize, restart: SimDuration) {
        self.crash_events += 1;
        let svc = &mut self.services[sid.idx()];
        svc.accumulate_alive(now);
        let p = &mut svc.pods[pod];
        // Credit busy time up to the crash.
        if let Some(fl) = p.busy.take() {
            let win_start = self.window_start;
            svc.busy_ns += now.duration_since(fl.started.max(win_start)).as_nanos();
            let req = fl.req;
            svc.dropped_calls += 1;
            self.fail_request(now, req, RequestOutcome::PodCrashed(sid));
        }
        let svc = &mut self.services[sid.idx()];
        let p = &mut svc.pods[pod];
        let dropped: Vec<u64> = p.queue.drain(..).map(|c| c.req).collect();
        svc.dropped_calls += dropped.len() as u64;
        p.phase = PodPhase::Down;
        p.epoch += 1;
        p.saturated_probes = 0;
        p.crash_count = p.crash_count.saturating_add(1);
        let epoch = p.epoch;
        for req in dropped {
            self.fail_request(now, req, RequestOutcome::PodCrashed(sid));
        }
        self.queue.schedule(
            now + restart,
            Ev::PodRestart {
                svc: sid,
                pod: pod as u32,
                epoch,
            },
        );
    }

    fn on_pod_restart(&mut self, now: SimTime, sid: ServiceId, pod: u32, epoch: u64) {
        let svc = &mut self.services[sid.idx()];
        if svc.pods[pod as usize].epoch != epoch || svc.pods[pod as usize].phase != PodPhase::Down {
            return;
        }
        svc.accumulate_alive(now);
        let p = &mut svc.pods[pod as usize];
        p.phase = PodPhase::Ready;
        p.saturated_probes = 0;
    }

    fn run_hpa(&mut self, now: SimTime, obs: &ClusterObservation) {
        let Some(hpa) = self.hpa.as_mut() else {
            return;
        };
        if !hpa.sync_due(now) {
            return;
        }
        let per_service: Vec<(f64, u32)> = self
            .services
            .iter()
            .zip(obs.services.iter())
            .map(|(rt, w)| (w.utilization, rt.spec_pods()))
            .collect();
        let changes = hpa.sync(now, &per_service);
        for (sid, desired) in changes {
            self.scale_service(now, sid, desired);
        }
    }

    /// Reconcile a service to `desired` replicas.
    fn scale_service(&mut self, now: SimTime, sid: ServiceId, desired: u32) {
        let current = self.services[sid.idx()].spec_pods();
        self.services[sid.idx()].desired = desired;
        if desired > current {
            let add = desired - current;
            for _ in 0..add {
                self.create_pod(now, sid);
            }
        } else if desired < current {
            let mut remove = current - desired;
            let svc = &mut self.services[sid.idx()];
            // Drop unscheduled pending first (they cost nothing).
            let from_pending = remove.min(svc.pending_unscheduled);
            svc.pending_unscheduled -= from_pending;
            remove -= from_pending;
            // Then remove idle ready pods; busy pods are left until a
            // later sync finds them idle (a simple graceful drain).
            if remove > 0 {
                svc.accumulate_alive(now);
                let mut removed = 0;
                for p in svc.pods.iter_mut() {
                    if removed == remove {
                        break;
                    }
                    if p.is_ready() && p.busy.is_none() && p.queue.is_empty() {
                        p.phase = PodPhase::Removed;
                        p.epoch += 1;
                        removed += 1;
                    }
                }
                for _ in 0..removed {
                    self.vm_pool.release_pod();
                }
            }
        }
    }

    /// Begin creating one pod: allocate vCPUs now if possible, else queue
    /// it as unscheduled and ask the VM pool to provision.
    fn create_pod(&mut self, now: SimTime, sid: ServiceId) {
        if self.vm_pool.try_allocate_pod() {
            self.services[sid.idx()].starting += 1;
            self.queue
                .schedule(now + self.cfg.pod_startup, Ev::PodReady { svc: sid });
        } else {
            self.services[sid.idx()].pending_unscheduled += 1;
            let pending: u32 = self.services.iter().map(|s| s.pending_unscheduled).sum();
            let vms = self.vm_pool.provision_for(pending);
            let startup = self.vm_pool.config.vm_startup;
            for _ in 0..vms {
                self.queue.schedule(now + startup, Ev::VmReady);
            }
        }
    }

    fn on_pod_ready(&mut self, now: SimTime, sid: ServiceId) {
        let svc = &mut self.services[sid.idx()];
        if svc.starting == 0 {
            return;
        }
        svc.starting -= 1;
        svc.accumulate_alive(now);
        // Reuse a Removed slot if present, else grow.
        if let Some(p) = svc.pods.iter_mut().find(|p| p.phase == PodPhase::Removed) {
            p.phase = PodPhase::Ready;
            p.epoch += 1;
            p.saturated_probes = 0;
            p.queue.clear();
            p.busy = None;
        } else {
            svc.pods.push(Pod::fresh());
        }
    }

    fn on_vm_ready(&mut self, now: SimTime) {
        self.vm_pool.vm_ready();
        // Schedule unscheduled pods FIFO across services (by id).
        for i in 0..self.services.len() {
            while self.services[i].pending_unscheduled > 0 && self.vm_pool.try_allocate_pod() {
                self.services[i].pending_unscheduled -= 1;
                self.services[i].starting += 1;
                let sid = ServiceId(i as u32);
                self.queue
                    .schedule(now + self.cfg.pod_startup, Ev::PodReady { svc: sid });
            }
        }
    }

    fn on_inject_failure(&mut self, now: SimTime, idx: usize) {
        let spec = self.failures[idx];
        let sid = spec.service;
        // Kill up to `spec.pods` ready pods (k8s will recreate them to
        // maintain the desired count, after pod startup).
        let mut killed = 0;
        for pi in 0..self.services[sid.idx()].pods.len() {
            if killed == spec.pods {
                break;
            }
            if self.services[sid.idx()].pods[pi].is_ready() {
                // Reuse the crash path for teardown, then convert the pod
                // into a permanent tombstone replaced via create_pod.
                self.crash_pod(now, sid, pi, SimDuration::from_secs(3600));
                let svc = &mut self.services[sid.idx()];
                svc.pods[pi].phase = PodPhase::Removed;
                svc.pods[pi].epoch += 1;
                self.vm_pool.release_pod();
                killed += 1;
            }
        }
        for _ in 0..killed {
            self.create_pod(now, sid);
        }
    }
}

/// Flatten a call tree into `NodeRt`s, parents before children.
fn flatten(node: &CallNode, parent: Option<u32>, out: &mut Vec<NodeRt>) {
    let idx = out.len() as u32;
    out.push(NodeRt {
        service: node.service,
        cost: node.cost,
        parent,
        children: Vec::with_capacity(node.children.len()),
        pending: 0,
    });
    for c in &node.children {
        let child_idx = out.len() as u32;
        out[idx as usize].children.push(child_idx);
        flatten(c, Some(idx), out);
    }
}

/// Sample an index from weighted `(weight, _)` pairs.
fn sample_weighted<T>(items: &[(f64, T)], rng: &mut SmallRng) -> usize {
    if items.len() == 1 {
        return 0;
    }
    let total: f64 = items.iter().map(|(w, _)| w.max(0.0)).sum();
    if total <= 0.0 {
        return 0;
    }
    let mut x = rng.gen::<f64>() * total;
    for (i, (w, _)) in items.iter().enumerate() {
        x -= w.max(0.0);
        if x <= 0.0 {
            return i;
        }
    }
    items.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::{BreakerConfig, DeadlineConfig};
    use crate::topology::{ApiSpec, ServiceSpec};
    use crate::workload::OpenLoopWorkload;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    /// One service, one API: pod capacity = 1/cost per pod.
    fn tiny_topo(replicas: u32, cost_ms: u64) -> (Topology, ApiId, ServiceId) {
        let mut t = Topology::new("tiny");
        let s = t.add_service(ServiceSpec::new("s", replicas));
        let api = t.add_api(ApiSpec::single("api", CallNode::leaf(s, ms(cost_ms))));
        (t, api, s)
    }

    fn run(topo: Topology, rate: f64, secs: u64) -> Engine {
        let apis: Vec<ApiId> = topo.apis().map(|(id, _)| id).collect();
        let w = OpenLoopWorkload::constant(apis.into_iter().map(|a| (a, rate)).collect());
        let mut e = Engine::new(
            topo,
            EngineConfig {
                service_jitter: 0.0,
                ..EngineConfig::default()
            },
            Box::new(w),
        );
        e.run_until(SimTime::from_secs(secs));
        e
    }

    #[test]
    fn underloaded_service_serves_everything() {
        // 2 pods × 10ms cost = 200 rps capacity; offer 50 rps.
        let (topo, api, _) = tiny_topo(2, 10);
        let e = run(topo, 50.0, 20);
        let t = e.api_totals(api);
        assert!(
            t.offered > 800,
            "Poisson 50rps × 20s ≈ 1000, got {}",
            t.offered
        );
        assert_eq!(t.good + t.slo_violated + t.failed, t.admitted);
        assert_eq!(t.failed, 0);
        assert_eq!(t.slo_violated, 0, "underloaded: everything within SLO");
        assert_eq!(t.good, t.offered, "no entry limiter installed");
    }

    #[test]
    fn overloaded_service_saturates_at_capacity() {
        // 1 pod × 10ms = 100 rps capacity; offer 300 rps.
        let (topo, api, s) = tiny_topo(1, 10);
        let mut e = run(topo, 300.0, 30);
        let t = e.api_totals(api);
        // Goodput can't exceed capacity; most excess violates SLO or drops.
        let good_rate = t.good as f64 / 30.0;
        assert!(good_rate <= 110.0, "goodput {good_rate} > capacity");
        assert!(
            t.slo_violated + t.failed > 0,
            "overload must violate SLOs or drop"
        );
        // Utilization reported as saturated.
        e.run_until(SimTime::from_secs(31));
        let obs = e.latest_observation().unwrap();
        assert!(obs.service(s).utilization > 0.95);
    }

    #[test]
    fn entry_rate_limit_caps_admission() {
        let (topo, api, _) = tiny_topo(1, 10);
        let apis = vec![(api, 300.0)];
        let w = OpenLoopWorkload::constant(apis);
        let mut e = Engine::new(
            topo,
            EngineConfig {
                service_jitter: 0.0,
                ..EngineConfig::default()
            },
            Box::new(w),
        );
        e.set_rate_limit(api, 80.0);
        e.run_until(SimTime::from_secs(30));
        let t = e.api_totals(api);
        let admitted_rate = t.admitted as f64 / 30.0;
        assert!(
            (70.0..=90.0).contains(&admitted_rate),
            "admitted {admitted_rate} ≈ 80 rps"
        );
        // A few requests may still be in flight at the horizon.
        assert!(
            t.admitted - t.good <= 3,
            "admitted load is within capacity: good={} admitted={}",
            t.good,
            t.admitted
        );
        assert!(t.rejected_entry > 0);
    }

    #[test]
    fn latency_composes_along_call_tree() {
        // frontend(5ms) → backend(10ms): e2e ≈ 5+10 + 4 hops×0.5ms ≈ 17ms.
        let mut topo = Topology::new("chain");
        let f = topo.add_service(ServiceSpec::new("front", 2));
        let b = topo.add_service(ServiceSpec::new("back", 2));
        let api = topo.add_api(ApiSpec::single(
            "get",
            CallNode::with_children(f, ms(5), vec![CallNode::leaf(b, ms(10))]),
        ));
        let e = run(topo, 20.0, 10);
        let _ = api;
        let obs = e.latest_observation().unwrap();
        let p50 = obs.apis[0].p50.unwrap();
        assert!(
            (15.0..25.0).contains(&p50.as_millis_f64()),
            "p50 {p50} should be ≈17ms"
        );
    }

    #[test]
    fn parallel_fanout_latency_is_max_not_sum() {
        let mut topo = Topology::new("fan");
        let f = topo.add_service(ServiceSpec::new("front", 4));
        let a = topo.add_service(ServiceSpec::new("a", 4));
        let b = topo.add_service(ServiceSpec::new("b", 4));
        topo.add_api(ApiSpec::single(
            "get",
            CallNode::with_children(
                f,
                ms(1),
                vec![CallNode::leaf(a, ms(10)), CallNode::leaf(b, ms(30))],
            ),
        ));
        let e = run(topo, 10.0, 10);
        let obs = e.latest_observation().unwrap();
        let p50 = obs.apis[0].p50.unwrap().as_millis_f64();
        assert!(
            (30.0..40.0).contains(&p50),
            "fan-out joins at max(10,30)+overheads, got {p50}ms"
        );
    }

    #[test]
    fn queue_overflow_fails_requests() {
        let mut topo = Topology::new("q");
        let s = topo.add_service(ServiceSpec::new("s", 1).queue_capacity(4));
        topo.add_api(ApiSpec::single("x", CallNode::leaf(s, ms(100))));
        // Capacity 10 rps; offer 200 rps → queues overflow instantly.
        let e = run(topo, 200.0, 10);
        let t = e.api_totals(ApiId(0));
        assert!(t.failed > 0, "bounded queue must drop");
    }

    #[test]
    fn observation_cadence_matches_interval() {
        let (topo, _, _) = tiny_topo(1, 10);
        let e = run(topo, 10.0, 5);
        let obs = e.latest_observation().unwrap();
        assert_eq!(obs.now, SimTime::from_secs(5));
        assert!((obs.window.as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn determinism_same_seed_same_totals() {
        let totals = |seed: u64| {
            let (topo, api, _) = tiny_topo(2, 10);
            let w = OpenLoopWorkload::constant(vec![(api, 150.0)]);
            let mut e = Engine::new(
                topo,
                EngineConfig {
                    seed,
                    ..EngineConfig::default()
                },
                Box::new(w),
            );
            e.run_until(SimTime::from_secs(10));
            e.api_totals(api)
        };
        assert_eq!(totals(7), totals(7));
        assert_ne!(totals(7).offered, totals(8).offered);
    }

    #[test]
    fn injected_failure_kills_and_recovers_pods() {
        let (topo, _, s) = tiny_topo(10, 10);
        let w = OpenLoopWorkload::constant(vec![(ApiId(0), 100.0)]);
        let mut e = Engine::new(
            topo,
            EngineConfig {
                service_jitter: 0.0,
                pod_startup: SimDuration::from_secs(5),
                ..EngineConfig::default()
            },
            Box::new(w),
        );
        e.inject_failures(vec![FailureSpec {
            at: SimTime::from_secs(10),
            service: s,
            pods: 7,
        }]);
        e.run_until(SimTime::from_secs(11));
        assert_eq!(e.ready_pods(s), 3, "7 of 10 pods killed");
        e.run_until(SimTime::from_secs(20));
        assert_eq!(e.ready_pods(s), 10, "replacements ready after startup");
    }

    #[test]
    fn crash_loop_fires_under_saturation() {
        let mut topo = Topology::new("crash");
        let s = topo.add_service(
            ServiceSpec::new("frag", 1)
                .queue_capacity(16)
                .crash_on_overload(),
        );
        topo.add_api(ApiSpec::single("x", CallNode::leaf(s, ms(50))));
        // Capacity 20 rps; offer 500 → queue pinned at cap → crash.
        let w = OpenLoopWorkload::constant(vec![(ApiId(0), 500.0)]);
        let mut e = Engine::new(topo, EngineConfig::default(), Box::new(w));
        e.run_until(SimTime::from_secs(20));
        assert!(e.crash_events > 0, "saturated pod should crash-loop");
    }

    #[test]
    fn hpa_scales_up_under_load() {
        let (topo, api, s) = tiny_topo(2, 10);
        // Capacity 200 rps; offer 500.
        let w = OpenLoopWorkload::constant(vec![(api, 500.0)]);
        let mut e = Engine::new(
            topo,
            EngineConfig {
                service_jitter: 0.0,
                pod_startup: SimDuration::from_secs(5),
                ..EngineConfig::default()
            },
            Box::new(w),
        );
        e.enable_hpa(HpaConfig {
            sync_period: SimDuration::from_secs(15),
            target_utilization: 0.7,
            ..HpaConfig::default()
        });
        e.run_until(SimTime::from_secs(120));
        assert!(
            e.ready_pods(s) >= 4,
            "HPA should have scaled up, pods={}",
            e.ready_pods(s)
        );
        // With enough pods, goodput recovers near offered rate.
        let obs = e.latest_observation().unwrap();
        assert!(
            obs.apis[0].goodput > 350.0,
            "goodput {} should approach 500 rps after scaling",
            obs.apis[0].goodput
        );
    }

    #[test]
    fn vm_pool_delays_scale_up() {
        let (topo, api, s) = tiny_topo(2, 10);
        let w = OpenLoopWorkload::constant(vec![(api, 800.0)]);
        let mut e = Engine::new(
            topo,
            EngineConfig {
                service_jitter: 0.0,
                pod_startup: SimDuration::from_secs(2),
                ..EngineConfig::default()
            },
            Box::new(w),
        );
        e.set_vm_pool(VmPoolConfig {
            vcpus_per_vm: 4,
            initial_vms: 1,
            max_vms: 3,
            vm_startup: SimDuration::from_secs(30),
            vcpus_per_pod: 1.0,
        });
        e.enable_hpa(HpaConfig::default());
        e.run_until(SimTime::from_secs(25));
        // Only 4 vCPUs → at most 4 pods before the new VM lands.
        assert!(e.ready_pods(s) <= 4);
        e.run_until(SimTime::from_secs(120));
        assert!(e.vms() > 1, "VM autoscaler should have provisioned");
        assert!(e.ready_pods(s) > 4, "pods land after VM startup");
    }

    #[test]
    fn weighted_sampling_prefers_heavy_branch() {
        let items = vec![(0.9, "a"), (0.1, "b")];
        let mut rng = simnet::rng::fork(3, "t");
        let heavy = (0..1000)
            .filter(|_| sample_weighted(&items, &mut rng) == 0)
            .count();
        assert!((850..=950).contains(&heavy), "got {heavy}");
    }

    /// 4 users with a 1 s timeout against a 3 s single-pod service:
    /// every request is doomed, queued calls pile up behind the pod.
    fn doomed_engine(cancel: bool) -> Engine {
        let (topo, api, _) = tiny_topo(1, 3000);
        let w = crate::workload::ClosedLoopWorkload::fixed(vec![(api, 1.0)], 4, ms(100))
            .timeout(Some(SimDuration::from_secs(1)));
        let mut e = Engine::new(
            topo,
            EngineConfig {
                service_jitter: 0.0,
                ..EngineConfig::default()
            },
            Box::new(w),
        );
        if cancel {
            e.set_resilience(ResilienceConfig {
                deadlines: Some(DeadlineConfig::default()),
                breakers: None,
            });
        }
        e.run_until(SimTime::from_secs(30));
        e
    }

    #[test]
    fn client_timeout_tears_down_doomed_work() {
        let e = doomed_engine(true);
        let t = e.api_totals(ApiId(0));
        assert_eq!(t.good, 0, "nothing completes within a 1 s timeout");
        // ≤: the 4 users' final requests may still be in flight.
        assert!(t.good + t.slo_violated + t.failed <= t.admitted);
        assert!(t.admitted - (t.good + t.slo_violated + t.failed) <= 4);
        let r = e.resilience_totals();
        assert!(r.client_cancelled > 0, "timeouts tear requests down: {r:?}");
        assert!(
            r.doomed_cancelled > 0,
            "queued calls behind the pod are skipped, not executed: {r:?}"
        );
    }

    #[test]
    fn late_response_after_timeout_neither_counts_goodput_nor_resurrects_user() {
        // The seed's wasted-work default: the pod finishes the 3 s call
        // after the 1 s client timeout already gave up. The late
        // completion must not count as goodput, and the stale
        // notification must not re-activate the user (which would
        // inflate the offered rate).
        let e = doomed_engine(false);
        let t = e.api_totals(ApiId(0));
        assert_eq!(t.good, 0, "late completions are not goodput");
        // Without cancellation, abandoned requests linger in the queue
        // and drain at 1 per 3 s — most are unfinished at the horizon.
        assert!(t.good + t.slo_violated + t.failed <= t.admitted);
        // 4 users cycling timeout (1 s) + think (0.1 s) ≈ 27 requests
        // each over 30 s. Resurrected users would roughly double this.
        assert!(
            (80..=130).contains(&t.offered),
            "one request per user per cycle, got {}",
            t.offered
        );
        // Resilience disabled: no counters move.
        assert_eq!(e.resilience_totals(), ResilienceStats::default());
    }

    #[test]
    fn breaker_opens_on_failing_edge_and_sheds_dispatch() {
        // front (fast, wide) → back (1 pod, 100 ms, queue of 2): the
        // downstream edge fails almost every call, so its breaker opens
        // and dispatches are declined at the caller.
        let mut topo = Topology::new("brk");
        let f = topo.add_service(ServiceSpec::new("front", 4));
        let b = topo.add_service(ServiceSpec::new("back", 1).queue_capacity(2));
        let api = topo.add_api(ApiSpec::single(
            "x",
            CallNode::with_children(f, ms(1), vec![CallNode::leaf(b, ms(100))]),
        ));
        let w = OpenLoopWorkload::constant(vec![(api, 300.0)]);
        let mut e = Engine::new(
            topo,
            EngineConfig {
                service_jitter: 0.0,
                ..EngineConfig::default()
            },
            Box::new(w),
        );
        e.set_resilience(ResilienceConfig {
            deadlines: None,
            breakers: Some(BreakerConfig::default()),
        });
        e.run_until(SimTime::from_secs(20));
        let r = e.resilience_totals();
        assert!(
            r.breaker_rejected > 0,
            "open breaker rejects dispatch: {r:?}"
        );
        assert!(r.breaker_transitions > 0, "breaker changed state: {r:?}");
        let t = e.api_totals(api);
        assert_eq!(t.good + t.slo_violated + t.failed, t.admitted);
        // The healthy entry edge (gateway → front) stays closed.
        assert_eq!(
            e.breakers().unwrap().state(None, f),
            crate::resilience::BreakerState::Closed
        );
    }

    #[test]
    fn resilience_determinism_same_seed_same_counters() {
        let run = |seed: u64| {
            let (topo, api, _) = tiny_topo(1, 20);
            let w =
                crate::workload::RetryStormWorkload::new(vec![(api, 1.0)], 120, ms(100), 5, ms(10))
                    .with_retry_budget(crate::resilience::RetryBudgetConfig::default());
            let mut e = Engine::new(
                topo,
                EngineConfig {
                    seed,
                    ..EngineConfig::default()
                },
                Box::new(w),
            );
            e.set_resilience(ResilienceConfig {
                deadlines: Some(DeadlineConfig::default()),
                breakers: Some(BreakerConfig::default()),
            });
            e.run_until(SimTime::from_secs(20));
            (e.api_totals(api), e.resilience_totals())
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11).0.offered, run(12).0.offered);
    }

    #[test]
    fn deadline_expiry_rejects_queued_work_without_cancellation() {
        // Deadlines on but doomed-work cancellation off: queued calls
        // whose deadline passed are rejected when the pod reaches them
        // (DeadlineExpired), not silently executed.
        let (topo, api, _) = tiny_topo(1, 500);
        let w = OpenLoopWorkload::constant(vec![(api, 50.0)]);
        let mut e = Engine::new(
            topo,
            EngineConfig {
                service_jitter: 0.0,
                ..EngineConfig::default()
            },
            Box::new(w),
        );
        e.set_resilience(ResilienceConfig {
            deadlines: Some(DeadlineConfig {
                budget: Some(SimDuration::from_secs(1)),
                cancel_doomed: false,
            }),
            breakers: None,
        });
        e.run_until(SimTime::from_secs(20));
        let r = e.resilience_totals();
        assert!(r.deadline_rejected > 0, "expired deadlines reject: {r:?}");
        assert_eq!(r.doomed_cancelled, 0, "cancellation was off");
        let t = e.api_totals(api);
        assert!(t.good + t.slo_violated + t.failed <= t.admitted);
    }
}

#[cfg(test)]
mod tracing_tests {
    use super::*;
    use crate::topology::{ApiSpec, ServiceSpec};
    use crate::workload::OpenLoopWorkload;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    /// A branching API: branch A → {front, a}, branch B → {front, b}.
    fn branching_topo() -> (Topology, ApiId, ServiceId, ServiceId) {
        let mut t = Topology::new("traced");
        let front = t.add_service(ServiceSpec::new("front", 4));
        let a = t.add_service(ServiceSpec::new("a", 2));
        let b = t.add_service(ServiceSpec::new("b", 2));
        let api = t.add_api(ApiSpec::branching(
            "br",
            vec![
                (
                    0.9,
                    CallNode::with_children(front, ms(1), vec![CallNode::leaf(a, ms(2))]),
                ),
                (
                    0.1,
                    CallNode::with_children(front, ms(1), vec![CallNode::leaf(b, ms(2))]),
                ),
            ],
        ));
        (t, api, a, b)
    }

    #[test]
    fn learned_paths_converge_to_exercised_branches() {
        let (topo, api, a, b) = branching_topo();
        let w = OpenLoopWorkload::constant(vec![(api, 200.0)]);
        let mut e = Engine::new(
            topo,
            EngineConfig {
                learn_paths: true,
                ..EngineConfig::default()
            },
            Box::new(w),
        );
        e.run_until(SimTime::from_secs(10));
        let obs = e.latest_observation().expect("ran").clone();
        let path = &obs.api_paths[api.idx()];
        // With 2000 requests at 90/10 branching, both branches have been
        // exercised, so the learned path covers everything.
        assert!(path.contains(&a), "hot branch learned: {path:?}");
        assert!(path.contains(&b), "cold branch learned: {path:?}");
        assert!(e.trace_collector().expect("enabled").spans_recorded() > 1000);
    }

    #[test]
    fn learned_paths_start_empty_and_grow() {
        let (topo, api, _, _) = branching_topo();
        let w = OpenLoopWorkload::constant(vec![(api, 50.0)]);
        let mut e = Engine::new(
            topo,
            EngineConfig {
                learn_paths: true,
                ..EngineConfig::default()
            },
            Box::new(w),
        );
        e.run_until(SimTime::from_secs(1));
        let early = e.latest_observation().expect("tick").api_paths[api.idx()].len();
        e.run_until(SimTime::from_secs(20));
        let late = e.latest_observation().expect("tick").api_paths[api.idx()].len();
        assert!(late >= early, "paths only grow under steady traffic");
        assert!(late >= 2, "at least front + one branch learned");
    }

    #[test]
    fn static_paths_remain_default() {
        let (topo, api, a, b) = branching_topo();
        let w = OpenLoopWorkload::constant(vec![(api, 10.0)]);
        let mut e = Engine::new(topo, EngineConfig::default(), Box::new(w));
        assert!(e.trace_collector().is_none());
        e.run_until(SimTime::from_secs(2));
        let obs = e.latest_observation().expect("tick").clone();
        // Static union: every possible branch present from the start.
        let path = &obs.api_paths[api.idx()];
        assert!(path.contains(&a) && path.contains(&b));
    }
}

#[cfg(test)]
mod lifecycle_tests {
    use super::*;
    use crate::autoscaler::HpaConfig;
    use crate::topology::{ApiSpec, ServiceSpec};
    use crate::workload::{ClosedLoopWorkload, OpenLoopWorkload, RateSchedule};

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    #[test]
    fn hpa_scales_down_after_load_drops() {
        let mut topo = Topology::new("downscale");
        let s = topo.add_service(ServiceSpec::new("s", 2));
        let api = topo.add_api(ApiSpec::single("a", CallNode::leaf(s, ms(10))));
        // Load for 60 s, then quiet for the rest.
        let w = OpenLoopWorkload::new(vec![(
            api,
            RateSchedule::steps(vec![(SimTime::ZERO, 600.0), (SimTime::from_secs(60), 10.0)]),
        )]);
        let mut e = Engine::new(
            topo,
            EngineConfig {
                service_jitter: 0.0,
                pod_startup: SimDuration::from_secs(2),
                ..EngineConfig::default()
            },
            Box::new(w),
        );
        e.enable_hpa(HpaConfig {
            stabilization: SimDuration::from_secs(30),
            ..HpaConfig::default()
        });
        e.run_until(SimTime::from_secs(55));
        let peak = e.ready_pods(s);
        assert!(peak >= 4, "scaled up under load, pods={peak}");
        e.run_until(SimTime::from_secs(200));
        let settled = e.ready_pods(s);
        assert!(
            settled < peak,
            "scaled down after the load dropped: {peak} → {settled}"
        );
        assert!(settled >= 2, "never below the min replicas");
    }

    #[test]
    fn grow_service_adds_ready_pods_immediately() {
        let mut topo = Topology::new("grow");
        let s = topo.add_service(ServiceSpec::new("s", 1));
        topo.add_api(ApiSpec::single("a", CallNode::leaf(s, ms(10))));
        let w = OpenLoopWorkload::constant(vec![(ApiId(0), 50.0)]);
        let mut e = Engine::new(topo, EngineConfig::default(), Box::new(w));
        e.run_until(SimTime::from_secs(2));
        assert_eq!(e.ready_pods(s), 1);
        e.grow_service(s, 5);
        assert_eq!(e.ready_pods(s), 5, "growth is immediate (no startup)");
        let used = e.vcpus_used();
        assert!((used - 5.0).abs() < 1e-9, "vCPU accounting follows: {used}");
    }

    #[test]
    fn closed_loop_client_timeout_keeps_users_alive() {
        // One pod at 10 ms with a huge queue: responses take far longer
        // than the 10 s client timeout under heavy overload, yet users
        // keep issuing (via the timeout path), so offered load persists.
        let mut topo = Topology::new("timeout");
        let s = topo.add_service(ServiceSpec::new("s", 1).queue_capacity(100_000));
        let api = topo.add_api(ApiSpec::single("a", CallNode::leaf(s, ms(10))));
        let w = ClosedLoopWorkload::fixed(vec![(api, 1.0)], 500, SimDuration::from_secs(1));
        let mut e = Engine::new(
            topo,
            EngineConfig {
                service_jitter: 0.0,
                ..EngineConfig::default()
            },
            Box::new(w),
        );
        e.run_until(SimTime::from_secs(60));
        let t = e.api_totals(api);
        // 500 users, ~100 rps capacity → backlog far beyond the timeout.
        // Users must still have issued many generations of requests.
        assert!(
            t.offered > 1500,
            "timed-out users keep issuing, offered={}",
            t.offered
        );
    }

    #[test]
    fn learned_and_static_paths_agree_for_non_branching_apis() {
        let mut topo = Topology::new("agree");
        let f = topo.add_service(ServiceSpec::new("f", 2));
        let b = topo.add_service(ServiceSpec::new("b", 2));
        let api = topo.add_api(ApiSpec::single(
            "a",
            CallNode::with_children(f, ms(1), vec![CallNode::leaf(b, ms(2))]),
        ));
        let static_paths = topo.api_service_map();
        let w = OpenLoopWorkload::constant(vec![(api, 100.0)]);
        let mut e = Engine::new(
            topo,
            EngineConfig {
                learn_paths: true,
                ..EngineConfig::default()
            },
            Box::new(w),
        );
        e.run_until(SimTime::from_secs(5));
        let mut learned = e.latest_observation().expect("tick").api_paths[api.idx()].clone();
        learned.sort();
        let mut want = static_paths[api.idx()].clone();
        want.sort();
        assert_eq!(learned, want);
    }
}
