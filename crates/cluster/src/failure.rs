//! Failure injection and the overload crash-loop model.
//!
//! Two failure mechanisms from the paper's evaluation:
//!
//! * **Injected pod kills** (Fig. 18): "We delete 25 pods among 35 pods of
//!   ts-station microservice at time 50s. Then, Kubernetes automatically
//!   starts scaling 25 pods to maintain the number of 35 healthy pods."
//!   A [`FailureSpec`] schedules exactly that: pods die instantly, losing
//!   queued and in-flight work, and replacements become ready after the
//!   pod startup delay.
//! * **Overload crash-loops** (§6.3): "Recommendation microservice's pods
//!   completely failed at the initial traffic surge… they kept failing
//!   until enough pods are allocated at once. … such pod failures can
//!   occur when liveness and readiness probes fail due to sudden
//!   overload." [`CrashLoopConfig`] models this: a pod whose queue is
//!   saturated for `probes_to_crash` consecutive probe intervals crashes
//!   (dropping its backlog) and restarts after `restart_delay`.

use crate::types::ServiceId;
use serde::{Deserialize, Serialize};
use simnet::{SimDuration, SimTime};

/// Kill `pods` pods of `service` at time `at`; replacements are recreated
/// after the engine's pod startup delay.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FailureSpec {
    pub at: SimTime,
    pub service: ServiceId,
    pub pods: u32,
}

/// How a crashed pod's restart delay grows across consecutive crashes.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum RestartBackoff {
    /// Every restart waits exactly `restart_delay` (the original model;
    /// keeps the Fig. 18 recovery timeline paper-faithful).
    Fixed,
    /// k8s CrashLoopBackOff: `restart_delay` doubles per consecutive
    /// crash (10 s, 20 s, 40 s, …) up to `cap`. A healthy probe streak
    /// decays the crash count back down.
    Exponential { cap: SimDuration },
}

impl Default for RestartBackoff {
    fn default() -> Self {
        // k8s caps CrashLoopBackOff at 5 minutes.
        RestartBackoff::Exponential {
            cap: SimDuration::from_secs(300),
        }
    }
}

impl RestartBackoff {
    /// The delay before restart number `crash_count` (1 = first crash).
    pub fn delay(self, base: SimDuration, crash_count: u32) -> SimDuration {
        match self {
            RestartBackoff::Fixed => base,
            RestartBackoff::Exponential { cap } => {
                // 2^(count-1), saturating well before overflow.
                let doublings = crash_count.saturating_sub(1).min(30);
                base.mul_f64(f64::from(1u32 << doublings.min(20))).min(cap)
            }
        }
    }
}

/// Liveness-probe crash-loop parameters for services with
/// `crash_on_overload` set.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CrashLoopConfig {
    /// Queue fill fraction (of `queue_capacity`) above which a probe
    /// counts the pod as saturated.
    pub saturation_fraction: f64,
    /// Consecutive saturated probes before the pod crashes.
    pub probes_to_crash: u32,
    /// Probe cadence.
    pub probe_interval: SimDuration,
    /// Base downtime before the crashed pod restarts (k8s
    /// CrashLoopBackOff starts at 10 s).
    pub restart_delay: SimDuration,
    /// How the delay grows across consecutive crashes.
    #[serde(default)]
    pub backoff: RestartBackoff,
}

impl Default for CrashLoopConfig {
    fn default() -> Self {
        CrashLoopConfig {
            saturation_fraction: 0.95,
            probes_to_crash: 6,
            probe_interval: SimDuration::from_secs(1),
            restart_delay: SimDuration::from_secs(10),
            backoff: RestartBackoff::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_spec_is_plain_data() {
        let f = FailureSpec {
            at: SimTime::from_secs(50),
            service: ServiceId(3),
            pods: 25,
        };
        assert_eq!(f.pods, 25);
        assert_eq!(f, f.clone());
    }

    #[test]
    fn crash_loop_defaults_are_sane() {
        let c = CrashLoopConfig::default();
        assert!(c.saturation_fraction > 0.0 && c.saturation_fraction <= 1.0);
        assert!(c.probes_to_crash >= 1);
        assert!(!c.restart_delay.is_zero());
    }
}
