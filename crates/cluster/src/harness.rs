//! Run loop coupling an [`Engine`] with an entry-point [`Controller`].
//!
//! TopFull's control loop is: observe the cluster once per second, decide,
//! and move per-API rate limits at the gateway (§5). The [`Harness`] runs
//! that loop over simulated time and records the per-interval series every
//! experiment in the paper plots — per-API goodput, latencies, rate
//! limits, pod counts and vCPU usage.

use crate::controller::Controller;
use crate::engine::Engine;
use crate::observe::ClusterObservation;
use crate::resilience::ResilienceStats;
use crate::types::ApiId;
use simnet::stats;
use simnet::{SimDuration, SimTime};
use std::sync::Arc;

/// Per-interval sample of one run.
#[derive(Clone, Debug)]
pub struct TickSample {
    pub at: SimTime,
    /// Per-API goodput (requests/s), indexed by `ApiId`.
    pub goodput: Vec<f64>,
    /// Per-API offered rate.
    pub offered: Vec<f64>,
    /// Per-API current rate limit.
    pub rate_limit: Vec<f64>,
    /// Per-API p99 end-to-end latency (seconds; 0 when no responses).
    pub p99: Vec<f64>,
    /// Total ready pods.
    pub pods: u32,
    /// vCPUs allocated.
    pub vcpus: f64,
    /// Request-plane resilience counters for this window (doomed work
    /// cancelled, retries suppressed, breaker activity, …).
    pub resilience: ResilienceStats,
}

/// Result of a harness run: the full per-interval timeline plus the
/// control system's decision journal.
#[derive(Clone, Debug, Default)]
pub struct RunResult {
    pub samples: Vec<TickSample>,
    pub num_apis: usize,
    /// Decision journal entries recorded over the run (detector
    /// transitions, re-clusterings, rate actions, watchdog events, plane
    /// aggregates). Filled by [`Harness::into_result`].
    pub journal: Vec<obs::JournalEntry>,
}

impl RunResult {
    /// Mean goodput of one API over an inclusive time range (seconds).
    /// An `ApiId` outside this run's topology reads as 0 rps.
    pub fn mean_goodput_api(&self, api: ApiId, from_s: f64, to_s: f64) -> f64 {
        let xs: Vec<f64> = self
            .samples
            .iter()
            .filter(|s| {
                let t = s.at.as_secs_f64();
                t >= from_s && t <= to_s
            })
            .map(|s| s.goodput.get(api.idx()).copied().unwrap_or(0.0))
            .collect();
        stats::mean(&xs)
    }

    /// Mean total goodput over an inclusive time range (seconds).
    pub fn mean_total_goodput(&self, from_s: f64, to_s: f64) -> f64 {
        let xs: Vec<f64> = self
            .samples
            .iter()
            .filter(|s| {
                let t = s.at.as_secs_f64();
                t >= from_s && t <= to_s
            })
            .map(|s| s.goodput.iter().sum())
            .collect();
        stats::mean(&xs)
    }

    /// Per-API goodput timeline as `(seconds, rps)` pairs. An `ApiId`
    /// outside this run's topology reads as 0 rps.
    pub fn goodput_series(&self, api: ApiId) -> Vec<(f64, f64)> {
        self.samples
            .iter()
            .map(|s| {
                (
                    s.at.as_secs_f64(),
                    s.goodput.get(api.idx()).copied().unwrap_or(0.0),
                )
            })
            .collect()
    }

    /// Total goodput timeline as `(seconds, rps)` pairs.
    pub fn total_goodput_series(&self) -> Vec<(f64, f64)> {
        self.samples
            .iter()
            .map(|s| (s.at.as_secs_f64(), s.goodput.iter().sum()))
            .collect()
    }

    /// Resilience counters summed over the whole run.
    pub fn total_resilience(&self) -> ResilienceStats {
        let mut total = ResilienceStats::default();
        for s in &self.samples {
            total.add(&s.resilience);
        }
        total
    }
}

/// Watchdog tuning for the hardened harness loop
/// ([`Harness::with_watchdog`]).
#[derive(Clone, Copy, Debug)]
pub struct WatchdogConfig {
    /// An observation older than this counts as dark (stale telemetry).
    pub max_obs_age: SimDuration,
    /// Consecutive dark ticks before the watchdog engages.
    pub dark_after: u32,
    /// Ticks to hold rate limits frozen once engaged, before decaying.
    pub freeze_ticks: u32,
    /// Per-tick multiplicative decay applied to finite limits after the
    /// freeze expires (gently sheds load while blind).
    pub decay: f64,
    /// Limits never decay below this rate (requests/s).
    pub floor: f64,
    /// Maximum per-tick growth factor of any limit while re-entering
    /// control after an outage (smooth ramp instead of a step).
    pub reentry_growth: f64,
    /// Ticks the re-entry ramp lasts.
    pub reentry_ticks: u32,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            max_obs_age: SimDuration::from_secs(3),
            dark_after: 2,
            freeze_ticks: 5,
            decay: 0.98,
            floor: 1.0,
            reentry_growth: 1.25,
            reentry_ticks: 5,
        }
    }
}

/// What the watchdog did over a run (for tests and experiment reports).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WatchdogStats {
    /// Control ticks skipped because the control plane was stalled.
    pub stalled_ticks: u64,
    /// Ticks spent with limits frozen (observations dark).
    pub frozen_ticks: u64,
    /// Ticks spent decaying limits (still dark past the freeze window).
    pub decayed_ticks: u64,
    /// Times control was re-entered after an outage.
    pub reentries: u64,
}

struct Watchdog {
    cfg: WatchdogConfig,
    dark_streak: u32,
    reentry_left: u32,
    stats: WatchdogStats,
}

impl Watchdog {
    fn engaged(&self) -> bool {
        self.dark_streak >= self.cfg.dark_after
    }
}

/// Couples an engine and a controller at the control cadence.
pub struct Harness {
    pub engine: Engine,
    controller: Box<dyn Controller>,
    result: RunResult,
    next_tick: SimTime,
    watchdog: Option<Watchdog>,
    journal: Arc<obs::Journal>,
    slo: obs::SloMonitor,
}

impl Harness {
    /// Wrap `engine`, controlled by `controller`. A shared decision
    /// journal is created and attached to both: the controller records
    /// its verdicts, the engine its per-window plane aggregates.
    pub fn new(mut engine: Engine, mut controller: Box<dyn Controller>) -> Self {
        let num_apis = engine.topology().num_apis();
        let interval = engine.config().control_interval;
        let journal = obs::Journal::shared();
        engine.set_journal(Arc::clone(&journal));
        controller.attach_journal(Arc::clone(&journal));
        Harness {
            engine,
            controller,
            result: RunResult {
                samples: Vec::new(),
                num_apis,
                journal: Vec::new(),
            },
            next_tick: SimTime::ZERO + interval,
            watchdog: None,
            journal,
            slo: obs::SloMonitor::new(obs::SloConfig::default()),
        }
    }

    /// The shared decision journal.
    pub fn journal(&self) -> &Arc<obs::Journal> {
        &self.journal
    }

    /// Replace the SLO burn-rate monitor's objective/windows. Resets any
    /// accumulated burn history, so call before the run starts.
    pub fn set_slo_config(&mut self, cfg: obs::SloConfig) {
        self.slo = obs::SloMonitor::new(cfg);
    }

    /// The current error budget remaining per API, in `[0, 1]` (1 when
    /// the monitor has seen no traffic for an API yet).
    pub fn slo_monitor(&self) -> &obs::SloMonitor {
        &self.slo
    }

    /// The hardened loop: like [`Harness::new`], plus a watchdog that
    /// (a) skips control ticks while the control plane is stalled,
    /// (b) freezes rate limits when observations go dark (stale, or all
    /// utilizations unreadable), then gently decays them toward a floor,
    /// and (c) ramps limit growth when control re-enters, instead of
    /// letting the controller's stale internal state step limits up
    /// abruptly.
    pub fn with_watchdog(
        engine: Engine,
        controller: Box<dyn Controller>,
        cfg: WatchdogConfig,
    ) -> Self {
        let mut h = Harness::new(engine, controller);
        h.watchdog = Some(Watchdog {
            cfg,
            dark_streak: 0,
            reentry_left: 0,
            stats: WatchdogStats::default(),
        });
        h
    }

    /// What the watchdog did so far (zeroes when none is attached).
    pub fn watchdog_stats(&self) -> WatchdogStats {
        self.watchdog.as_ref().map(|w| w.stats).unwrap_or_default()
    }

    /// Run until `t`, ticking the controller at every control interval.
    pub fn run_until(&mut self, t: SimTime) {
        let interval = self.engine.config().control_interval;
        while self.next_tick <= t {
            self.engine.run_until(self.next_tick);
            // Measurement records ground truth; the controller sees the
            // (possibly fault-distorted) observability-pipeline view.
            if let Some(truth) = self.engine.latest_true_observation().cloned() {
                self.record(&truth);
            }
            if let Some(mut obs) = self.engine.latest_observation().cloned() {
                self.observe_slo(&mut obs);
                self.control_tick(&obs);
            }
            self.next_tick += interval;
        }
        self.engine.run_until(t);
    }

    /// Feed this window into the SLO burn-rate monitor, attach the
    /// resulting per-API signals to the observation the controller will
    /// see, and journal every severity transition. Runs on the control
    /// thread only, so journal order is deterministic across worker
    /// counts. Rejected (never-admitted) requests are neither good nor
    /// bad: shedding spends no error budget.
    fn observe_slo(&mut self, obs: &mut ClusterObservation) {
        let w = obs.window.as_secs_f64();
        let samples: Vec<obs::ApiSloSample> = obs
            .apis
            .iter()
            .map(|a| obs::ApiSloSample {
                good: a.goodput * w,
                bad: (a.slo_violated + a.failed) * w,
            })
            .collect();
        let tick = self.slo.observe(obs.now.as_secs_f64(), &samples);
        for tr in &tick.transitions {
            let name = obs
                .apis
                .get(tr.api as usize)
                .map(|a| a.name.clone())
                .unwrap_or_else(|| format!("api{}", tr.api));
            self.journal.record(obs::JournalEntry::SloBurn {
                t: obs.now.as_secs_f64(),
                api: tr.api,
                api_name: name,
                from: tr.from.as_str().into(),
                to: tr.to.as_str().into(),
                fast_burn: tr.fast_burn,
                slow_burn: tr.slow_burn,
                budget_remaining: tr.budget_remaining,
            });
        }
        obs.slo_burn = tick.signals;
    }

    /// One control decision, routed through the watchdog when attached.
    fn control_tick(&mut self, obs: &ClusterObservation) {
        let Some(mut wd) = self.watchdog.take() else {
            // A stalled control plane stalls every controller, watchdog
            // or not — the fault models the loop itself being down.
            if self.engine.control_stalled() {
                return;
            }
            let updates = self.controller.control(obs);
            for u in updates {
                self.engine.set_rate_limit(u.api, u.rate);
            }
            return;
        };
        let stalled = self.engine.control_stalled();
        if stalled {
            // The control plane missed this tick entirely; limits stay
            // exactly where they are.
            wd.stats.stalled_ticks += 1;
            self.watchdog = Some(wd);
            return;
        }
        let dark = self.next_tick.duration_since(obs.now) > wd.cfg.max_obs_age
            || obs.services.iter().all(|s| !s.utilization.is_finite());
        if dark {
            wd.dark_streak = wd.dark_streak.saturating_add(1);
            if wd.dark_streak == wd.cfg.dark_after {
                self.journal.record(obs::JournalEntry::Watchdog {
                    t: obs.now.as_secs_f64(),
                    event: "engaged: observations dark, limits frozen".into(),
                });
            }
            if wd.engaged() {
                if wd.dark_streak - wd.cfg.dark_after < wd.cfg.freeze_ticks {
                    wd.stats.frozen_ticks += 1;
                } else {
                    // Still blind past the freeze window: decay finite
                    // limits toward the floor — load gently sheds instead
                    // of running open-loop on the last pre-outage limits.
                    if wd.dark_streak - wd.cfg.dark_after == wd.cfg.freeze_ticks {
                        self.journal.record(obs::JournalEntry::Watchdog {
                            t: obs.now.as_secs_f64(),
                            event: "decaying: still dark past freeze window".into(),
                        });
                    }
                    wd.stats.decayed_ticks += 1;
                    for i in 0..self.result.num_apis {
                        let api = ApiId(i as u32);
                        let l = self.engine.rate_limit(api);
                        if l.is_finite() {
                            let next = (l * wd.cfg.decay).max(wd.cfg.floor);
                            self.engine.set_rate_limit(api, next);
                        }
                    }
                }
                self.watchdog = Some(wd);
                return;
            }
            // Not yet engaged: fall through — one flaky tick is the
            // hardened controller's problem, not the watchdog's.
        } else {
            if wd.engaged() {
                wd.stats.reentries += 1;
                wd.reentry_left = wd.cfg.reentry_ticks;
                self.journal.record(obs::JournalEntry::Watchdog {
                    t: obs.now.as_secs_f64(),
                    event: "reentry: observations recovered, ramping limits".into(),
                });
            }
            wd.dark_streak = 0;
        }
        let updates = self.controller.control(obs);
        for u in updates {
            let mut rate = u.rate;
            if wd.reentry_left > 0 {
                let cur = self.engine.rate_limit(u.api);
                if cur.is_finite() {
                    // Ramp: no limit may grow faster than the configured
                    // factor per tick right after an outage.
                    rate = rate.min(cur * wd.cfg.reentry_growth);
                }
            }
            self.engine.set_rate_limit(u.api, rate);
        }
        wd.reentry_left = wd.reentry_left.saturating_sub(1);
        self.watchdog = Some(wd);
    }

    /// Convenience: run for `secs` of simulated time from the start.
    pub fn run_for_secs(&mut self, secs: u64) {
        self.run_until(SimTime::from_secs(secs));
    }

    fn record(&mut self, obs: &ClusterObservation) {
        let goodput: Vec<f64> = obs.apis.iter().map(|a| a.goodput).collect();
        let offered: Vec<f64> = obs.apis.iter().map(|a| a.offered).collect();
        let rate_limit: Vec<f64> = obs.apis.iter().map(|a| a.rate_limit).collect();
        let p99: Vec<f64> = obs
            .apis
            .iter()
            .map(|a| a.p99.map(SimDuration::as_secs_f64).unwrap_or(0.0))
            .collect();
        let pods: u32 = obs.services.iter().map(|s| s.alive_pods).sum();
        self.result.samples.push(TickSample {
            at: obs.now,
            goodput,
            offered,
            rate_limit,
            p99,
            pods,
            vcpus: self.engine.vcpus_used(),
            resilience: obs.resilience,
        });
    }

    /// The timeline recorded so far.
    pub fn result(&self) -> &RunResult {
        &self.result
    }

    /// Consume the harness, returning the timeline with the decision
    /// journal embedded.
    pub fn into_result(mut self) -> RunResult {
        self.result.journal = self.journal.snapshot();
        self.result
    }

    /// Name of the attached controller.
    pub fn controller_name(&self) -> &str {
        self.controller.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{NoControl, RateLimitUpdate};
    use crate::engine::EngineConfig;
    use crate::topology::{ApiSpec, CallNode, ServiceSpec, Topology};
    use crate::workload::OpenLoopWorkload;

    fn engine(rate: f64) -> Engine {
        let mut topo = Topology::new("t");
        let s = topo.add_service(ServiceSpec::new("s", 1));
        let api = topo.add_api(ApiSpec::single(
            "a",
            CallNode::leaf(s, SimDuration::from_millis(10)),
        ));
        let w = OpenLoopWorkload::constant(vec![(api, rate)]);
        Engine::new(
            topo,
            EngineConfig {
                service_jitter: 0.0,
                ..EngineConfig::default()
            },
            Box::new(w),
        )
    }

    #[test]
    fn harness_records_one_sample_per_interval() {
        let mut h = Harness::new(engine(50.0), Box::new(NoControl));
        h.run_for_secs(10);
        assert_eq!(h.result().samples.len(), 10);
        assert_eq!(h.result().num_apis, 1);
        // Monotone timestamps at 1 s cadence.
        for (i, s) in h.result().samples.iter().enumerate() {
            assert_eq!(s.at, SimTime::from_secs(i as u64 + 1));
        }
    }

    #[test]
    fn controller_updates_reach_the_gateway() {
        /// Clamps API 0 to 30 rps on the first tick.
        struct ClampOnce(bool);
        impl Controller for ClampOnce {
            fn control(&mut self, _o: &ClusterObservation) -> Vec<RateLimitUpdate> {
                if self.0 {
                    return Vec::new();
                }
                self.0 = true;
                vec![RateLimitUpdate::limit(ApiId(0), 30.0)]
            }
        }
        let mut h = Harness::new(engine(100.0), Box::new(ClampOnce(false)));
        h.run_for_secs(20);
        let r = h.result();
        // After the clamp, goodput settles near 30 rps.
        let late = r.mean_goodput_api(ApiId(0), 10.0, 20.0);
        assert!(
            (24.0..=36.0).contains(&late),
            "clamped goodput ≈30 rps, got {late}"
        );
        // And the recorded rate limit reflects it.
        assert_eq!(r.samples.last().unwrap().rate_limit[0], 30.0);
    }

    #[test]
    fn out_of_range_api_reads_as_zero() {
        let mut h = Harness::new(engine(50.0), Box::new(NoControl));
        h.run_for_secs(5);
        let r = h.result();
        // The topology has one API; ApiId(7) must not panic.
        assert_eq!(r.mean_goodput_api(ApiId(7), 0.0, 5.0), 0.0);
        let series = r.goodput_series(ApiId(7));
        assert_eq!(series.len(), 5);
        assert!(series.iter().all(|(_, v)| *v == 0.0));
    }

    #[test]
    fn sustained_overload_journals_a_page_severity_burn() {
        // 1 pod × 10 ms service time ≈ 100 rps capacity; offering 600 rps
        // with no control drowns the SLO, so the fast burn windows blow
        // past the page threshold within seconds.
        let mut h = Harness::new(engine(600.0), Box::new(NoControl));
        h.run_for_secs(30);
        let entries = h.journal().snapshot();
        let burns: Vec<_> = entries
            .iter()
            .filter_map(|e| match e {
                obs::JournalEntry::SloBurn { to, api_name, .. } => {
                    Some((to.clone(), api_name.clone()))
                }
                _ => None,
            })
            .collect();
        assert!(
            burns.iter().any(|(to, _)| to == "page"),
            "expected a page-severity SloBurn, got {burns:?}"
        );
        assert!(burns.iter().all(|(_, name)| name == "a"), "{burns:?}");
    }

    #[test]
    fn healthy_run_journals_no_burn_transitions() {
        let mut h = Harness::new(engine(20.0), Box::new(NoControl));
        h.run_for_secs(30);
        let entries = h.journal().snapshot();
        assert!(
            !entries
                .iter()
                .any(|e| matches!(e, obs::JournalEntry::SloBurn { .. })),
            "an unloaded run must not page"
        );
    }

    #[test]
    fn mean_helpers_aggregate_windows() {
        let mut h = Harness::new(engine(50.0), Box::new(NoControl));
        h.run_for_secs(10);
        let r = h.result();
        let total = r.mean_total_goodput(2.0, 10.0);
        let api = r.mean_goodput_api(ApiId(0), 2.0, 10.0);
        assert!((total - api).abs() < 1e-9, "single API: total == api");
        assert!(total > 30.0);
        assert_eq!(r.goodput_series(ApiId(0)).len(), 10);
        assert_eq!(r.total_goodput_series().len(), 10);
    }
}
