//! The front-door admission plane: single-flight request coalescing
//! and DAGOR-style priority admission, stacked *in front of* the
//! TopFull token bucket.
//!
//! A request traverses up to three stages at the entry gateway:
//!
//! ```text
//!   arrival ──▶ [1 coalesce] ──▶ [2 priority] ──▶ [3 token bucket] ──▶ cluster
//!                 │    │             │
//!                 │    └ follower    └ shed (below threshold)
//!                 └ cache hit
//! ```
//!
//! Stage 1 ([`coalesce::CoalesceCache`]) answers duplicate reads from a
//! bounded TTL'd cache or parks them on an identical in-flight leader;
//! neither consumes a token. Stage 2 ([`priority::PriorityGate`]) sheds
//! below-threshold work before it can consume a token. Stage 3 is the
//! unchanged [`crate::entry_admission::EntryAdmission`] owned by the
//! caller — the [`FrontDoor`] deliberately stops short of it so the
//! simulator's virtual gateway and the live TCP gateway keep their
//! existing token-bucket plumbing and stack this plane in front.
//!
//! Both planes drive the same `FrontDoor` code: the simulator from the
//! engine's arrival/completion handlers, the live gateway from its
//! batched admit path under one lock per batch. The priority gate's
//! overload signal is derived from the same per-window
//! [`ClusterObservation`] telemetry in both, so for identical inputs
//! the verdict sequences are identical (Sim2Real, DESIGN.md §17).

pub mod coalesce;
pub mod priority;

use crate::observe::ClusterObservation;
use crate::types::ApiId;
use coalesce::{CoalesceCache, Lookup};
use obs::{Counter, Gauge, Registry};
use priority::{PriorityGate, ThresholdMove};
use simnet::{SimDuration, SimTime};
use std::sync::Arc;

pub use priority::PriorityConfig;

/// Coalescing-stage configuration.
#[derive(Clone, Copy, Debug)]
pub struct CoalesceConfig {
    /// Response-cache capacity in entries (0 = single-flight only).
    pub cache_capacity: usize,
    /// Responses are served from cache strictly within this TTL.
    pub cache_ttl: SimDuration,
}

impl Default for CoalesceConfig {
    fn default() -> Self {
        CoalesceConfig {
            cache_capacity: 1024,
            cache_ttl: SimDuration::from_millis(500),
        }
    }
}

/// Front-door configuration; either stage may be absent.
#[derive(Clone, Copy, Debug, Default)]
pub struct FrontConfig {
    pub coalesce: Option<CoalesceConfig>,
    pub priority: Option<PriorityConfig>,
}

/// Verdict for one arriving request, before the token bucket.
#[derive(Clone, Debug)]
pub enum PreVerdict {
    /// Served from the response cache; no token consumed.
    CacheHit(Arc<str>),
    /// Parked on the identical in-flight request tagged `leader`.
    Follower { leader: u64 },
    /// Shed by the priority gate at composite `level`.
    Shed { level: u32 },
    /// Passed both stages; proceed to the token bucket. When `lead`
    /// is true the request is coalescable and, once the bucket admits
    /// it, the caller must register it via [`FrontDoor::begin_flight`].
    Proceed { lead: bool },
}

/// Cumulative front-door instruments, shared with the `obs` registry.
#[derive(Clone, Default)]
pub struct FrontStats {
    /// Duplicate reads answered from the response cache.
    pub cache_hits: Counter,
    /// Duplicate reads parked on an in-flight leader.
    pub follower_hits: Counter,
    /// Coalescable reads that found neither (and led or got shed).
    pub misses: Counter,
    /// Requests shed by the priority gate, per business tier.
    pub shed: Vec<Counter>,
    /// Coalescing hit rate over all coalescable lookups so far.
    pub hit_rate: Gauge,
    /// Current priority-admission threshold (level space units).
    pub threshold: Gauge,
}

impl FrontStats {
    fn new(tiers: usize) -> Self {
        FrontStats {
            shed: (0..tiers).map(|_| Counter::unregistered()).collect(),
            ..FrontStats::default()
        }
    }

    /// Total priority-shed count across tiers.
    pub fn shed_total(&self) -> u64 {
        self.shed.iter().map(Counter::get).sum()
    }

    /// Adopt every instrument into `reg` under the `topfull_` families
    /// exposed at `/metrics`.
    pub fn register_into(&self, reg: &Registry) {
        reg.register_counter(
            "topfull_coalesce_hit_total",
            &[("kind", "cache")],
            &self.cache_hits,
        );
        reg.register_counter(
            "topfull_coalesce_hit_total",
            &[("kind", "inflight")],
            &self.follower_hits,
        );
        reg.register_counter("topfull_coalesce_miss_total", &[], &self.misses);
        reg.register_gauge("topfull_coalesce_hit_rate", &[], &self.hit_rate);
        for (tier, c) in self.shed.iter().enumerate() {
            let t = tier.to_string();
            reg.register_counter("topfull_priority_shed_total", &[("business", &t)], c);
        }
        reg.register_gauge("topfull_priority_threshold", &[], &self.threshold);
    }
}

/// Per-window front-door aggregates (deltas since the previous tick).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WindowCounts {
    pub cache_hits: u64,
    pub follower_hits: u64,
    pub misses: u64,
    pub shed: u64,
}

impl WindowCounts {
    pub fn any(&self) -> bool {
        *self != WindowCounts::default()
    }
}

/// One control-tick outcome: window deltas plus the priority-threshold
/// move, if the gate adapted. The caller journals these (the engine as
/// `AdmissionWindow` / `PriorityThreshold` entries).
#[derive(Clone, Copy, Debug)]
pub struct FrontTick {
    pub window: WindowCounts,
    pub threshold: Option<ThresholdMove>,
}

/// Stages 1–2 of the front-door stack. See module docs.
pub struct FrontDoor {
    cache: Option<CoalesceCache>,
    gate: Option<PriorityGate>,
    stats: FrontStats,
    /// Counter snapshot at the last tick, for window deltas.
    base: (u64, u64, u64, u64),
}

impl FrontDoor {
    pub fn new(cfg: FrontConfig) -> Self {
        let tiers = cfg
            .priority
            .map(|p| p.business_tiers.max(1) as usize)
            .unwrap_or(0);
        let stats = FrontStats::new(tiers);
        if let Some(p) = cfg.priority {
            stats
                .threshold
                .set(f64::from(p.business_tiers.max(1) * p.user_levels.max(1)));
        }
        FrontDoor {
            cache: cfg
                .coalesce
                .map(|c| CoalesceCache::new(c.cache_capacity, c.cache_ttl)),
            gate: cfg.priority.map(PriorityGate::new),
            stats,
            base: (0, 0, 0, 0),
        }
    }

    /// The door's instruments (register them into a metrics registry).
    pub fn stats(&self) -> &FrontStats {
        &self.stats
    }

    /// Whether the coalescing stage is enabled.
    pub fn coalescing(&self) -> bool {
        self.cache.is_some()
    }

    /// Current priority threshold, when the gate is enabled.
    pub fn priority_threshold(&self) -> Option<u32> {
        self.gate.as_ref().map(PriorityGate::threshold)
    }

    /// The external overload signal driving the priority gate: any
    /// service's mean queuing delay above the configured threshold —
    /// the same law as WeChat's per-service variant, evaluated on the
    /// same [`ClusterObservation`] in both the simulator and the live
    /// plane. Always false when the gate is disabled.
    pub fn overloaded(&self, obs: &ClusterObservation) -> bool {
        let Some(gate) = self.gate.as_ref() else {
            return false;
        };
        let th = gate.queuing_delay_threshold();
        obs.services.iter().any(|s| s.mean_queuing_delay > th)
    }

    /// Run stages 1–2 for one arriving request. `key` is the request's
    /// coalescing key (`None` = not coalescable); `(business, user)`
    /// is its priority pair. Cache hits and followers bypass the
    /// priority gate — they cost no cluster work, so shedding them
    /// would only destroy free goodput.
    pub fn pre_admit(
        &mut self,
        api: ApiId,
        key: Option<u64>,
        business: u8,
        user: u8,
        now: SimTime,
    ) -> PreVerdict {
        if let (Some(cache), Some(k)) = (self.cache.as_mut(), key) {
            match cache.lookup(api, k, now) {
                Lookup::Hit(payload) => {
                    self.stats.cache_hits.inc();
                    self.update_hit_rate();
                    return PreVerdict::CacheHit(payload);
                }
                Lookup::Follower { leader } => {
                    self.stats.follower_hits.inc();
                    self.update_hit_rate();
                    return PreVerdict::Follower { leader };
                }
                Lookup::Miss => {
                    self.stats.misses.inc();
                    self.update_hit_rate();
                }
            }
        }
        if let Some(gate) = self.gate.as_mut() {
            let level = gate.level(business, user);
            if !gate.admit(level) {
                let tier = usize::from(business).min(self.stats.shed.len().saturating_sub(1));
                self.stats.shed[tier].inc();
                return PreVerdict::Shed { level };
            }
        }
        PreVerdict::Proceed {
            lead: key.is_some() && self.cache.is_some(),
        }
    }

    /// Register `leader` as the single flight for `(api, key)`; call
    /// after a [`PreVerdict::Proceed`]`{lead: true}` request passed the
    /// token bucket.
    pub fn begin_flight(&mut self, api: ApiId, key: u64, leader: u64) {
        if let Some(cache) = self.cache.as_mut() {
            cache.begin_flight(api, key, leader);
        }
    }

    /// The flight leader completed: cache its response payload and
    /// clear the flight (the caller releases parked followers with the
    /// same payload).
    pub fn complete_flight(&mut self, api: ApiId, key: u64, payload: Arc<str>, now: SimTime) {
        if let Some(cache) = self.cache.as_mut() {
            cache.complete_flight(api, key, payload, now);
        }
    }

    /// The flight leader failed: clear the flight without caching, so
    /// followers fail fast instead of hanging.
    pub fn fail_flight(&mut self, api: ApiId, key: u64) {
        if let Some(cache) = self.cache.as_mut() {
            cache.fail_flight(api, key);
        }
    }

    /// Close the control window: adapt the priority gate to the
    /// external `overloaded` signal, refresh gauges, and report the
    /// window's verdict deltas for journaling.
    pub fn tick(&mut self, overloaded: bool) -> FrontTick {
        let threshold = self.gate.as_mut().and_then(|g| g.adapt(overloaded));
        if let Some(g) = self.gate.as_ref() {
            self.stats.threshold.set(f64::from(g.threshold()));
        }
        let snap = (
            self.stats.cache_hits.get(),
            self.stats.follower_hits.get(),
            self.stats.misses.get(),
            self.stats.shed_total(),
        );
        let window = WindowCounts {
            cache_hits: snap.0 - self.base.0,
            follower_hits: snap.1 - self.base.1,
            misses: snap.2 - self.base.2,
            shed: snap.3 - self.base.3,
        };
        self.base = snap;
        FrontTick { window, threshold }
    }

    fn update_hit_rate(&self) {
        let hits = self.stats.cache_hits.get() + self.stats.follower_hits.get();
        let total = hits + self.stats.misses.get();
        if total > 0 {
            self.stats.hit_rate.set(hits as f64 / total as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn coalesce_only() -> FrontDoor {
        FrontDoor::new(FrontConfig {
            coalesce: Some(CoalesceConfig {
                cache_capacity: 64,
                cache_ttl: SimDuration::from_secs(2),
            }),
            priority: None,
        })
    }

    #[test]
    fn full_stack_verdict_flow() {
        let mut d = FrontDoor::new(FrontConfig {
            coalesce: Some(CoalesceConfig::default()),
            priority: Some(PriorityConfig::default()),
        });
        let now = SimTime::from_secs(1);
        // Miss → lead.
        let v = d.pre_admit(ApiId(0), Some(5), 0, 0, now);
        assert!(matches!(v, PreVerdict::Proceed { lead: true }));
        d.begin_flight(ApiId(0), 5, 100);
        // Duplicate → follower on the leader.
        assert!(matches!(
            d.pre_admit(ApiId(0), Some(5), 0, 1, now),
            PreVerdict::Follower { leader: 100 }
        ));
        // Completion → cache hit with the leader's payload.
        d.complete_flight(ApiId(0), 5, "resp".into(), now);
        match d.pre_admit(ApiId(0), Some(5), 0, 2, now) {
            PreVerdict::CacheHit(p) => assert_eq!(&*p, "resp"),
            other => panic!("expected cache hit, got {other:?}"),
        }
        // Non-coalescable request with the gate open → plain proceed.
        assert!(matches!(
            d.pre_admit(ApiId(1), None, 0, 0, now),
            PreVerdict::Proceed { lead: false }
        ));
        assert_eq!(d.stats().cache_hits.get(), 1);
        assert_eq!(d.stats().follower_hits.get(), 1);
        assert_eq!(d.stats().misses.get(), 1);
    }

    #[test]
    fn shed_requests_are_counted_per_tier_and_journaled_in_window() {
        let mut d = FrontDoor::new(FrontConfig {
            coalesce: None,
            priority: Some(PriorityConfig::default()),
        });
        let mut rng = simnet::rng::fork(7, "t");
        let now = SimTime::from_secs(1);
        for _ in 0..2_000 {
            d.pre_admit(ApiId(0), None, 6, rng.gen_range(0..=127), now);
        }
        // Force the gate down far enough to shed tier 6 entirely.
        for _ in 0..200 {
            d.tick(true);
            for _ in 0..50 {
                d.pre_admit(ApiId(0), None, 6, rng.gen_range(0..=127), now);
            }
        }
        let t = d.tick(true);
        assert!(d.stats().shed[6].get() > 0, "tier-6 requests were shed");
        assert_eq!(d.stats().shed_total(), d.stats().shed[6].get());
        assert!(t.window.shed > 0, "window delta carries the shed count");
        assert!(t.window.cache_hits == 0 && t.window.misses == 0);
    }

    #[test]
    fn tick_reports_threshold_moves_and_deltas_reset() {
        let mut d = FrontDoor::new(FrontConfig {
            coalesce: Some(CoalesceConfig::default()),
            priority: Some(PriorityConfig::default()),
        });
        let now = SimTime::ZERO;
        for user in 0..100u8 {
            d.pre_admit(ApiId(0), None, 0, user, now);
        }
        let t1 = d.tick(true);
        let mv = t1.threshold.expect("overloaded tick moves the threshold");
        assert!(mv.to < mv.from);
        assert_eq!(d.stats().threshold.get(), f64::from(mv.to));
        // A quiet tick reports nothing.
        let t2 = d.tick(false);
        assert!(!t2.window.any());
    }

    #[test]
    fn leader_failure_never_caches_and_next_arrival_leads() {
        let mut d = coalesce_only();
        let now = SimTime::from_secs(3);
        assert!(matches!(
            d.pre_admit(ApiId(0), Some(9), 0, 0, now),
            PreVerdict::Proceed { lead: true }
        ));
        d.begin_flight(ApiId(0), 9, 1);
        d.fail_flight(ApiId(0), 9);
        assert!(matches!(
            d.pre_admit(ApiId(0), Some(9), 0, 0, now),
            PreVerdict::Proceed { lead: true }
        ));
    }

    #[test]
    fn hit_rate_gauge_tracks_lookups() {
        let mut d = coalesce_only();
        let now = SimTime::ZERO;
        d.pre_admit(ApiId(0), Some(1), 0, 0, now);
        d.begin_flight(ApiId(0), 1, 1);
        d.complete_flight(ApiId(0), 1, "x".into(), now);
        d.pre_admit(ApiId(0), Some(1), 0, 0, now);
        assert!((d.stats().hit_rate.get() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn registry_exposes_front_door_families() {
        let d = FrontDoor::new(FrontConfig {
            coalesce: Some(CoalesceConfig::default()),
            priority: Some(PriorityConfig::default()),
        });
        let reg = Registry::new();
        d.stats().register_into(&reg);
        let text = reg.render_prometheus();
        assert!(text.contains("topfull_coalesce_hit_total{kind=\"cache\"} 0"));
        assert!(text.contains("topfull_coalesce_hit_total{kind=\"inflight\"} 0"));
        assert!(text.contains("topfull_coalesce_miss_total 0"));
        assert!(text.contains("topfull_priority_shed_total{business=\"0\"} 0"));
        assert!(text.contains("topfull_priority_shed_total{business=\"7\"} 0"));
        assert!(text.contains("topfull_priority_threshold 1024"));
    }

    /// Property: coalescing never changes response bytes. For a random
    /// interleaving of flights, completions, and lookups, every cache
    /// hit and every follower resolves to exactly the payload the
    /// authoritative (uncoalesced) backend would have produced for that
    /// `(api, key)` — the payload of the key's most recent completed
    /// write.
    #[test]
    fn coalescing_preserves_response_bytes() {
        let mut rng = simnet::rng::fork(42, "coalesce-prop");
        for round in 0..50 {
            let mut d = FrontDoor::new(FrontConfig {
                coalesce: Some(CoalesceConfig {
                    cache_capacity: rng.gen_range(1..8),
                    cache_ttl: SimDuration::from_secs(1_000),
                }),
                priority: None,
            });
            // The uncoalesced oracle: backend response per (api, key),
            // re-written on every completed flight.
            let mut oracle: std::collections::HashMap<(u32, u64), String> =
                std::collections::HashMap::new();
            let mut leaders: std::collections::HashMap<u64, (ApiId, u64, String)> =
                std::collections::HashMap::new();
            let mut next_id = 0u64;
            let mut version = 0u64;
            for step in 0..400 {
                let now = SimTime::from_millis(step);
                let api = ApiId(rng.gen_range(0..2));
                let key = rng.gen_range(0..5u64);
                match d.pre_admit(api, Some(key), 0, 0, now) {
                    PreVerdict::CacheHit(p) => {
                        let want = oracle.get(&(api.0, key)).expect("hit implies a write");
                        assert_eq!(&*p, want.as_str(), "round {round} step {step}");
                    }
                    PreVerdict::Follower { leader } => {
                        let (la, lk, _) = &leaders[&leader];
                        assert_eq!((*la, *lk), (api, key), "follower parked on wrong flight");
                    }
                    PreVerdict::Proceed { lead } => {
                        assert!(lead);
                        version += 1;
                        let payload = format!("resp:{}:{key}:v{version}", api.0);
                        d.begin_flight(api, key, next_id);
                        leaders.insert(next_id, (api, key, payload));
                        next_id += 1;
                    }
                    PreVerdict::Shed { .. } => unreachable!("no priority gate"),
                }
                // Randomly land or fail one outstanding flight.
                if !leaders.is_empty() && rng.gen_bool(0.6) {
                    let pick = *leaders.keys().min().expect("nonempty");
                    let (api, key, payload) = leaders.remove(&pick).expect("picked");
                    if rng.gen_bool(0.85) {
                        d.complete_flight(api, key, payload.as_str().into(), now);
                        oracle.insert((api.0, key), payload);
                    } else {
                        d.fail_flight(api, key);
                    }
                }
            }
        }
    }
}
