//! Single-flight request coalescing with a bounded, TTL'd response
//! cache.
//!
//! Identical in-flight read requests — same `(api, key)` — collapse
//! onto one *leader*: the first miss registers a flight, and every
//! duplicate arriving before the leader completes becomes a *follower*
//! parked on that flight (the caller owns the parking list; the cache
//! only remembers who leads). When the leader completes, its response
//! payload is stored and served to later arrivals directly from the
//! cache until the TTL lapses. The cache is bounded: inserting beyond
//! capacity evicts the least-recently-touched entry. Touch order is a
//! monotone tick (unique per touch), so eviction is deterministic — a
//! property the simulator's journal fingerprint depends on.

use crate::types::ApiId;
use simnet::{SimDuration, SimTime};
use std::collections::HashMap;
use std::sync::Arc;

/// Outcome of a cache consultation for one arriving request.
#[derive(Clone, Debug)]
pub enum Lookup {
    /// A fresh cached response; serve it without consuming a token.
    Hit(Arc<str>),
    /// An identical request is in flight; park on `leader`'s completion.
    Follower {
        /// Caller-assigned tag of the in-flight leader (request id).
        leader: u64,
    },
    /// No cached or in-flight response; the caller may lead a flight.
    Miss,
}

struct Entry {
    payload: Arc<str>,
    stored_at: SimTime,
    touched: u64,
}

/// Bounded single-flight response cache. See module docs.
pub struct CoalesceCache {
    capacity: usize,
    ttl: SimDuration,
    entries: HashMap<(u32, u64), Entry>,
    /// Keys with a flight in progress → the leader's tag.
    inflight: HashMap<(u32, u64), u64>,
    /// Monotone touch clock for deterministic LRU eviction.
    tick: u64,
}

impl CoalesceCache {
    pub fn new(capacity: usize, ttl: SimDuration) -> Self {
        CoalesceCache {
            capacity,
            ttl,
            entries: HashMap::new(),
            inflight: HashMap::new(),
            tick: 0,
        }
    }

    /// Cached entries currently held (after lazy TTL expiry).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Flights currently registered.
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }

    /// Consult the cache for a request on `(api, key)` arriving at
    /// `now`. An entry is fresh strictly within its TTL; an expired
    /// entry is removed on the spot (lazy expiry — the capacity bound
    /// keeps the map small regardless).
    pub fn lookup(&mut self, api: ApiId, key: u64, now: SimTime) -> Lookup {
        let k = (api.0, key);
        if let Some(e) = self.entries.get_mut(&k) {
            if now.duration_since(e.stored_at) < self.ttl {
                self.tick += 1;
                e.touched = self.tick;
                return Lookup::Hit(e.payload.clone());
            }
            self.entries.remove(&k);
        }
        if let Some(&leader) = self.inflight.get(&k) {
            return Lookup::Follower { leader };
        }
        Lookup::Miss
    }

    /// Register `leader` as the flight for `(api, key)`. Call only
    /// after [`CoalesceCache::lookup`] returned [`Lookup::Miss`] and
    /// the request passed the stages behind the cache.
    pub fn begin_flight(&mut self, api: ApiId, key: u64, leader: u64) {
        self.inflight.entry((api.0, key)).or_insert(leader);
    }

    /// The leader for `(api, key)` completed with `payload`: clear the
    /// flight and cache the response (evicting LRU if at capacity).
    pub fn complete_flight(&mut self, api: ApiId, key: u64, payload: Arc<str>, now: SimTime) {
        let k = (api.0, key);
        self.inflight.remove(&k);
        if self.capacity == 0 {
            return;
        }
        if !self.entries.contains_key(&k) && self.entries.len() >= self.capacity {
            // Evict the least-recently-touched entry. Touch ticks are
            // unique, so the minimum is well-defined regardless of map
            // iteration order.
            if let Some(&victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.touched)
                .map(|(k, _)| k)
            {
                self.entries.remove(&victim);
            }
        }
        self.tick += 1;
        self.entries.insert(
            k,
            Entry {
                payload,
                stored_at: now,
                touched: self.tick,
            },
        );
    }

    /// The leader for `(api, key)` failed: clear the flight without
    /// caching anything, so parked followers fail fast and the next
    /// arrival leads a fresh flight.
    pub fn fail_flight(&mut self, api: ApiId, key: u64) {
        self.inflight.remove(&(api.0, key));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn hit(l: &Lookup) -> Option<&str> {
        match l {
            Lookup::Hit(p) => Some(p),
            _ => None,
        }
    }

    #[test]
    fn miss_then_flight_then_hit() {
        let mut c = CoalesceCache::new(8, SimDuration::from_secs(10));
        assert!(matches!(c.lookup(ApiId(0), 7, t(0)), Lookup::Miss));
        c.begin_flight(ApiId(0), 7, 41);
        match c.lookup(ApiId(0), 7, t(0)) {
            Lookup::Follower { leader } => assert_eq!(leader, 41),
            other => panic!("expected follower, got {other:?}"),
        }
        c.complete_flight(ApiId(0), 7, "payload".into(), t(1));
        assert_eq!(c.inflight(), 0);
        assert_eq!(hit(&c.lookup(ApiId(0), 7, t(2))), Some("payload"));
    }

    #[test]
    fn ttl_expires_entries_lazily() {
        let mut c = CoalesceCache::new(8, SimDuration::from_secs(5));
        c.complete_flight(ApiId(0), 1, "x".into(), t(0));
        assert!(hit(&c.lookup(ApiId(0), 1, t(4))).is_some());
        // Exactly at the TTL the entry is stale (fresh strictly within).
        assert!(matches!(c.lookup(ApiId(0), 1, t(5)), Lookup::Miss));
        assert!(c.is_empty(), "expired entry removed on lookup");
    }

    #[test]
    fn lru_eviction_prefers_least_recently_touched() {
        let mut c = CoalesceCache::new(2, SimDuration::from_secs(100));
        c.complete_flight(ApiId(0), 1, "a".into(), t(0));
        c.complete_flight(ApiId(0), 2, "b".into(), t(0));
        // Touch key 1 so key 2 is the LRU victim.
        assert!(hit(&c.lookup(ApiId(0), 1, t(1))).is_some());
        c.complete_flight(ApiId(0), 3, "c".into(), t(2));
        assert_eq!(c.len(), 2);
        assert!(hit(&c.lookup(ApiId(0), 1, t(3))).is_some(), "kept");
        assert!(
            matches!(c.lookup(ApiId(0), 2, t(3)), Lookup::Miss),
            "evicted"
        );
        assert!(hit(&c.lookup(ApiId(0), 3, t(3))).is_some(), "newest kept");
    }

    #[test]
    fn failed_flight_caches_nothing() {
        let mut c = CoalesceCache::new(8, SimDuration::from_secs(10));
        c.begin_flight(ApiId(2), 9, 5);
        c.fail_flight(ApiId(2), 9);
        assert!(matches!(c.lookup(ApiId(2), 9, t(1)), Lookup::Miss));
        assert_eq!(c.inflight(), 0);
    }

    #[test]
    fn keys_are_scoped_per_api() {
        let mut c = CoalesceCache::new(8, SimDuration::from_secs(10));
        c.complete_flight(ApiId(0), 1, "api0".into(), t(0));
        assert!(matches!(c.lookup(ApiId(1), 1, t(0)), Lookup::Miss));
        assert_eq!(hit(&c.lookup(ApiId(0), 1, t(0))), Some("api0"));
    }

    #[test]
    fn zero_capacity_disables_caching_but_not_single_flight() {
        let mut c = CoalesceCache::new(0, SimDuration::from_secs(10));
        c.begin_flight(ApiId(0), 1, 3);
        assert!(matches!(
            c.lookup(ApiId(0), 1, t(0)),
            Lookup::Follower { leader: 3 }
        ));
        c.complete_flight(ApiId(0), 1, "x".into(), t(0));
        assert!(matches!(c.lookup(ApiId(0), 1, t(0)), Lookup::Miss));
    }
}
