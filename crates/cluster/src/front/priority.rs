//! DAGOR-style priority admission at the front door.
//!
//! One gate guards the whole entry point (WeChat's per-service variant
//! lives in `baselines::dagor`; this is the *composable stage* in front
//! of TopFull's token bucket). Each request carries a composite level
//! `business · user_levels + user` (lower = more important) and the
//! gate admits levels strictly below an adaptive threshold. The
//! adaptation law is WeChat's: when overloaded, move the threshold so
//! the top α fraction of last window's *admitted* load is shed (always
//! progressing by at least one level); when healthy, extend it upward
//! through the *seen* histogram until ≈β of the load would be
//! re-admitted. The overload signal itself is external — both the
//! simulator and the live gateway derive it from the same
//! [`ClusterObservation`](crate::observe::ClusterObservation) queuing-
//! delay telemetry, which is what keeps the two planes bit-compatible.

use simnet::SimDuration;

/// Priority-gate tuning. Defaults mirror `baselines::dagor`.
#[derive(Clone, Copy, Debug)]
pub struct PriorityConfig {
    /// Number of business tiers; levels span `tiers × user_levels`.
    pub business_tiers: u32,
    /// User sub-levels per business tier.
    pub user_levels: u32,
    /// Fraction of last-window admitted load shed per overloaded tick.
    pub alpha: f64,
    /// Fraction of load re-admitted per healthy tick.
    pub beta: f64,
    /// Mean queuing delay above which the entry point counts as
    /// overloaded (WeChat uses ~20 ms).
    pub queuing_delay_threshold: SimDuration,
}

impl Default for PriorityConfig {
    fn default() -> Self {
        PriorityConfig {
            business_tiers: 8,
            user_levels: 128,
            alpha: 0.05,
            beta: 0.01,
            queuing_delay_threshold: SimDuration::from_millis(20),
        }
    }
}

/// One threshold adaptation step, for journaling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThresholdMove {
    pub from: u32,
    pub to: u32,
    /// Requests admitted by the gate in the window that drove the move.
    pub admitted: u64,
    /// Requests shed by the gate in that window.
    pub shed: u64,
    /// `"overload"` or `"recovery"`.
    pub reason: &'static str,
}

/// Adaptive priority-threshold gate. See module docs.
pub struct PriorityGate {
    cfg: PriorityConfig,
    levels: u32,
    /// Admit levels strictly below this threshold.
    threshold: u32,
    /// Histogram of levels seen (admitted + shed) this window.
    seen: Vec<u32>,
    /// Of which admitted.
    admitted: Vec<u32>,
}

impl PriorityGate {
    pub fn new(cfg: PriorityConfig) -> Self {
        let levels = (cfg.business_tiers.max(1)) * (cfg.user_levels.max(1));
        PriorityGate {
            cfg,
            levels,
            threshold: levels,
            seen: vec![0; levels as usize],
            admitted: vec![0; levels as usize],
        }
    }

    /// Composite level of a `(business, user)` pair, clamped into the
    /// configured level space. Lower = more important.
    pub fn level(&self, business: u8, user: u8) -> u32 {
        let tiers = self.cfg.business_tiers.max(1);
        let users = self.cfg.user_levels.max(1);
        u32::from(business).min(tiers - 1) * users + u32::from(user).min(users - 1)
    }

    /// Current admission threshold (levels strictly below it pass).
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Size of the level space.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    pub fn queuing_delay_threshold(&self) -> SimDuration {
        self.cfg.queuing_delay_threshold
    }

    /// Admit or shed one request at `level`, recording it in the
    /// window histograms either way.
    pub fn admit(&mut self, level: u32) -> bool {
        let level = level.min(self.levels - 1);
        self.seen[level as usize] += 1;
        let ok = level < self.threshold;
        if ok {
            self.admitted[level as usize] += 1;
        }
        ok
    }

    /// Close the window and adapt the threshold to the external
    /// `overloaded` signal. Returns the move when the threshold
    /// changed. The window histograms are cleared either way.
    pub fn adapt(&mut self, overloaded: bool) -> Option<ThresholdMove> {
        let admitted_total: u64 = self.admitted.iter().map(|c| u64::from(*c)).sum();
        let seen_total: u64 = self.seen.iter().map(|c| u64::from(*c)).sum();
        let shed_total = seen_total - admitted_total;
        let from = self.threshold;
        let mut reason = "overload";
        if overloaded {
            if admitted_total > 0 {
                // Shed the top α fraction of last window's admitted
                // load: walk levels ascending until (1-α) is covered.
                let keep = (admitted_total as f64 * (1.0 - self.cfg.alpha)) as u64;
                let mut acc = 0u64;
                let mut new_th = 0u32;
                for (lvl, c) in self.admitted.iter().enumerate() {
                    if acc >= keep {
                        break;
                    }
                    acc += u64::from(*c);
                    new_th = lvl as u32 + 1;
                }
                // Always make progress by at least one level.
                self.threshold = new_th.min(self.threshold.saturating_sub(1));
            } else {
                self.threshold = self.threshold.saturating_sub(1);
            }
        } else if self.threshold < self.levels {
            // Re-admit ≈β of the load: extend the threshold upward
            // through the seen histogram (at least one level, so
            // recovery always proceeds).
            reason = "recovery";
            let extra_target = ((admitted_total as f64 * self.cfg.beta) as u64).max(1);
            let mut acc = 0u64;
            let mut th = self.threshold;
            while th < self.levels {
                acc += u64::from(self.seen[th as usize]);
                th += 1;
                if acc >= extra_target {
                    break;
                }
            }
            self.threshold = th;
        }
        self.seen.iter_mut().for_each(|c| *c = 0);
        self.admitted.iter_mut().for_each(|c| *c = 0);
        (self.threshold != from).then_some(ThresholdMove {
            from,
            to: self.threshold,
            admitted: admitted_total,
            shed: shed_total,
            reason,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn gate() -> PriorityGate {
        PriorityGate::new(PriorityConfig::default())
    }

    /// Offer `n` uniform-user requests of one business tier.
    fn offer(g: &mut PriorityGate, business: u8, n: u32, rng: &mut impl Rng) -> u32 {
        let mut admitted = 0;
        for _ in 0..n {
            let level = g.level(business, rng.gen_range(0..=127));
            if g.admit(level) {
                admitted += 1;
            }
        }
        admitted
    }

    #[test]
    fn admits_everything_initially() {
        let mut g = gate();
        let top = g.level(7, 127);
        assert!(g.admit(top));
    }

    #[test]
    fn level_orders_business_before_user_and_clamps() {
        let g = gate();
        assert!(g.level(0, 127) < g.level(1, 0));
        assert_eq!(g.level(200, 200), g.levels() - 1);
    }

    #[test]
    fn overload_sheds_alpha_fraction_and_reports_the_move() {
        let mut g = gate();
        let mut rng = simnet::rng::fork(1, "t");
        offer(&mut g, 0, 10_000, &mut rng);
        let mv = g.adapt(true).expect("threshold must move under overload");
        assert_eq!(mv.from, g.levels());
        assert_eq!(mv.reason, "overload");
        assert_eq!(mv.admitted, 10_000);
        assert!(mv.to < 128, "cut into the occupied tier, got {}", mv.to);
        let admitted = offer(&mut g, 0, 10_000, &mut rng);
        let frac = f64::from(admitted) / 10_000.0;
        assert!(
            (0.92..=0.98).contains(&frac),
            "≈95% admitted after one α=0.05 cut, got {frac}"
        );
    }

    #[test]
    fn recovery_climbs_back_and_caps_at_full_open() {
        let mut g = gate();
        let mut rng = simnet::rng::fork(2, "t");
        for _ in 0..20 {
            offer(&mut g, 0, 5_000, &mut rng);
            g.adapt(true);
        }
        let low = g.threshold();
        for _ in 0..300 {
            offer(&mut g, 0, 5_000, &mut rng);
            if let Some(mv) = g.adapt(false) {
                assert_eq!(mv.reason, "recovery");
                assert!(mv.to > mv.from);
            }
        }
        assert!(g.threshold() > low, "recovers: {low} → {}", g.threshold());
        assert!(g.threshold() <= g.levels());
    }

    #[test]
    fn sheds_low_business_priority_first() {
        let mut g = gate();
        let mut rng = simnet::rng::fork(3, "t");
        for _ in 0..30 {
            offer(&mut g, 0, 2_000, &mut rng);
            offer(&mut g, 5, 2_000, &mut rng);
            g.adapt(true);
        }
        let high = offer(&mut g, 0, 1_000, &mut rng);
        let low = offer(&mut g, 5, 1_000, &mut rng);
        assert!(high > 0, "high priority still partially admitted");
        assert_eq!(low, 0, "low priority fully shed first");
    }

    #[test]
    fn stable_when_healthy_and_fully_open() {
        let mut g = gate();
        let mut rng = simnet::rng::fork(4, "t");
        offer(&mut g, 0, 1_000, &mut rng);
        assert!(g.adapt(false).is_none(), "no move when already open");
    }

    #[test]
    fn shed_count_reaches_the_move_report() {
        let mut g = gate();
        let mut rng = simnet::rng::fork(5, "t");
        offer(&mut g, 0, 4_000, &mut rng);
        g.adapt(true);
        let admitted = offer(&mut g, 0, 4_000, &mut rng);
        let mv = g.adapt(true).expect("second cut");
        assert_eq!(mv.admitted, u64::from(admitted));
        assert_eq!(mv.shed, u64::from(4_000 - admitted));
    }
}
