//! Application topology: services, external APIs, and execution paths.
//!
//! A [`Topology`] is the static description the paper's tracing collector
//! would learn from Istio: which services exist, which external APIs the
//! application exposes, and the call tree(s) each API executes. Branching
//! APIs (§4.2 "APIs with branching execution paths") carry several weighted
//! trees; for clustering purposes an API is considered to *touch* every
//! service on any of its possible paths.

use crate::types::{ApiId, BusinessPriority, ServiceId};
use serde::{Deserialize, Serialize};
use simnet::SimDuration;

/// One node of an execution path: process `cost` of CPU time at `service`,
/// then invoke all `children` in parallel and wait for them.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CallNode {
    pub service: ServiceId,
    /// CPU time this call consumes on one pod of `service` (before jitter).
    pub cost: SimDuration,
    pub children: Vec<CallNode>,
}

impl CallNode {
    /// Leaf call with no downstream fan-out.
    pub fn leaf(service: ServiceId, cost: SimDuration) -> Self {
        CallNode {
            service,
            cost,
            children: Vec::new(),
        }
    }

    /// Internal call fanning out to `children`.
    pub fn with_children(service: ServiceId, cost: SimDuration, children: Vec<CallNode>) -> Self {
        CallNode {
            service,
            cost,
            children,
        }
    }

    /// Number of calls in the subtree (including this node).
    pub fn len(&self) -> usize {
        1 + self.children.iter().map(CallNode::len).sum::<usize>()
    }

    /// Always false: a call tree has at least its root.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Visit every node in the subtree, parents before children.
    pub fn visit(&self, f: &mut impl FnMut(&CallNode)) {
        f(self);
        for c in &self.children {
            c.visit(f);
        }
    }

    fn collect_services(&self, out: &mut Vec<ServiceId>) {
        self.visit(&mut |n| {
            if !out.contains(&n.service) {
                out.push(n.service);
            }
        });
    }
}

/// A service (microservice) definition.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServiceSpec {
    pub name: String,
    /// Initial pod count.
    pub replicas: u32,
    /// Per-pod queue bound; calls arriving at a full pod fail the request.
    pub queue_capacity: u32,
    /// Relative processing speed of a pod (1.0 = costs taken literally).
    pub pod_speed: f64,
    /// Whether sustained pod saturation crash-loops the pod (models
    /// liveness/readiness-probe failures, §6.3 Online Boutique).
    pub crash_on_overload: bool,
}

impl ServiceSpec {
    /// A service with sensible defaults: given replicas, queue bound 2048,
    /// unit speed, no crash-looping.
    pub fn new(name: impl Into<String>, replicas: u32) -> Self {
        ServiceSpec {
            name: name.into(),
            replicas: replicas.max(1),
            queue_capacity: 2048,
            pod_speed: 1.0,
            crash_on_overload: false,
        }
    }

    /// Builder: set the per-pod queue bound.
    pub fn queue_capacity(mut self, cap: u32) -> Self {
        self.queue_capacity = cap.max(1);
        self
    }

    /// Builder: enable the overload crash-loop model.
    pub fn crash_on_overload(mut self) -> Self {
        self.crash_on_overload = true;
        self
    }

    /// Builder: set the relative pod speed.
    pub fn pod_speed(mut self, speed: f64) -> Self {
        self.pod_speed = speed.max(1e-6);
        self
    }
}

/// An external API definition.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ApiSpec {
    pub name: String,
    pub business: BusinessPriority,
    /// Weighted alternative execution paths; a single entry means the API
    /// does not branch. Weights need not be normalized.
    pub paths: Vec<(f64, CallNode)>,
}

impl ApiSpec {
    /// An API with a single execution path.
    pub fn single(name: impl Into<String>, root: CallNode) -> Self {
        ApiSpec {
            name: name.into(),
            business: BusinessPriority::default(),
            paths: vec![(1.0, root)],
        }
    }

    /// An API with weighted branching paths.
    pub fn branching(name: impl Into<String>, paths: Vec<(f64, CallNode)>) -> Self {
        assert!(!paths.is_empty(), "API must have at least one path");
        ApiSpec {
            name: name.into(),
            business: BusinessPriority::default(),
            paths,
        }
    }

    /// Builder: assign a business priority (lower = more important).
    pub fn business(mut self, p: BusinessPriority) -> Self {
        self.business = p;
        self
    }

    /// All services on *any* possible path, deduplicated, in first-visit
    /// order. Branching APIs count every branch (§4.2).
    pub fn touched_services(&self) -> Vec<ServiceId> {
        let mut out = Vec::new();
        for (_, root) in &self.paths {
            root.collect_services(&mut out);
        }
        out
    }
}

/// A full application topology.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Topology {
    pub name: String,
    services: Vec<ServiceSpec>,
    apis: Vec<ApiSpec>,
}

impl Topology {
    /// An empty topology with a name.
    pub fn new(name: impl Into<String>) -> Self {
        Topology {
            name: name.into(),
            services: Vec::new(),
            apis: Vec::new(),
        }
    }

    /// Add a service, returning its id.
    pub fn add_service(&mut self, spec: ServiceSpec) -> ServiceId {
        let id = ServiceId(self.services.len() as u32);
        self.services.push(spec);
        id
    }

    /// Add an external API, returning its id.
    ///
    /// Panics if any path references an unknown service.
    pub fn add_api(&mut self, spec: ApiSpec) -> ApiId {
        for s in spec.touched_services() {
            assert!(
                s.idx() < self.services.len(),
                "API {} references unknown {s}",
                spec.name
            );
        }
        let id = ApiId(self.apis.len() as u32);
        self.apis.push(spec);
        id
    }

    /// Number of services.
    pub fn num_services(&self) -> usize {
        self.services.len()
    }

    /// Number of external APIs.
    pub fn num_apis(&self) -> usize {
        self.apis.len()
    }

    /// Service definition by id.
    pub fn service(&self, id: ServiceId) -> &ServiceSpec {
        &self.services[id.idx()]
    }

    /// API definition by id.
    pub fn api(&self, id: ApiId) -> &ApiSpec {
        &self.apis[id.idx()]
    }

    /// Mutable service definition (e.g. to resize replicas for an
    /// experiment before building an engine).
    pub fn service_mut(&mut self, id: ServiceId) -> &mut ServiceSpec {
        &mut self.services[id.idx()]
    }

    /// Mutable API definition (e.g. to reassign business priorities).
    pub fn api_mut(&mut self, id: ApiId) -> &mut ApiSpec {
        &mut self.apis[id.idx()]
    }

    /// All services.
    pub fn services(&self) -> impl Iterator<Item = (ServiceId, &ServiceSpec)> {
        self.services
            .iter()
            .enumerate()
            .map(|(i, s)| (ServiceId(i as u32), s))
    }

    /// All APIs.
    pub fn apis(&self) -> impl Iterator<Item = (ApiId, &ApiSpec)> {
        self.apis
            .iter()
            .enumerate()
            .map(|(i, a)| (ApiId(i as u32), a))
    }

    /// Look up a service id by name.
    pub fn service_by_name(&self, name: &str) -> Option<ServiceId> {
        self.services
            .iter()
            .position(|s| s.name == name)
            .map(|i| ServiceId(i as u32))
    }

    /// Look up an API id by name.
    pub fn api_by_name(&self, name: &str) -> Option<ApiId> {
        self.apis
            .iter()
            .position(|a| a.name == name)
            .map(|i| ApiId(i as u32))
    }

    /// The execution-path map the tracing collector exports: for each API,
    /// the set of services on any of its possible paths.
    pub fn api_service_map(&self) -> Vec<Vec<ServiceId>> {
        self.apis.iter().map(ApiSpec::touched_services).collect()
    }

    /// For each service, the set of APIs whose (possible) paths include it.
    pub fn service_api_map(&self) -> Vec<Vec<ApiId>> {
        let mut out = vec![Vec::new(); self.services.len()];
        for (i, api) in self.apis.iter().enumerate() {
            for s in api.touched_services() {
                out[s.idx()].push(ApiId(i as u32));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    fn two_service_topo() -> (Topology, ServiceId, ServiceId, ApiId, ApiId) {
        // Figure 1 topology: API1 → {A, B}; API2 → {A}.
        let mut t = Topology::new("fig1");
        let a = t.add_service(ServiceSpec::new("A", 4));
        let b = t.add_service(ServiceSpec::new("B", 2));
        let api1 = t.add_api(ApiSpec::single(
            "api1",
            CallNode::with_children(a, ms(1), vec![CallNode::leaf(b, ms(1))]),
        ));
        let api2 = t.add_api(ApiSpec::single("api2", CallNode::leaf(a, ms(1))));
        (t, a, b, api1, api2)
    }

    #[test]
    fn touched_services_dedup_and_order() {
        let (t, a, b, api1, api2) = two_service_topo();
        assert_eq!(t.api(api1).touched_services(), vec![a, b]);
        assert_eq!(t.api(api2).touched_services(), vec![a]);
    }

    #[test]
    fn branching_api_touches_all_branches() {
        let mut t = Topology::new("branch");
        let a = t.add_service(ServiceSpec::new("A", 1));
        let b = t.add_service(ServiceSpec::new("B", 1));
        let c = t.add_service(ServiceSpec::new("C", 1));
        let api = t.add_api(ApiSpec::branching(
            "br",
            vec![
                (
                    0.7,
                    CallNode::with_children(a, ms(1), vec![CallNode::leaf(b, ms(1))]),
                ),
                (
                    0.3,
                    CallNode::with_children(a, ms(1), vec![CallNode::leaf(c, ms(1))]),
                ),
            ],
        ));
        assert_eq!(t.api(api).touched_services(), vec![a, b, c]);
    }

    #[test]
    fn service_api_map_inverts_api_service_map() {
        let (t, a, b, api1, api2) = two_service_topo();
        let by_service = t.service_api_map();
        assert_eq!(by_service[a.idx()], vec![api1, api2]);
        assert_eq!(by_service[b.idx()], vec![api1]);
        let by_api = t.api_service_map();
        assert_eq!(by_api[api1.idx()], vec![a, b]);
    }

    #[test]
    fn lookup_by_name() {
        let (t, a, _, api1, _) = two_service_topo();
        assert_eq!(t.service_by_name("A"), Some(a));
        assert_eq!(t.api_by_name("api1"), Some(api1));
        assert_eq!(t.service_by_name("nope"), None);
    }

    #[test]
    fn call_tree_len_counts_nodes() {
        let (t, _, _, api1, _) = two_service_topo();
        assert_eq!(t.api(api1).paths[0].1.len(), 2);
    }

    #[test]
    #[should_panic(expected = "references unknown")]
    fn api_referencing_unknown_service_panics() {
        let mut t = Topology::new("bad");
        t.add_service(ServiceSpec::new("A", 1));
        t.add_api(ApiSpec::single("x", CallNode::leaf(ServiceId(9), ms(1))));
    }

    #[test]
    fn spec_builders_clamp() {
        let s = ServiceSpec::new("s", 0).queue_capacity(0).pod_speed(-1.0);
        assert_eq!(s.replicas, 1);
        assert_eq!(s.queue_capacity, 1);
        assert!(s.pod_speed > 0.0);
    }
}
