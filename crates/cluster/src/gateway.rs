//! Entry gateway: per-API token-bucket rate limiting.
//!
//! "The rate limiter is attached at the entry and performs load control
//! according to the given rate limit thresholds" (§5). Each external API
//! has its own token bucket; the controller moves the bucket rates, and
//! every arriving request either takes a token or is rejected at the door
//! (costing the cluster nothing — the whole point of top-down control).
//!
//! The limiter bank itself lives in [`crate::entry_admission`] and is
//! shared with the live TCP gateway (`liveserve`).

use crate::entry_admission::EntryAdmission;
use crate::types::ApiId;
use simnet::SimTime;

/// The entry gateway: one limiter per API.
///
/// A thin façade over [`EntryAdmission`], the limiter bank shared with
/// the live serving plane — admit/deny semantics live there so the
/// simulated and real gateways cannot drift.
pub struct Gateway {
    admission: EntryAdmission,
}

impl Gateway {
    /// A gateway for `num_apis` APIs, all initially unlimited.
    ///
    /// `burst_secs` sets bucket depth = `rate × burst_secs` (clamped to at
    /// least 1 token for positive rates; a rate of exactly 0 gets depth
    /// 0); the paper's 1-second control cadence makes ~50 ms of burst a
    /// reasonable default.
    pub fn new(num_apis: usize, burst_secs: f64) -> Self {
        Gateway {
            admission: EntryAdmission::new(num_apis, burst_secs),
        }
    }

    /// Current rate limit for `api` (`f64::INFINITY` when unlimited).
    pub fn rate_limit(&self, api: ApiId) -> f64 {
        self.admission.rate_limit(api)
    }

    /// Set the rate limit for `api` at time `now`. `f64::INFINITY` (or any
    /// non-finite value) removes the limit; zero (and negative rates,
    /// which clamp to zero) admits nothing at all — the bucket depth is
    /// forced to 0 so not even a burst token leaks through.
    pub fn set_rate_limit(&mut self, api: ApiId, rate: f64, now: SimTime) {
        self.admission.set_rate_limit(api, rate, now);
    }

    /// Admit or reject one request for `api` arriving at `now`.
    pub fn try_admit(&mut self, api: ApiId, now: SimTime) -> bool {
        self.admission.try_admit(api, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry_admission::EntryAdmission;
    use simnet::SimDuration;

    #[test]
    fn unlimited_by_default() {
        let mut g = Gateway::new(2, 0.05);
        assert!(g.rate_limit(ApiId(0)).is_infinite());
        for i in 0..10_000 {
            assert!(g.try_admit(ApiId(0), SimTime::from_nanos(i)));
        }
    }

    #[test]
    fn limit_caps_admitted_rate() {
        let mut g = Gateway::new(1, 0.05);
        g.set_rate_limit(ApiId(0), 100.0, SimTime::ZERO);
        let mut admitted = 0;
        // Offer 1000 rps for 2 s.
        for ms in 0..2000u64 {
            if g.try_admit(ApiId(0), SimTime::from_millis(ms)) {
                admitted += 1;
            }
        }
        assert!(
            (195..=215).contains(&admitted),
            "expected ≈200 admits at 100 rps over 2 s, got {admitted}"
        );
    }

    #[test]
    fn removing_limit_restores_unlimited() {
        let mut g = Gateway::new(1, 0.05);
        g.set_rate_limit(ApiId(0), 1.0, SimTime::ZERO);
        assert!(g.try_admit(ApiId(0), SimTime::ZERO));
        assert!(!g.try_admit(ApiId(0), SimTime::ZERO));
        g.set_rate_limit(ApiId(0), f64::INFINITY, SimTime::ZERO);
        assert!(g.rate_limit(ApiId(0)).is_infinite());
        assert!(g.try_admit(ApiId(0), SimTime::ZERO));
    }

    #[test]
    fn zero_rate_admits_nothing_at_all() {
        let mut g = Gateway::new(1, 0.05);
        g.set_rate_limit(ApiId(0), 0.0, SimTime::ZERO);
        // No burst token leaks through a "zero" limit: not even the
        // first request is admitted, ever.
        assert!(!g.try_admit(ApiId(0), SimTime::ZERO));
        let later = SimTime::ZERO + SimDuration::from_secs(100);
        assert!(!g.try_admit(ApiId(0), later));
        // Restoring a positive rate brings back at least one burst token.
        g.set_rate_limit(ApiId(0), 1.0, later);
        assert!(g.try_admit(ApiId(0), later + SimDuration::from_secs(1)));
    }

    #[test]
    fn tiny_positive_rate_still_keeps_one_burst_token() {
        let mut g = Gateway::new(1, 0.05);
        g.set_rate_limit(ApiId(0), 0.01, SimTime::ZERO);
        // Positive rates keep the ≥1-token depth clamp so they can
        // always eventually admit.
        assert!(g.try_admit(ApiId(0), SimTime::ZERO));
        assert!(!g.try_admit(ApiId(0), SimTime::ZERO));
    }

    #[test]
    fn per_api_limits_are_independent() {
        let mut g = Gateway::new(2, 0.05);
        g.set_rate_limit(ApiId(0), 0.0, SimTime::ZERO);
        assert!(!g.try_admit(ApiId(0), SimTime::ZERO));
        assert!(!g.try_admit(ApiId(0), SimTime::from_secs(1)));
        assert!(g.try_admit(ApiId(1), SimTime::from_secs(1)));
    }

    /// Sim/live parity: the gateway façade and a bare [`EntryAdmission`]
    /// (what the live TCP gateway holds) must make identical decisions
    /// for an identical program of limit changes and arrivals.
    #[test]
    fn gateway_and_entry_admission_decide_identically() {
        let mut g = Gateway::new(2, 0.05);
        let mut a = EntryAdmission::new(2, 0.05);
        // A deterministic pseudo-random schedule of limit changes and
        // arrivals across both APIs, covering unlimited → finite → zero →
        // restored transitions.
        let mut x: u64 = 0x9e3779b97f4a7c15;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut now_ns: u64 = 0;
        for i in 0..5_000u64 {
            now_ns += step() % 3_000_000; // ≤3 ms between events
            let now = SimTime::from_nanos(now_ns);
            let api = ApiId((step() % 2) as u32);
            if i % 97 == 0 {
                let rate = match (step() % 4) as u8 {
                    0 => f64::INFINITY,
                    1 => 0.0,
                    2 => (step() % 500) as f64,
                    _ => (step() % 50) as f64 / 7.0,
                };
                g.set_rate_limit(api, rate, now);
                a.set_rate_limit(api, rate, now);
                assert_eq!(
                    g.rate_limit(api).to_bits(),
                    a.rate_limit(api).to_bits(),
                    "limit mirror diverged at step {i}"
                );
            }
            assert_eq!(
                g.try_admit(api, now),
                a.try_admit(api, now),
                "admit decision diverged at step {i} (t={now_ns}ns)"
            );
        }
    }
}
