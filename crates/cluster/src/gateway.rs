//! Entry gateway: per-API token-bucket rate limiting.
//!
//! "The rate limiter is attached at the entry and performs load control
//! according to the given rate limit thresholds" (§5). Each external API
//! has its own token bucket; the controller moves the bucket rates, and
//! every arriving request either takes a token or is rejected at the door
//! (costing the cluster nothing — the whole point of top-down control).

use crate::types::ApiId;
use simnet::{SimTime, TokenBucket};

/// Rate limit state for one API.
struct ApiLimiter {
    /// `None` = unlimited (no bucket consulted).
    bucket: Option<TokenBucket>,
    rate: f64,
}

/// The entry gateway: one limiter per API.
pub struct Gateway {
    limiters: Vec<ApiLimiter>,
    /// Burst size as a fraction of the rate (seconds of burst).
    burst_secs: f64,
}

impl Gateway {
    /// A gateway for `num_apis` APIs, all initially unlimited.
    ///
    /// `burst_secs` sets bucket depth = `rate × burst_secs` (clamped to at
    /// least 1 token for positive rates; a rate of exactly 0 gets depth
    /// 0); the paper's 1-second control cadence makes ~50 ms of burst a
    /// reasonable default.
    pub fn new(num_apis: usize, burst_secs: f64) -> Self {
        Gateway {
            limiters: (0..num_apis)
                .map(|_| ApiLimiter {
                    bucket: None,
                    rate: f64::INFINITY,
                })
                .collect(),
            burst_secs: burst_secs.max(1e-3),
        }
    }

    /// Current rate limit for `api` (`f64::INFINITY` when unlimited).
    pub fn rate_limit(&self, api: ApiId) -> f64 {
        self.limiters[api.idx()].rate
    }

    /// Set the rate limit for `api` at time `now`. `f64::INFINITY` (or any
    /// non-finite value) removes the limit; zero (and negative rates,
    /// which clamp to zero) admits nothing at all — the bucket depth is
    /// forced to 0 so not even a burst token leaks through.
    pub fn set_rate_limit(&mut self, api: ApiId, rate: f64, now: SimTime) {
        let lim = &mut self.limiters[api.idx()];
        if !rate.is_finite() {
            lim.bucket = None;
            lim.rate = f64::INFINITY;
            return;
        }
        let rate = rate.max(0.0);
        let burst = if rate > 0.0 {
            (rate * self.burst_secs).max(1.0)
        } else {
            0.0
        };
        match &mut lim.bucket {
            Some(b) => b.set_rate_and_burst(rate, burst, now),
            None => lim.bucket = Some(TokenBucket::new(rate, burst, now)),
        }
        lim.rate = rate;
    }

    /// Admit or reject one request for `api` arriving at `now`.
    pub fn try_admit(&mut self, api: ApiId, now: SimTime) -> bool {
        match &mut self.limiters[api.idx()].bucket {
            Some(b) => b.try_admit(now),
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::SimDuration;

    #[test]
    fn unlimited_by_default() {
        let mut g = Gateway::new(2, 0.05);
        assert!(g.rate_limit(ApiId(0)).is_infinite());
        for i in 0..10_000 {
            assert!(g.try_admit(ApiId(0), SimTime::from_nanos(i)));
        }
    }

    #[test]
    fn limit_caps_admitted_rate() {
        let mut g = Gateway::new(1, 0.05);
        g.set_rate_limit(ApiId(0), 100.0, SimTime::ZERO);
        let mut admitted = 0;
        // Offer 1000 rps for 2 s.
        for ms in 0..2000u64 {
            if g.try_admit(ApiId(0), SimTime::from_millis(ms)) {
                admitted += 1;
            }
        }
        assert!(
            (195..=215).contains(&admitted),
            "expected ≈200 admits at 100 rps over 2 s, got {admitted}"
        );
    }

    #[test]
    fn removing_limit_restores_unlimited() {
        let mut g = Gateway::new(1, 0.05);
        g.set_rate_limit(ApiId(0), 1.0, SimTime::ZERO);
        assert!(g.try_admit(ApiId(0), SimTime::ZERO));
        assert!(!g.try_admit(ApiId(0), SimTime::ZERO));
        g.set_rate_limit(ApiId(0), f64::INFINITY, SimTime::ZERO);
        assert!(g.rate_limit(ApiId(0)).is_infinite());
        assert!(g.try_admit(ApiId(0), SimTime::ZERO));
    }

    #[test]
    fn zero_rate_admits_nothing_at_all() {
        let mut g = Gateway::new(1, 0.05);
        g.set_rate_limit(ApiId(0), 0.0, SimTime::ZERO);
        // No burst token leaks through a "zero" limit: not even the
        // first request is admitted, ever.
        assert!(!g.try_admit(ApiId(0), SimTime::ZERO));
        let later = SimTime::ZERO + SimDuration::from_secs(100);
        assert!(!g.try_admit(ApiId(0), later));
        // Restoring a positive rate brings back at least one burst token.
        g.set_rate_limit(ApiId(0), 1.0, later);
        assert!(g.try_admit(ApiId(0), later + SimDuration::from_secs(1)));
    }

    #[test]
    fn tiny_positive_rate_still_keeps_one_burst_token() {
        let mut g = Gateway::new(1, 0.05);
        g.set_rate_limit(ApiId(0), 0.01, SimTime::ZERO);
        // Positive rates keep the ≥1-token depth clamp so they can
        // always eventually admit.
        assert!(g.try_admit(ApiId(0), SimTime::ZERO));
        assert!(!g.try_admit(ApiId(0), SimTime::ZERO));
    }

    #[test]
    fn per_api_limits_are_independent() {
        let mut g = Gateway::new(2, 0.05);
        g.set_rate_limit(ApiId(0), 0.0, SimTime::ZERO);
        assert!(!g.try_admit(ApiId(0), SimTime::ZERO));
        assert!(!g.try_admit(ApiId(0), SimTime::from_secs(1)));
        assert!(g.try_admit(ApiId(1), SimTime::from_secs(1)));
    }
}
