//! Workload generation: open-loop Poisson traffic and closed-loop users.
//!
//! The paper drives its testbed with Locust (§5): a population of users
//! each issuing ~1 request/s ("2600 Locust users invoking 1 request per
//! second", §6.1). [`ClosedLoopWorkload`] models that population —
//! each user issues a request, waits for the response (bounded by a client
//! timeout), then paces to its think time. [`OpenLoopWorkload`] offers
//! rate-scheduled Poisson arrivals, useful when the experiment wants an
//! arrival process that does not self-throttle under overload.

use crate::resilience::{RetryBudget, RetryBudgetConfig};
use crate::types::ApiId;
use rand::rngs::SmallRng;
use rand::Rng;
use rand_distr::{Distribution, Exp};
use serde::{Deserialize, Serialize};
use simnet::{SimDuration, SimTime};

/// One client request arriving at the gateway.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Arrival {
    pub at: SimTime,
    pub api: ApiId,
    /// Present for closed-loop arrivals: the issuing user and its request
    /// generation (for timeout deduplication).
    pub user: Option<UserRef>,
}

/// A closed-loop user reference carried through a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserRef {
    pub id: u32,
    /// Monotonic per-user request counter; a response or timeout only
    /// wakes the user if its generation matches the user's current one.
    pub gen: u64,
}

/// How a request concluded, from the client's point of view.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResponseKind {
    /// Completed within the SLO.
    Success,
    /// Completed, but late (SLO violated).
    Late,
    /// Failed inside the cluster (shed, dropped, crashed).
    Failed,
    /// The client's own timeout fired first.
    Timeout,
}

impl ResponseKind {
    /// What a naive retrying client would retry on.
    pub fn is_retryable(self) -> bool {
        !matches!(self, ResponseKind::Success)
    }
}

/// A workload plugged into the engine.
///
/// The engine calls [`Workload::on_tick`] at `t = 0` and then every
/// [`Workload::tick_interval`]; ticks may emit arrivals (open loop
/// generates a whole interval's worth; closed loop adjusts its user
/// population). Responses and client timeouts call
/// [`Workload::on_response`], which may emit follow-up arrivals.
pub trait Workload: Send {
    /// Periodic driver; returns arrivals with `at` in
    /// `[now, now + tick_interval)`.
    fn on_tick(&mut self, now: SimTime, rng: &mut SmallRng) -> Vec<Arrival>;

    /// A response (or client timeout) for `user`'s request generation
    /// arrived at `now`; returns any follow-up arrivals. `kind` lets
    /// retry-aware clients distinguish failures from successes.
    fn on_response(
        &mut self,
        user: UserRef,
        kind: ResponseKind,
        now: SimTime,
        rng: &mut SmallRng,
    ) -> Vec<Arrival>;

    /// How often `on_tick` should run.
    fn tick_interval(&self) -> SimDuration {
        SimDuration::from_secs(1)
    }

    /// Closed-loop client timeout: a user abandons a request after this
    /// long and issues its next one. `None` disables timeouts.
    fn client_timeout(&self) -> Option<SimDuration> {
        None
    }

    /// Cumulative `(retries_issued, retries_suppressed)` counters for
    /// retry-aware populations; the engine folds these into its
    /// resilience observability. Non-retrying workloads report zeros.
    fn retry_stats(&self) -> (u64, u64) {
        (0, 0)
    }
}

/// A piecewise-constant schedule: `(from, value)` steps, sorted by time.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RateSchedule {
    steps: Vec<(SimTime, f64)>,
}

impl RateSchedule {
    /// A constant schedule.
    pub fn constant(v: f64) -> Self {
        RateSchedule {
            steps: vec![(SimTime::ZERO, v)],
        }
    }

    /// Build from `(from, value)` steps; sorted internally.
    pub fn steps(mut steps: Vec<(SimTime, f64)>) -> Self {
        steps.sort_by_key(|(t, _)| *t);
        RateSchedule { steps }
    }

    /// Value in force at time `t` (0 before the first step).
    pub fn at(&self, t: SimTime) -> f64 {
        self.steps
            .iter()
            .rev()
            .find(|(from, _)| *from <= t)
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    }

    /// A surge: `base` rate, stepping to `peak` during `[from, until)`.
    pub fn surge(base: f64, peak: f64, from: SimTime, until: SimTime) -> Self {
        RateSchedule::steps(vec![(SimTime::ZERO, base), (from, peak), (until, base)])
    }

    /// A diurnal-style profile: a sinusoid between `low` and `high` with
    /// the given period, discretized into per-`resolution` steps over
    /// `duration`. Useful for long-horizon autoscaler studies where load
    /// breathes instead of stepping.
    pub fn diurnal(
        low: f64,
        high: f64,
        period: SimDuration,
        duration: SimDuration,
        resolution: SimDuration,
    ) -> Self {
        assert!(!period.is_zero() && !resolution.is_zero());
        let mid = (low + high) / 2.0;
        let amp = (high - low) / 2.0;
        let mut steps = Vec::new();
        let mut t = SimDuration::ZERO;
        while t <= duration {
            let phase = 2.0 * std::f64::consts::PI * t.as_secs_f64() / period.as_secs_f64();
            // Start at the trough so runs warm up gently.
            let v = mid - amp * phase.cos();
            steps.push((SimTime::ZERO + t, v.max(0.0)));
            t += resolution;
        }
        RateSchedule::steps(steps)
    }
}

/// Open-loop Poisson arrivals per API, with per-API rate schedules.
///
/// Each tick generates the whole next interval's arrivals at the rate in
/// force at the start of the interval, so rate steps take effect within
/// one tick.
pub struct OpenLoopWorkload {
    schedules: Vec<(ApiId, RateSchedule)>,
    tick: SimDuration,
}

impl OpenLoopWorkload {
    /// Poisson arrivals for each `(api, schedule)` pair.
    pub fn new(schedules: Vec<(ApiId, RateSchedule)>) -> Self {
        OpenLoopWorkload {
            schedules,
            tick: SimDuration::from_secs(1),
        }
    }

    /// Constant-rate convenience constructor.
    pub fn constant(rates: Vec<(ApiId, f64)>) -> Self {
        Self::new(
            rates
                .into_iter()
                .map(|(api, r)| (api, RateSchedule::constant(r)))
                .collect(),
        )
    }
}

impl Workload for OpenLoopWorkload {
    fn on_tick(&mut self, now: SimTime, rng: &mut SmallRng) -> Vec<Arrival> {
        let mut out = Vec::new();
        let horizon = now + self.tick;
        for (api, sched) in &self.schedules {
            let rate = sched.at(now);
            if rate <= 0.0 {
                continue;
            }
            let exp = Exp::new(rate).expect("positive rate");
            let mut t = now;
            loop {
                t += SimDuration::from_secs_f64(exp.sample(rng));
                if t >= horizon {
                    break;
                }
                out.push(Arrival {
                    at: t,
                    api: *api,
                    user: None,
                });
            }
        }
        out
    }

    fn on_response(
        &mut self,
        _user: UserRef,
        _kind: ResponseKind,
        _now: SimTime,
        _rng: &mut SmallRng,
    ) -> Vec<Arrival> {
        Vec::new()
    }

    fn tick_interval(&self) -> SimDuration {
        self.tick
    }
}

/// State of one closed-loop user.
#[derive(Clone, Debug)]
struct UserState {
    active: bool,
    gen: u64,
    /// True while waiting for a response/timeout.
    waiting: bool,
    /// When the in-flight request was issued (for pacing).
    issued_at: SimTime,
}

/// A Locust-style closed-loop user population.
///
/// Each active user repeatedly: picks an API by weight, issues a request,
/// waits for its response (or the client timeout), then issues the next
/// request at `max(response_time, issued_at + think_time)` — i.e. a user
/// contributes at most `1 / think_time` requests per second, less when
/// responses are slow.
pub struct ClosedLoopWorkload {
    api_weights: Vec<(ApiId, f64)>,
    weight_total: f64,
    think: SimDuration,
    timeout: Option<SimDuration>,
    users_schedule: RateSchedule,
    users: Vec<UserState>,
}

impl ClosedLoopWorkload {
    /// A population following `users_schedule` (value = user count), each
    /// pacing to `think` and picking APIs by `api_weights`.
    pub fn new(
        api_weights: Vec<(ApiId, f64)>,
        users_schedule: RateSchedule,
        think: SimDuration,
    ) -> Self {
        assert!(!api_weights.is_empty(), "need at least one API");
        let weight_total: f64 = api_weights.iter().map(|(_, w)| *w).sum();
        assert!(weight_total > 0.0, "weights must sum positive");
        ClosedLoopWorkload {
            api_weights,
            weight_total,
            think: if think.is_zero() {
                SimDuration::from_millis(1)
            } else {
                think
            },
            timeout: Some(SimDuration::from_secs(10)),
            users_schedule,
            users: Vec::new(),
        }
    }

    /// A fixed-size population.
    pub fn fixed(api_weights: Vec<(ApiId, f64)>, users: u32, think: SimDuration) -> Self {
        Self::new(api_weights, RateSchedule::constant(f64::from(users)), think)
    }

    /// Builder: change (or disable) the client timeout.
    pub fn timeout(mut self, t: Option<SimDuration>) -> Self {
        self.timeout = t;
        self
    }

    /// Number of currently active users.
    pub fn active_users(&self) -> usize {
        self.users.iter().filter(|u| u.active).count()
    }

    fn pick_api(&self, rng: &mut SmallRng) -> ApiId {
        let mut x: f64 = rng.gen::<f64>() * self.weight_total;
        for (api, w) in &self.api_weights {
            x -= w;
            if x <= 0.0 {
                return *api;
            }
        }
        self.api_weights.last().expect("non-empty").0
    }

    fn issue(&mut self, id: u32, at: SimTime, rng: &mut SmallRng) -> Arrival {
        let u = &mut self.users[id as usize];
        u.gen += 1;
        u.waiting = true;
        u.issued_at = at;
        let gen = u.gen;
        Arrival {
            at,
            api: self.pick_api(rng),
            user: Some(UserRef { id, gen }),
        }
    }
}

impl Workload for ClosedLoopWorkload {
    fn on_tick(&mut self, now: SimTime, rng: &mut SmallRng) -> Vec<Arrival> {
        let target = self.users_schedule.at(now).max(0.0) as usize;
        let mut out = Vec::new();
        // Grow: activate new users, staggering their first request across
        // the tick so arrival bursts don't synchronize.
        while self.users.iter().filter(|u| u.active).count() < target {
            // Reactivate a parked user if any, else create one.
            let id = match self.users.iter().position(|u| !u.active) {
                Some(i) => i as u32,
                None => {
                    self.users.push(UserState {
                        active: false,
                        gen: 0,
                        waiting: false,
                        issued_at: SimTime::ZERO,
                    });
                    (self.users.len() - 1) as u32
                }
            };
            self.users[id as usize].active = true;
            let jitter =
                SimDuration::from_secs_f64(rng.gen::<f64>() * self.tick_interval().as_secs_f64());
            out.push(self.issue(id, now + jitter, rng));
        }
        // Shrink: park surplus users; in-flight requests are ignored on
        // completion because the user is inactive.
        let mut active: Vec<usize> = self
            .users
            .iter()
            .enumerate()
            .filter(|(_, u)| u.active)
            .map(|(i, _)| i)
            .collect();
        while active.len() > target {
            let i = active.pop().expect("non-empty");
            self.users[i].active = false;
        }
        out
    }

    fn on_response(
        &mut self,
        user: UserRef,
        _kind: ResponseKind,
        now: SimTime,
        rng: &mut SmallRng,
    ) -> Vec<Arrival> {
        let Some(u) = self.users.get(user.id as usize) else {
            return Vec::new();
        };
        // Stale generation (already timed out) or parked user: ignore.
        if !u.active || u.gen != user.gen || !u.waiting {
            return Vec::new();
        }
        let pace_at = (u.issued_at + self.think).max(now);
        self.users[user.id as usize].waiting = false;
        vec![self.issue(user.id, pace_at, rng)]
    }

    fn client_timeout(&self) -> Option<SimDuration> {
        self.timeout
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn rate_schedule_steps() {
        let s = RateSchedule::surge(100.0, 500.0, SimTime::from_secs(10), SimTime::from_secs(20));
        assert_eq!(s.at(SimTime::ZERO), 100.0);
        assert_eq!(s.at(SimTime::from_secs(10)), 500.0);
        assert_eq!(s.at(SimTime::from_secs(19)), 500.0);
        assert_eq!(s.at(SimTime::from_secs(20)), 100.0);
    }

    #[test]
    fn diurnal_profile_breathes_between_bounds() {
        let s = RateSchedule::diurnal(
            100.0,
            500.0,
            SimDuration::from_secs(100),
            SimDuration::from_secs(200),
            SimDuration::from_secs(1),
        );
        // Trough at t=0, peak at half period, trough again at the period.
        assert!((s.at(SimTime::ZERO) - 100.0).abs() < 1.0);
        assert!((s.at(SimTime::from_secs(50)) - 500.0).abs() < 1.0);
        assert!((s.at(SimTime::from_secs(100)) - 100.0).abs() < 1.0);
        // Never outside the bounds.
        for t in 0..200u64 {
            let v = s.at(SimTime::from_secs(t));
            assert!((99.0..=501.0).contains(&v), "t={t} v={v}");
        }
    }

    #[test]
    fn rate_schedule_before_first_step_is_zero() {
        let s = RateSchedule::steps(vec![(SimTime::from_secs(5), 10.0)]);
        assert_eq!(s.at(SimTime::ZERO), 0.0);
        assert_eq!(s.at(SimTime::from_secs(5)), 10.0);
    }

    #[test]
    fn open_loop_mean_rate_matches_schedule() {
        let mut w = OpenLoopWorkload::constant(vec![(ApiId(0), 200.0)]);
        let mut r = rng();
        let mut count = 0usize;
        for s in 0..50u64 {
            let arrivals = w.on_tick(SimTime::from_secs(s), &mut r);
            for a in &arrivals {
                assert!(a.at >= SimTime::from_secs(s));
                assert!(a.at < SimTime::from_secs(s + 1));
                assert_eq!(a.api, ApiId(0));
            }
            count += arrivals.len();
        }
        let mean = count as f64 / 50.0;
        assert!(
            (185.0..215.0).contains(&mean),
            "Poisson mean ≈200 rps, got {mean}"
        );
    }

    #[test]
    fn open_loop_zero_rate_emits_nothing() {
        let mut w = OpenLoopWorkload::constant(vec![(ApiId(0), 0.0)]);
        assert!(w.on_tick(SimTime::ZERO, &mut rng()).is_empty());
    }

    #[test]
    fn closed_loop_spawns_to_target() {
        let mut w = ClosedLoopWorkload::fixed(vec![(ApiId(0), 1.0)], 10, SimDuration::from_secs(1));
        let arrivals = w.on_tick(SimTime::ZERO, &mut rng());
        assert_eq!(arrivals.len(), 10);
        assert_eq!(w.active_users(), 10);
        // Second tick: everyone is in flight, no new arrivals.
        assert!(w.on_tick(SimTime::from_secs(1), &mut rng()).is_empty());
    }

    #[test]
    fn closed_loop_user_paces_to_think_time() {
        let mut w = ClosedLoopWorkload::fixed(vec![(ApiId(0), 1.0)], 1, SimDuration::from_secs(1));
        let mut r = rng();
        let first = w.on_tick(SimTime::ZERO, &mut r)[0];
        let user = first.user.unwrap();
        // Fast response (100 ms): next request waits until think time.
        let next = w.on_response(
            user,
            ResponseKind::Success,
            first.at + SimDuration::from_millis(100),
            &mut r,
        );
        assert_eq!(next.len(), 1);
        assert_eq!(next[0].at, first.at + SimDuration::from_secs(1));
        // Slow response (3 s): next request issues immediately.
        let user2 = next[0].user.unwrap();
        let slow_done = next[0].at + SimDuration::from_secs(3);
        let next2 = w.on_response(user2, ResponseKind::Late, slow_done, &mut r);
        assert_eq!(next2[0].at, slow_done);
    }

    #[test]
    fn closed_loop_ignores_stale_generation() {
        let mut w = ClosedLoopWorkload::fixed(vec![(ApiId(0), 1.0)], 1, SimDuration::from_secs(1));
        let mut r = rng();
        let first = w.on_tick(SimTime::ZERO, &mut r)[0];
        let user = first.user.unwrap();
        let next = w.on_response(
            user,
            ResponseKind::Success,
            first.at + SimDuration::from_millis(10),
            &mut r,
        );
        assert_eq!(next.len(), 1);
        // The old generation responds again (e.g. timeout raced response).
        assert!(w
            .on_response(user, ResponseKind::Timeout, SimTime::from_secs(9), &mut r)
            .is_empty());
    }

    #[test]
    fn closed_loop_shrinks_population() {
        let sched = RateSchedule::steps(vec![(SimTime::ZERO, 5.0), (SimTime::from_secs(10), 2.0)]);
        let mut w =
            ClosedLoopWorkload::new(vec![(ApiId(0), 1.0)], sched, SimDuration::from_secs(1));
        let mut r = rng();
        w.on_tick(SimTime::ZERO, &mut r);
        assert_eq!(w.active_users(), 5);
        w.on_tick(SimTime::from_secs(10), &mut r);
        assert_eq!(w.active_users(), 2);
    }

    #[test]
    fn closed_loop_api_weights_respected() {
        let mut w = ClosedLoopWorkload::fixed(
            vec![(ApiId(0), 9.0), (ApiId(1), 1.0)],
            1000,
            SimDuration::from_secs(1),
        );
        let arrivals = w.on_tick(SimTime::ZERO, &mut rng());
        let a0 = arrivals.iter().filter(|a| a.api == ApiId(0)).count();
        assert!(
            (850..=950).contains(&a0),
            "≈90% of 1000 arrivals on api0, got {a0}"
        );
    }
}

/// A misbehaving closed-loop population that **retries failures
/// immediately** — the "retry storm" overload amplifier from the paper's
/// introduction ("unexpected load caused by … retry storm by misbehaving
/// clients", §1).
///
/// Each user paces successful requests to its think time like
/// [`ClosedLoopWorkload`], but a failed/late/timed-out request is
/// reissued after only `retry_backoff`, up to `max_retries` times per
/// logical operation. Under overload this multiplies the offered load by
/// up to `1 + max_retries`, which is exactly the positive feedback loop
/// an overload controller has to break.
pub struct RetryStormWorkload {
    inner: ClosedLoopWorkload,
    /// Retries per logical operation before giving up.
    max_retries: u32,
    /// Delay before a retry (misbehaving clients use ~0).
    retry_backoff: SimDuration,
    /// Outstanding retry budget per user id.
    budget: Vec<u32>,
    /// Optional shared adaptive budget across the population
    /// (gRPC/Finagle-style, [`crate::resilience::RetryBudget`]): retries
    /// spend from a bucket only successes refill, so a storm
    /// self-extinguishes instead of amplifying shed load.
    adaptive: Option<RetryBudget>,
    /// Total retries issued (observability for experiments).
    retries_issued: u64,
    /// Retries the adaptive budget refused.
    retries_suppressed: u64,
}

impl RetryStormWorkload {
    /// Wrap a fixed population with a retry policy.
    pub fn new(
        api_weights: Vec<(ApiId, f64)>,
        users: u32,
        think: SimDuration,
        max_retries: u32,
        retry_backoff: SimDuration,
    ) -> Self {
        RetryStormWorkload {
            inner: ClosedLoopWorkload::fixed(api_weights, users, think),
            max_retries,
            retry_backoff,
            budget: Vec::new(),
            adaptive: None,
            retries_issued: 0,
            retries_suppressed: 0,
        }
    }

    /// Builder: bound the whole population by a shared adaptive retry
    /// budget. Suppressed retries fall back to normal think-time pacing.
    pub fn with_retry_budget(mut self, cfg: RetryBudgetConfig) -> Self {
        self.adaptive = Some(RetryBudget::new(cfg));
        self
    }

    /// Total retries issued so far.
    pub fn retries_issued(&self) -> u64 {
        self.retries_issued
    }

    /// Retries the adaptive budget suppressed so far.
    pub fn retries_suppressed(&self) -> u64 {
        self.retries_suppressed
    }

    fn ensure_budget(&mut self, id: u32) {
        if self.budget.len() <= id as usize {
            self.budget.resize(id as usize + 1, self.max_retries);
        }
    }
}

impl Workload for RetryStormWorkload {
    fn on_tick(&mut self, now: SimTime, rng: &mut SmallRng) -> Vec<Arrival> {
        let arrivals = self.inner.on_tick(now, rng);
        for a in &arrivals {
            if let Some(u) = a.user {
                self.ensure_budget(u.id);
                self.budget[u.id as usize] = self.max_retries;
            }
        }
        arrivals
    }

    fn on_response(
        &mut self,
        user: UserRef,
        kind: ResponseKind,
        now: SimTime,
        rng: &mut SmallRng,
    ) -> Vec<Arrival> {
        self.ensure_budget(user.id);
        let mut follow = self.inner.on_response(user, kind, now, rng);
        if follow.is_empty() {
            // Stale generation or parked user: nothing was reissued, so
            // no retry is charged (a late response racing the client
            // timeout must not burn budget).
            return follow;
        }
        if kind == ResponseKind::Success {
            if let Some(b) = self.adaptive.as_mut() {
                b.on_success();
            }
        }
        if kind.is_retryable() && self.budget[user.id as usize] > 0 {
            let admitted = match self.adaptive.as_mut() {
                Some(b) => b.try_retry(),
                None => true,
            };
            if admitted {
                self.budget[user.id as usize] -= 1;
                self.retries_issued += 1;
                // Reissue almost immediately: the inner workload's pacing
                // is bypassed by shifting the issue time to `now + backoff`.
                for a in follow.iter_mut() {
                    a.at = now + self.retry_backoff;
                }
                return follow;
            }
            self.retries_suppressed += 1;
        }
        // Success, per-op budget exhausted, or retry suppressed by the
        // adaptive budget: normal pacing, fresh per-op budget.
        self.budget[user.id as usize] = self.max_retries;
        follow
    }

    fn tick_interval(&self) -> SimDuration {
        self.inner.tick_interval()
    }

    fn client_timeout(&self) -> Option<SimDuration> {
        self.inner.client_timeout()
    }

    fn retry_stats(&self) -> (u64, u64) {
        (self.retries_issued, self.retries_suppressed)
    }
}

#[cfg(test)]
mod retry_tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn failures_trigger_fast_retries() {
        let mut w = RetryStormWorkload::new(
            vec![(ApiId(0), 1.0)],
            1,
            SimDuration::from_secs(1),
            3,
            SimDuration::from_millis(10),
        );
        let mut r = rng();
        let first = w.on_tick(SimTime::ZERO, &mut r)[0];
        let user = first.user.expect("closed loop");
        let fail_at = first.at + SimDuration::from_millis(5);
        let retry = w.on_response(user, ResponseKind::Failed, fail_at, &mut r);
        assert_eq!(retry.len(), 1);
        assert_eq!(
            retry[0].at,
            fail_at + SimDuration::from_millis(10),
            "retry fires after the short backoff, not the think time"
        );
        assert_eq!(w.retries_issued(), 1);
    }

    #[test]
    fn retry_budget_is_bounded() {
        let mut w = RetryStormWorkload::new(
            vec![(ApiId(0), 1.0)],
            1,
            SimDuration::from_secs(1),
            2,
            SimDuration::from_millis(1),
        );
        let mut r = rng();
        let mut arrival = w.on_tick(SimTime::ZERO, &mut r)[0];
        let mut t = arrival.at;
        let mut pattern = Vec::new();
        for _ in 0..6 {
            t += SimDuration::from_millis(5);
            let user = arrival.user.expect("closed loop");
            let follow = w.on_response(user, ResponseKind::Failed, t, &mut r);
            assert_eq!(follow.len(), 1, "user always reissues eventually");
            let fast = follow[0].at.duration_since(t) < SimDuration::from_millis(100);
            pattern.push(fast);
            arrival = follow[0];
        }
        // Two fast retries, then the operation gives up and paces; the
        // next operation gets a fresh budget — the cycle repeats.
        assert_eq!(pattern, vec![true, true, false, true, true, false]);
        assert_eq!(w.retries_issued(), 4);
    }

    #[test]
    fn success_resets_the_budget() {
        let mut w = RetryStormWorkload::new(
            vec![(ApiId(0), 1.0)],
            1,
            SimDuration::from_secs(1),
            1,
            SimDuration::from_millis(1),
        );
        let mut r = rng();
        let a0 = w.on_tick(SimTime::ZERO, &mut r)[0];
        let t1 = a0.at + SimDuration::from_millis(5);
        let a1 = w.on_response(a0.user.expect("user"), ResponseKind::Failed, t1, &mut r)[0];
        assert_eq!(w.retries_issued(), 1);
        // Success → pacing resumes and budget refills.
        let t2 = a1.at + SimDuration::from_millis(5);
        let a2 = w.on_response(a1.user.expect("user"), ResponseKind::Success, t2, &mut r)[0];
        let t3 = a2.at + SimDuration::from_millis(5);
        let _ = w.on_response(a2.user.expect("user"), ResponseKind::Failed, t3, &mut r);
        assert_eq!(w.retries_issued(), 2, "budget was refilled by the success");
    }

    #[test]
    fn adaptive_budget_suppresses_sustained_retries() {
        let mut w = RetryStormWorkload::new(
            vec![(ApiId(0), 1.0)],
            1,
            SimDuration::from_secs(1),
            10,
            SimDuration::from_millis(1),
        )
        .with_retry_budget(RetryBudgetConfig {
            max_tokens: 2.0,
            token_ratio: 0.5,
            retry_cost: 1.0,
        });
        let mut r = rng();
        let mut arrival = w.on_tick(SimTime::ZERO, &mut r)[0];
        let mut t = arrival.at;
        for _ in 0..5 {
            t += SimDuration::from_millis(5);
            let user = arrival.user.expect("closed loop");
            let follow = w.on_response(user, ResponseKind::Failed, t, &mut r);
            assert_eq!(follow.len(), 1, "suppression still paces, never parks");
            arrival = follow[0];
        }
        // The shared bucket held 2 tokens and nothing refilled it: only
        // 2 of the 5 failures became retries.
        assert_eq!(w.retries_issued(), 2);
        assert_eq!(w.retries_suppressed(), 3);
        assert_eq!(w.retry_stats(), (2, 3));
    }

    #[test]
    fn successes_refill_the_adaptive_budget() {
        let mut w = RetryStormWorkload::new(
            vec![(ApiId(0), 1.0)],
            1,
            SimDuration::from_secs(1),
            10,
            SimDuration::from_millis(1),
        )
        .with_retry_budget(RetryBudgetConfig {
            max_tokens: 1.0,
            token_ratio: 0.5,
            retry_cost: 1.0,
        });
        let mut r = rng();
        let mut arrival = w.on_tick(SimTime::ZERO, &mut r)[0];
        let mut t = arrival.at;
        let mut respond = |w: &mut RetryStormWorkload, a: Arrival, kind| {
            t += SimDuration::from_millis(5);
            w.on_response(a.user.expect("user"), kind, t, &mut r)[0]
        };
        // Drain the single token, then get suppressed.
        arrival = respond(&mut w, arrival, ResponseKind::Failed);
        arrival = respond(&mut w, arrival, ResponseKind::Failed);
        assert_eq!((w.retries_issued(), w.retries_suppressed()), (1, 1));
        // Two successes deposit 2 × 0.5 tokens → one retry affordable.
        arrival = respond(&mut w, arrival, ResponseKind::Success);
        arrival = respond(&mut w, arrival, ResponseKind::Success);
        respond(&mut w, arrival, ResponseKind::Failed);
        assert_eq!((w.retries_issued(), w.retries_suppressed()), (2, 1));
    }

    #[test]
    fn stale_response_does_not_burn_retry_budget() {
        let mut w = RetryStormWorkload::new(
            vec![(ApiId(0), 1.0)],
            1,
            SimDuration::from_secs(1),
            3,
            SimDuration::from_millis(1),
        );
        let mut r = rng();
        let first = w.on_tick(SimTime::ZERO, &mut r)[0];
        let user = first.user.expect("closed loop");
        // The client timeout fires: the user reissues (new generation).
        let t1 = first.at + SimDuration::from_secs(10);
        let follow = w.on_response(user, ResponseKind::Timeout, t1, &mut r);
        assert_eq!(follow.len(), 1);
        let issued = w.retries_issued();
        // The abandoned request's late Failed response arrives afterwards
        // with the stale generation: ignored, and no retry charged.
        let t2 = t1 + SimDuration::from_millis(5);
        assert!(w
            .on_response(user, ResponseKind::Failed, t2, &mut r)
            .is_empty());
        assert_eq!(
            w.retries_issued(),
            issued,
            "stale response charges no retry"
        );
    }

    #[test]
    fn retryable_classification() {
        assert!(!ResponseKind::Success.is_retryable());
        assert!(ResponseKind::Late.is_retryable());
        assert!(ResponseKind::Failed.is_retryable());
        assert!(ResponseKind::Timeout.is_retryable());
    }
}
