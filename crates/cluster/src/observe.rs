//! Cluster observation: what the control plane sees once per interval.
//!
//! The paper's distributed tracing collector gathers (a) per-microservice
//! resource utilization via cAdvisor every second and (b) per-API traces —
//! execution paths and end-to-end latencies — via Istio (§5). A
//! [`ClusterObservation`] is that snapshot: per-service windows, per-API
//! windows, and the static API→services map.

use crate::resilience::ResilienceStats;
use crate::types::{ApiId, BusinessPriority, ServiceId};
use serde::{Deserialize, Serialize};
use simnet::{SimDuration, SimTime};

/// Per-service metrics over one observation window.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServiceWindow {
    pub service: ServiceId,
    pub name: String,
    /// Busy-time fraction of alive pods in the window, in `[0, 1]`
    /// (the CPU-utilization signal; overload when above a threshold).
    pub utilization: f64,
    /// Pods alive (ready) at the end of the window.
    pub alive_pods: u32,
    /// Pods desired by the autoscaler (≥ alive while scaling up).
    pub desired_pods: u32,
    /// Total queued calls across pods at the end of the window.
    pub queue_len: u64,
    /// Mean time calls spent queued before processing started, over calls
    /// that *started* in this window.
    pub mean_queuing_delay: SimDuration,
    /// Calls that started processing in this window.
    pub started_calls: u64,
    /// Calls dropped at this service this window (overflow/admission).
    pub dropped_calls: u64,
}

/// Per-API metrics over one observation window.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ApiWindow {
    pub api: ApiId,
    pub name: String,
    pub business: BusinessPriority,
    /// Requests/s offered by clients (before the entry rate limiter).
    pub offered: f64,
    /// Requests/s admitted past the entry rate limiter.
    pub admitted: f64,
    /// Requests/s that completed within the SLO (the paper's goodput).
    pub goodput: f64,
    /// Requests/s that completed but violated the SLO.
    pub slo_violated: f64,
    /// Requests/s that failed inside the cluster (drops, crashes).
    pub failed: f64,
    /// End-to-end latency percentiles over responses completed this
    /// window (`None` when no response completed).
    pub p50: Option<SimDuration>,
    pub p95: Option<SimDuration>,
    pub p99: Option<SimDuration>,
    /// The entry rate limit currently applied (requests/s;
    /// `f64::INFINITY` when unlimited).
    pub rate_limit: f64,
}

impl ApiWindow {
    /// The latency percentile the RL state uses, falling back through
    /// p99 → p95 → p50 → zero.
    pub fn tail_latency(&self) -> SimDuration {
        self.p99
            .or(self.p95)
            .or(self.p50)
            .unwrap_or(SimDuration::ZERO)
    }
}

/// A full snapshot handed to controllers each interval.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterObservation {
    /// End of the observation window.
    pub now: SimTime,
    /// Window length.
    pub window: SimDuration,
    pub services: Vec<ServiceWindow>,
    pub apis: Vec<ApiWindow>,
    /// For each API (indexed by `ApiId`), every service on any of its
    /// possible execution paths.
    pub api_paths: Vec<Vec<ServiceId>>,
    /// The latency SLO in force.
    pub slo: SimDuration,
    /// Request-plane resilience counters for this window (doomed work
    /// cancelled, deadline rejects, retry-budget suppression, breaker
    /// activity). All-zero unless [`crate::resilience`] is enabled.
    #[serde(default)]
    pub resilience: ResilienceStats,
    /// Per-API SLO burn-rate signals (fast/slow window pairs, severity,
    /// budget remaining), one per API in `ApiId` order. Filled by the
    /// harness/live observe tick *after* the engine builds the window —
    /// the engine itself leaves it empty. Read-only for controllers,
    /// fuzz objectives, and the future autoscaler (DESIGN.md §18).
    #[serde(default)]
    pub slo_burn: Vec<obs::SloBurnSignal>,
}

impl ClusterObservation {
    /// Services whose utilization exceeds `threshold`.
    pub fn overloaded_services(&self, threshold: f64) -> Vec<ServiceId> {
        self.services
            .iter()
            .filter(|s| s.utilization > threshold)
            .map(|s| s.service)
            .collect()
    }

    /// Total goodput across APIs (requests/s).
    pub fn total_goodput(&self) -> f64 {
        self.apis.iter().map(|a| a.goodput).sum()
    }

    /// Per-service window by id.
    pub fn service(&self, id: ServiceId) -> &ServiceWindow {
        &self.services[id.idx()]
    }

    /// Per-API window by id.
    pub fn api(&self, id: ApiId) -> &ApiWindow {
        &self.apis[id.idx()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs() -> ClusterObservation {
        let mk_svc = |i: u32, util: f64| ServiceWindow {
            service: ServiceId(i),
            name: format!("s{i}"),
            utilization: util,
            alive_pods: 2,
            desired_pods: 2,
            queue_len: 0,
            mean_queuing_delay: SimDuration::ZERO,
            started_calls: 10,
            dropped_calls: 0,
        };
        let mk_api = |i: u32, goodput: f64| ApiWindow {
            api: ApiId(i),
            name: format!("a{i}"),
            business: BusinessPriority(i as u8),
            offered: goodput + 5.0,
            admitted: goodput + 2.0,
            goodput,
            slo_violated: 1.0,
            failed: 1.0,
            p50: Some(SimDuration::from_millis(10)),
            p95: None,
            p99: None,
            rate_limit: f64::INFINITY,
        };
        ClusterObservation {
            now: SimTime::from_secs(1),
            window: SimDuration::from_secs(1),
            services: vec![mk_svc(0, 0.5), mk_svc(1, 0.95), mk_svc(2, 0.81)],
            apis: vec![mk_api(0, 100.0), mk_api(1, 50.0)],
            api_paths: vec![vec![ServiceId(0), ServiceId(1)], vec![ServiceId(2)]],
            slo: SimDuration::from_secs(1),
            resilience: ResilienceStats::default(),
            slo_burn: Vec::new(),
        }
    }

    #[test]
    fn overloaded_services_by_threshold() {
        let o = obs();
        assert_eq!(o.overloaded_services(0.8), vec![ServiceId(1), ServiceId(2)]);
        assert_eq!(o.overloaded_services(0.99), vec![]);
    }

    #[test]
    fn total_goodput_sums_apis() {
        assert_eq!(obs().total_goodput(), 150.0);
    }

    #[test]
    fn tail_latency_falls_back() {
        let o = obs();
        // p99 and p95 are None → falls back to p50.
        assert_eq!(o.api(ApiId(0)).tail_latency(), SimDuration::from_millis(10));
        let mut a = o.apis[0].clone();
        a.p50 = None;
        assert_eq!(a.tail_latency(), SimDuration::ZERO);
        a.p99 = Some(SimDuration::from_millis(99));
        assert_eq!(a.tail_latency(), SimDuration::from_millis(99));
    }

    #[test]
    fn indexed_accessors() {
        let o = obs();
        assert_eq!(o.service(ServiceId(1)).name, "s1");
        assert_eq!(o.api(ApiId(1)).name, "a1");
    }
}
