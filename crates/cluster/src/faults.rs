//! The fault plane: scheduled gray failures and degraded telemetry.
//!
//! [`crate::failure`] models the paper's two *crash* mechanisms (injected
//! pod kills, overload crash-loops). Real clusters also fail *gray*: pods
//! slow down without dying, links add latency and drop packets, and the
//! observability pipeline itself degrades — metrics go missing, arrive
//! late, or arrive wrong. A [`FaultSpec`] schedules any of these against
//! the simulated cluster; the [`FaultPlane`] runtime answers the engine's
//! per-event queries deterministically from its own forked RNG stream, so
//! enabling a fault never perturbs the base simulation's randomness.
//!
//! Telemetry faults distort only what the *control plane* sees (the
//! observation handed to controllers through
//! [`crate::engine::Engine::latest_observation`]); the cluster underneath
//! keeps running on its true state, which is exactly what makes gray
//! failures dangerous — the controller is flying on bad instruments.

use crate::failure::FailureSpec;
use crate::observe::ClusterObservation;
use crate::types::ServiceId;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use simnet::{SimDuration, SimTime};
use std::collections::VecDeque;

/// One scheduled fault. Instantaneous faults carry an `at` time; windowed
/// faults are active on `[from, until)`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum FaultSpec {
    /// Kill `pods` ready pods of `service` at `at` (the Fig. 18
    /// mechanism; replacements recreate after the pod startup delay).
    PodKill {
        at: SimTime,
        service: ServiceId,
        pods: u32,
    },
    /// Gray slowdown: every call processed by `service` takes `factor`×
    /// its normal service time while active. Pods stay alive and probes
    /// stay green — only throughput quietly collapses.
    SlowPods {
        from: SimTime,
        until: SimTime,
        service: ServiceId,
        factor: f64,
    },
    /// Degrade the network path *into* `service` (`None` = every hop):
    /// each forward call gains `extra_latency` and is lost with
    /// probability `loss`.
    NetworkDegrade {
        from: SimTime,
        until: SimTime,
        service: Option<ServiceId>,
        extra_latency: SimDuration,
        loss: f64,
    },
    /// Metric dropout: the utilization of `service` (`None` = all
    /// services) reads as NaN while active.
    TelemetryDropout {
        from: SimTime,
        until: SimTime,
        service: Option<ServiceId>,
    },
    /// The whole observation pipeline lags: controllers see the snapshot
    /// from `by` ago instead of the current window.
    TelemetryStaleness {
        from: SimTime,
        until: SimTime,
        by: SimDuration,
    },
    /// Multiplicative log-normal noise (mean-preserving, sigma `sigma`)
    /// on every reported service utilization.
    TelemetryNoise {
        from: SimTime,
        until: SimTime,
        sigma: f64,
    },
    /// The control plane itself stalls: the harness skips control ticks
    /// while active (observations are still recorded).
    ControllerStall { from: SimTime, until: SimTime },
}

impl FaultSpec {
    fn is_telemetry(&self) -> bool {
        matches!(
            self,
            FaultSpec::TelemetryDropout { .. }
                | FaultSpec::TelemetryStaleness { .. }
                | FaultSpec::TelemetryNoise { .. }
        )
    }
}

fn active(now: SimTime, from: SimTime, until: SimTime) -> bool {
    now >= from && now < until
}

/// Effect of the network faults on one forward hop.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NetEffect {
    /// The call is lost in transit.
    pub dropped: bool,
    /// Added one-way latency (zero when no fault is active).
    pub extra: SimDuration,
}

/// How many true observations to retain for staleness replay.
const HISTORY_CAP: usize = 64;

/// Cumulative fault-plane telemetry counters: how often the plane
/// distorted what the control plane saw. Registered under
/// `topfull_fault_telemetry_total{kind=…}` plus
/// `topfull_fault_net_drops_total`; the engine journals per-window deltas
/// so a decision timeline shows when the controller was flying blind.
#[derive(Clone, Debug, Default)]
pub struct FaultTelemetryCounters {
    /// Service utilizations blanked to NaN by a dropout window.
    pub dropouts: obs::Counter,
    /// Service utilizations perturbed by telemetry noise.
    pub noisy: obs::Counter,
    /// Observations replaced by a stale snapshot.
    pub stale: obs::Counter,
    /// Forward calls lost to a degraded network path.
    pub net_drops: obs::Counter,
}

impl FaultTelemetryCounters {
    pub fn register_into(&self, reg: &obs::Registry) {
        for (kind, c) in [
            ("dropout", &self.dropouts),
            ("noise", &self.noisy),
            ("stale", &self.stale),
        ] {
            reg.register_counter("topfull_fault_telemetry_total", &[("kind", kind)], c);
        }
        reg.register_counter("topfull_fault_net_drops_total", &[], &self.net_drops);
    }
}

/// Runtime evaluating a schedule of [`FaultSpec`]s. Owned by the engine;
/// all randomness comes from a dedicated forked RNG so the base event
/// streams are identical with and without faults installed.
pub struct FaultPlane {
    specs: Vec<FaultSpec>,
    rng: SmallRng,
    /// Recent *true* observations, oldest first, for staleness replay.
    history: VecDeque<ClusterObservation>,
    has_telemetry: bool,
    has_net: bool,
    has_slow: bool,
    counters: FaultTelemetryCounters,
}

impl FaultPlane {
    /// An empty plane drawing from the engine's `"faults"` RNG fork.
    pub fn new(rng: SmallRng) -> Self {
        FaultPlane {
            specs: Vec::new(),
            rng,
            history: VecDeque::new(),
            has_telemetry: false,
            has_net: false,
            has_slow: false,
            counters: FaultTelemetryCounters::default(),
        }
    }

    /// The plane's cumulative telemetry-distortion counters.
    pub fn counters(&self) -> &FaultTelemetryCounters {
        &self.counters
    }

    /// Install faults. Pod kills are returned as [`FailureSpec`]s for the
    /// engine to schedule through its existing kill path; everything else
    /// is evaluated by query.
    pub fn add(&mut self, specs: Vec<FaultSpec>) -> Vec<FailureSpec> {
        let mut kills = Vec::new();
        for spec in specs {
            if let FaultSpec::PodKill { at, service, pods } = spec {
                kills.push(FailureSpec { at, service, pods });
            } else {
                self.has_telemetry |= spec.is_telemetry();
                self.has_net |= matches!(spec, FaultSpec::NetworkDegrade { .. });
                self.has_slow |= matches!(spec, FaultSpec::SlowPods { .. });
                self.specs.push(spec);
            }
        }
        kills
    }

    /// The installed (non-kill) schedule.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Combined service-time multiplier for `svc` at `now` (1.0 = none).
    /// Overlapping slowdowns compound; non-finite or non-positive factors
    /// are ignored rather than corrupting the clock.
    pub fn slow_factor(&self, now: SimTime, svc: ServiceId) -> f64 {
        if !self.has_slow {
            return 1.0;
        }
        let mut f = 1.0;
        for s in &self.specs {
            if let FaultSpec::SlowPods {
                from,
                until,
                service,
                factor,
            } = s
            {
                if *service == svc
                    && active(now, *from, *until)
                    && factor.is_finite()
                    && *factor > 0.0
                {
                    f *= factor;
                }
            }
        }
        f
    }

    /// Network effect on a forward hop into `svc` at `now`. Consumes RNG
    /// only while a matching degrade window is active, keeping runs
    /// bit-identical outside fault windows.
    pub fn net_effect(&mut self, now: SimTime, svc: ServiceId) -> NetEffect {
        let mut eff = NetEffect::default();
        if !self.has_net {
            return eff;
        }
        for s in &self.specs {
            if let FaultSpec::NetworkDegrade {
                from,
                until,
                service,
                extra_latency,
                loss,
            } = s
            {
                let matches = service.is_none_or(|t| t == svc);
                if matches && active(now, *from, *until) {
                    eff.extra += *extra_latency;
                    let p = loss.clamp(0.0, 1.0);
                    if p > 0.0 && self.rng.gen::<f64>() < p && !eff.dropped {
                        eff.dropped = true;
                        self.counters.net_drops.inc();
                    }
                }
            }
        }
        eff
    }

    /// Whether the control plane is stalled at `now` (the harness skips
    /// its control tick).
    pub fn control_stalled(&self, now: SimTime) -> bool {
        self.specs.iter().any(|s| {
            matches!(s, FaultSpec::ControllerStall { from, until } if active(now, *from, *until))
        })
    }

    /// Distort the freshly finalized observation into what the control
    /// plane sees: staleness replays an old snapshot, dropout blanks
    /// utilizations to NaN, noise multiplies them. The true `obs` is
    /// archived for future staleness replay either way.
    pub fn distort(&mut self, now: SimTime, obs: ClusterObservation) -> ClusterObservation {
        if !self.has_telemetry {
            return obs;
        }
        self.history.push_back(obs.clone());
        if self.history.len() > HISTORY_CAP {
            self.history.pop_front();
        }
        let lag = self
            .specs
            .iter()
            .filter_map(|s| match s {
                FaultSpec::TelemetryStaleness { from, until, by } if active(now, *from, *until) => {
                    Some(*by)
                }
                _ => None,
            })
            .max()
            .unwrap_or(SimDuration::ZERO);
        let mut seen = if lag.is_zero() {
            obs
        } else {
            self.counters.stale.inc();
            // Newest archived snapshot at least `lag` old; the oldest we
            // have if the pipeline lag exceeds the archive.
            self.history
                .iter()
                .rev()
                .find(|o| now.duration_since(o.now) >= lag)
                .or_else(|| self.history.front())
                .cloned()
                .expect("history holds at least the current observation")
        };
        for s in &self.specs {
            match s {
                FaultSpec::TelemetryDropout {
                    from,
                    until,
                    service,
                } if active(now, *from, *until) => {
                    for w in &mut seen.services {
                        if service.is_none_or(|t| t == w.service) {
                            w.utilization = f64::NAN;
                            self.counters.dropouts.inc();
                        }
                    }
                }
                FaultSpec::TelemetryNoise { from, until, sigma }
                    if active(now, *from, *until) && *sigma > 0.0 && sigma.is_finite() =>
                {
                    for w in &mut seen.services {
                        if w.utilization.is_finite() {
                            // Mean-preserving log-normal multiplier, from
                            // two independent uniforms (Box–Muller).
                            let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
                            let u2: f64 = self.rng.gen();
                            let z =
                                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                            let mult = (-sigma * sigma / 2.0 + sigma * z).exp();
                            w.utilization = (w.utilization * mult).clamp(0.0, 2.0);
                            self.counters.noisy.inc();
                        }
                    }
                }
                _ => {}
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::{ApiWindow, ServiceWindow};
    use simnet::rng;

    fn plane(specs: Vec<FaultSpec>) -> FaultPlane {
        let mut p = FaultPlane::new(rng::fork(1, "faults"));
        let kills = p.add(specs);
        assert!(kills.is_empty());
        p
    }

    fn obs_at(now: SimTime, utils: &[f64]) -> ClusterObservation {
        ClusterObservation {
            now,
            window: SimDuration::from_secs(1),
            services: utils
                .iter()
                .enumerate()
                .map(|(i, u)| ServiceWindow {
                    service: ServiceId(i as u32),
                    name: format!("s{i}"),
                    utilization: *u,
                    alive_pods: 1,
                    desired_pods: 1,
                    queue_len: 0,
                    mean_queuing_delay: SimDuration::ZERO,
                    started_calls: 1,
                    dropped_calls: 0,
                })
                .collect(),
            apis: Vec::<ApiWindow>::new(),
            api_paths: vec![],
            slo: SimDuration::from_secs(1),
            resilience: Default::default(),
            slo_burn: Vec::new(),
        }
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pod_kills_convert_to_failure_specs() {
        let mut p = FaultPlane::new(rng::fork(1, "faults"));
        let kills = p.add(vec![FaultSpec::PodKill {
            at: t(30),
            service: ServiceId(2),
            pods: 5,
        }]);
        assert_eq!(kills.len(), 1);
        assert_eq!(kills[0].pods, 5);
        assert!(p.specs().is_empty());
    }

    #[test]
    fn slow_factor_windows_and_compounds() {
        let p = plane(vec![
            FaultSpec::SlowPods {
                from: t(10),
                until: t(20),
                service: ServiceId(0),
                factor: 3.0,
            },
            FaultSpec::SlowPods {
                from: t(15),
                until: t(25),
                service: ServiceId(0),
                factor: 2.0,
            },
        ]);
        assert_eq!(p.slow_factor(t(5), ServiceId(0)), 1.0);
        assert_eq!(p.slow_factor(t(12), ServiceId(0)), 3.0);
        assert_eq!(p.slow_factor(t(17), ServiceId(0)), 6.0);
        assert_eq!(
            p.slow_factor(t(20), ServiceId(0)),
            2.0,
            "until is exclusive"
        );
        assert_eq!(
            p.slow_factor(t(12), ServiceId(1)),
            1.0,
            "other services untouched"
        );
    }

    #[test]
    fn slow_factor_ignores_degenerate_factors() {
        let p = plane(vec![FaultSpec::SlowPods {
            from: t(0),
            until: t(10),
            service: ServiceId(0),
            factor: f64::NAN,
        }]);
        assert_eq!(p.slow_factor(t(5), ServiceId(0)), 1.0);
    }

    #[test]
    fn net_effect_adds_latency_and_drops() {
        let mut p = plane(vec![FaultSpec::NetworkDegrade {
            from: t(0),
            until: t(100),
            service: Some(ServiceId(1)),
            extra_latency: SimDuration::from_millis(20),
            loss: 0.5,
        }]);
        // Unmatched service: no effect, no RNG consumed.
        assert_eq!(p.net_effect(t(1), ServiceId(0)), NetEffect::default());
        let mut drops = 0;
        for _ in 0..1000 {
            let e = p.net_effect(t(1), ServiceId(1));
            assert_eq!(e.extra, SimDuration::from_millis(20));
            drops += u32::from(e.dropped);
        }
        assert!((350..650).contains(&drops), "≈50% loss, got {drops}/1000");
    }

    #[test]
    fn controller_stall_window() {
        let p = plane(vec![FaultSpec::ControllerStall {
            from: t(10),
            until: t(20),
        }]);
        assert!(!p.control_stalled(t(9)));
        assert!(p.control_stalled(t(10)));
        assert!(p.control_stalled(t(19)));
        assert!(!p.control_stalled(t(20)));
    }

    #[test]
    fn dropout_blanks_utilization_to_nan() {
        let mut p = plane(vec![FaultSpec::TelemetryDropout {
            from: t(0),
            until: t(100),
            service: Some(ServiceId(1)),
        }]);
        let seen = p.distort(t(1), obs_at(t(1), &[0.5, 0.9]));
        assert_eq!(seen.services[0].utilization, 0.5);
        assert!(seen.services[1].utilization.is_nan());
        assert_eq!(p.counters().dropouts.get(), 1);
        assert_eq!(p.counters().noisy.get(), 0);
        assert_eq!(p.counters().stale.get(), 0);
    }

    #[test]
    fn telemetry_counters_register_and_count_distortions() {
        let mut p = plane(vec![FaultSpec::TelemetryStaleness {
            from: t(0),
            until: t(100),
            by: SimDuration::from_secs(1),
        }]);
        p.distort(t(1), obs_at(t(1), &[0.5]));
        p.distort(t(2), obs_at(t(2), &[0.6]));
        assert_eq!(p.counters().stale.get(), 2);
        let reg = obs::Registry::new();
        p.counters().register_into(&reg);
        assert_eq!(reg.len(), 4);
        let text = reg.render_prometheus();
        assert!(text.contains("topfull_fault_telemetry_total{kind=\"stale\"} 2"));
        assert!(text.contains("topfull_fault_net_drops_total 0"));
    }

    #[test]
    fn staleness_replays_old_snapshots() {
        let mut p = plane(vec![FaultSpec::TelemetryStaleness {
            from: t(5),
            until: t(100),
            by: SimDuration::from_secs(3),
        }]);
        for s in 1..=10u64 {
            let seen = p.distort(t(s), obs_at(t(s), &[s as f64 / 100.0]));
            if s < 5 {
                assert_eq!(seen.now, t(s), "inactive: passthrough");
            } else {
                // Newest snapshot at least 3 s old.
                assert_eq!(seen.now, t(s - 3), "at t={s}");
            }
        }
    }

    #[test]
    fn staleness_longer_than_history_serves_oldest() {
        let mut p = plane(vec![FaultSpec::TelemetryStaleness {
            from: t(0),
            until: t(100),
            by: SimDuration::from_secs(60),
        }]);
        let first = p.distort(t(1), obs_at(t(1), &[0.1]));
        assert_eq!(first.now, t(1), "nothing older exists yet");
        let second = p.distort(t(2), obs_at(t(2), &[0.2]));
        assert_eq!(second.now, t(1), "oldest available");
    }

    #[test]
    fn noise_is_mean_preserving_and_bounded() {
        let mut p = plane(vec![FaultSpec::TelemetryNoise {
            from: t(0),
            until: t(1_000_000),
            sigma: 0.3,
        }]);
        let mut sum = 0.0;
        let n = 2000;
        for i in 0..n {
            let seen = p.distort(t(i), obs_at(t(i), &[0.8]));
            let u = seen.services[0].utilization;
            assert!((0.0..=2.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((0.74..0.86).contains(&mean), "mean ≈ 0.8, got {mean}");
    }

    #[test]
    fn specs_serialize_round_trip() {
        let specs = vec![
            FaultSpec::PodKill {
                at: t(30),
                service: ServiceId(1),
                pods: 3,
            },
            FaultSpec::SlowPods {
                from: t(10),
                until: t(20),
                service: ServiceId(0),
                factor: 4.0,
            },
            FaultSpec::NetworkDegrade {
                from: t(0),
                until: t(5),
                service: None,
                extra_latency: SimDuration::from_millis(10),
                loss: 0.1,
            },
            FaultSpec::TelemetryDropout {
                from: t(1),
                until: t(2),
                service: Some(ServiceId(7)),
            },
            FaultSpec::TelemetryStaleness {
                from: t(1),
                until: t(2),
                by: SimDuration::from_secs(5),
            },
            FaultSpec::TelemetryNoise {
                from: t(1),
                until: t(2),
                sigma: 0.5,
            },
            FaultSpec::ControllerStall {
                from: t(1),
                until: t(2),
            },
        ];
        let json = serde_json::to_string(&specs).expect("serialize");
        assert!(json.contains("\"kind\""));
        let back: Vec<FaultSpec> = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, specs);
    }
}
