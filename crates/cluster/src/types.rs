//! Identifiers and request metadata shared across the simulator.

use serde::{Deserialize, Serialize};
use simnet::SimTime;
use std::fmt;

/// Index of a service within a [`crate::topology::Topology`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServiceId(pub u32);

/// Index of an external API within a [`crate::topology::Topology`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ApiId(pub u32);

impl ServiceId {
    /// Usable as a `Vec` index.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl ApiId {
    /// Usable as a `Vec` index.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "svc#{}", self.0)
    }
}

impl fmt::Display for ApiId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "api#{}", self.0)
    }
}

/// Business priority of an API: **lower value = more important**, matching
/// DAGOR's convention where admission thresholds cut from the high
/// (unimportant) end. The operator assigns these per API type (§4.1
/// "Respecting the business priority").
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct BusinessPriority(pub u8);

impl BusinessPriority {
    /// The most important priority level.
    pub const HIGHEST: BusinessPriority = BusinessPriority(0);
}

/// Metadata accompanying a request through the cluster; what a per-service
/// admission controller (DAGOR, Breakwater) is allowed to look at.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestMeta {
    /// Which external API the request belongs to (DAGOR/TopFull know the
    /// API type; Breakwater ignores it).
    pub api: ApiId,
    /// Business priority inherited from the API type.
    pub business: BusinessPriority,
    /// User priority drawn uniformly in `0..=127` at the entry point and
    /// inherited by all sub-requests (DAGOR §5: "random user priority at
    /// the entry points").
    pub user: u8,
    /// Arrival time at the entry gateway.
    pub arrival: SimTime,
    /// Absolute deadline propagated with the request (DAGOR-style):
    /// derived at entry from the client timeout / latency SLO when
    /// deadline propagation is enabled ([`crate::resilience`]). Services
    /// check it before starting work and before dispatching sub-calls;
    /// `None` disables all deadline machinery.
    pub deadline: Option<SimTime>,
}

/// Terminal status of a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestOutcome {
    /// Completed end-to-end within the latency SLO.
    Good,
    /// Completed end-to-end but after the SLO deadline.
    SloViolated,
    /// Rejected by the entry gateway's rate limiter.
    RejectedAtEntry,
    /// Rejected by a per-service admission controller.
    RejectedAtService(ServiceId),
    /// Dropped because a pod queue overflowed.
    QueueOverflow(ServiceId),
    /// Lost because the pod processing it crashed.
    PodCrashed(ServiceId),
    /// Lost in transit to a service on a degraded network path
    /// ([`crate::faults::FaultSpec::NetworkDegrade`]).
    NetworkLost(ServiceId),
    /// Abandoned by a closed-loop client that timed out waiting.
    ClientTimeout,
    /// Failed because its propagated deadline expired before a service
    /// could start (or continue) working on it.
    DeadlineExpired(ServiceId),
    /// Rejected at dispatch by an open circuit breaker on the edge into
    /// this service ([`crate::resilience::EdgeBreakers`]).
    BreakerOpen(ServiceId),
}

impl RequestOutcome {
    /// True only for responses that count toward goodput.
    pub fn is_good(self) -> bool {
        matches!(self, RequestOutcome::Good)
    }

    /// True when the request failed *inside* the cluster after being
    /// admitted at entry (it consumed upstream resources — wasted work).
    pub fn failed_in_cluster(self) -> bool {
        matches!(
            self,
            RequestOutcome::RejectedAtService(_)
                | RequestOutcome::QueueOverflow(_)
                | RequestOutcome::PodCrashed(_)
                | RequestOutcome::NetworkLost(_)
                | RequestOutcome::DeadlineExpired(_)
                | RequestOutcome::BreakerOpen(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_index_vectors() {
        let v = [10, 20, 30];
        assert_eq!(v[ServiceId(1).idx()], 20);
        assert_eq!(v[ApiId(2).idx()], 30);
    }

    #[test]
    fn business_priority_orders_low_first() {
        assert!(BusinessPriority::HIGHEST < BusinessPriority(1));
        assert!(BusinessPriority(3) > BusinessPriority(2));
    }

    #[test]
    fn outcome_classification() {
        assert!(RequestOutcome::Good.is_good());
        assert!(!RequestOutcome::SloViolated.is_good());
        assert!(RequestOutcome::QueueOverflow(ServiceId(0)).failed_in_cluster());
        assert!(RequestOutcome::DeadlineExpired(ServiceId(1)).failed_in_cluster());
        assert!(RequestOutcome::BreakerOpen(ServiceId(1)).failed_in_cluster());
        assert!(!RequestOutcome::RejectedAtEntry.failed_in_cluster());
        assert!(!RequestOutcome::ClientTimeout.failed_in_cluster());
        assert!(!RequestOutcome::Good.failed_in_cluster());
    }

    #[test]
    fn display_formats() {
        assert_eq!(ServiceId(4).to_string(), "svc#4");
        assert_eq!(ApiId(1).to_string(), "api#1");
    }
}
