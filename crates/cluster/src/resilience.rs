//! Request-plane resilience: deadline propagation, adaptive retry
//! budgets, and per-downstream-edge circuit breakers.
//!
//! TopFull's thesis is that overload control must stop *wasted work* —
//! partially-built responses a bottleneck will discard (§1, Figs. 1–4).
//! The engine's request plane earns that realism here:
//!
//! * **Deadlines** ([`DeadlineConfig`]) — every request carries an
//!   absolute deadline derived from the client timeout / SLO; services
//!   check it before starting work and before dispatching sub-calls, and
//!   the engine tears down the in-flight subtree when the root's client
//!   timeout fires instead of silently finishing doomed work.
//! * **Retry budgets** ([`RetryBudget`]) — gRPC/Finagle-style token
//!   buckets: a retry withdraws a token, only successes deposit, so a
//!   retry storm drains the bucket and self-extinguishes instead of
//!   multiplying shed load (DAGOR §1's metastable feedback loop).
//! * **Circuit breakers** ([`EdgeBreakers`]) — per (caller service →
//!   callee service) edge, closed → open → half-open with probe
//!   admission, consulted at call dispatch alongside admission control.
//!
//! Everything is observable: [`ResilienceStats`] counts doomed work
//! cancelled, deadline-expired rejects, retries suppressed by budget and
//! breaker activity, so experiments can quantify the waste avoided.

use crate::types::ServiceId;
use serde::{Deserialize, Serialize};
use simnet::{SimDuration, SimTime};
use std::collections::HashMap;

// ---------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------

/// Deadline propagation policy.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DeadlineConfig {
    /// Per-request deadline budget from arrival. `None` derives it from
    /// the workload's client timeout, falling back to the latency SLO.
    pub budget: Option<SimDuration>,
    /// When true (default), work whose owning request was already
    /// cancelled or has an expired deadline is skipped at the pod
    /// instead of executing as waste, and a firing client timeout tears
    /// down the request's in-flight subtree.
    pub cancel_doomed: bool,
}

impl Default for DeadlineConfig {
    fn default() -> Self {
        DeadlineConfig {
            budget: None,
            cancel_doomed: true,
        }
    }
}

// ---------------------------------------------------------------------
// Retry budgets
// ---------------------------------------------------------------------

/// Token-bucket retry budget (gRPC retry throttling / Finagle retry
/// budget): retries withdraw `retry_cost`, successes deposit
/// `token_ratio`, the bucket caps at `max_tokens`. When the bucket
/// cannot cover a retry, the retry is suppressed — under sustained
/// failure the deposit stream dries up and the storm self-extinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RetryBudgetConfig {
    /// Bucket capacity (also the initial fill).
    pub max_tokens: f64,
    /// Tokens deposited per successful response.
    pub token_ratio: f64,
    /// Tokens withdrawn per retry.
    pub retry_cost: f64,
}

impl Default for RetryBudgetConfig {
    fn default() -> Self {
        RetryBudgetConfig {
            max_tokens: 100.0,
            token_ratio: 0.1,
            retry_cost: 1.0,
        }
    }
}

/// A live retry budget (see [`RetryBudgetConfig`]).
#[derive(Clone, Debug)]
pub struct RetryBudget {
    cfg: RetryBudgetConfig,
    tokens: f64,
}

impl RetryBudget {
    /// A budget starting full.
    pub fn new(cfg: RetryBudgetConfig) -> Self {
        let cfg = RetryBudgetConfig {
            max_tokens: cfg.max_tokens.max(0.0),
            token_ratio: cfg.token_ratio.max(0.0),
            retry_cost: cfg.retry_cost.max(0.0),
        };
        RetryBudget {
            tokens: cfg.max_tokens,
            cfg,
        }
    }

    /// Tokens currently available.
    pub fn tokens(&self) -> f64 {
        self.tokens
    }

    /// A success deposits `token_ratio`, capped at `max_tokens`.
    pub fn on_success(&mut self) {
        self.tokens = (self.tokens + self.cfg.token_ratio).min(self.cfg.max_tokens);
    }

    /// Try to pay for one retry: withdraws `retry_cost` and returns
    /// `true`, or returns `false` (suppress the retry) when the bucket
    /// cannot cover it.
    pub fn try_retry(&mut self) -> bool {
        if self.tokens >= self.cfg.retry_cost {
            self.tokens -= self.cfg.retry_cost;
            true
        } else {
            false
        }
    }
}

// ---------------------------------------------------------------------
// Circuit breakers
// ---------------------------------------------------------------------

/// Per-edge circuit breaker tuning.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Open when `failures / calls ≥ failure_threshold` over a tumbling
    /// window of `min_calls` outcomes.
    pub failure_threshold: f64,
    /// Outcomes per evaluation window (also the minimum evidence before
    /// the breaker may open).
    pub min_calls: u32,
    /// How long an open breaker rejects before probing (half-open).
    pub open_for: SimDuration,
    /// Probe calls admitted while half-open; all must succeed to close,
    /// any failure re-opens.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 0.5,
            min_calls: 20,
            open_for: SimDuration::from_secs(2),
            half_open_probes: 5,
        }
    }
}

/// Breaker state machine phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; outcomes are tallied.
    Closed,
    /// All calls rejected until `open_for` elapses.
    Open,
    /// A bounded number of probe calls admitted.
    HalfOpen,
}

#[derive(Clone, Debug)]
struct Breaker {
    state: BreakerState,
    /// Window tallies while closed.
    calls: u32,
    failures: u32,
    /// When the breaker opened.
    opened_at: SimTime,
    /// Probes admitted / succeeded while half-open.
    probes_sent: u32,
    probes_ok: u32,
}

impl Breaker {
    fn new() -> Self {
        Breaker {
            state: BreakerState::Closed,
            calls: 0,
            failures: 0,
            opened_at: SimTime::ZERO,
            probes_sent: 0,
            probes_ok: 0,
        }
    }
}

/// One circuit breaker per downstream call edge. The caller side is
/// `None` for the entry (gateway → root service) edge.
pub struct EdgeBreakers {
    cfg: BreakerConfig,
    edges: HashMap<(u32, u32), Breaker>,
    transitions: u64,
}

/// Encode an edge as a map key (`u32::MAX` = the entry gateway).
fn key(caller: Option<ServiceId>, callee: ServiceId) -> (u32, u32) {
    (caller.map_or(u32::MAX, |s| s.0), callee.0)
}

impl EdgeBreakers {
    /// Breakers over an initially-empty edge set.
    pub fn new(cfg: BreakerConfig) -> Self {
        EdgeBreakers {
            cfg,
            edges: HashMap::new(),
            transitions: 0,
        }
    }

    /// Cumulative state transitions (closed→open, open→half-open,
    /// half-open→closed/open) across all edges.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Current state of an edge (closed when never exercised).
    pub fn state(&self, caller: Option<ServiceId>, callee: ServiceId) -> BreakerState {
        self.edges
            .get(&key(caller, callee))
            .map_or(BreakerState::Closed, |b| b.state)
    }

    /// Whether a call over this edge may be dispatched at `now`.
    /// Half-open admits up to `half_open_probes` probe calls.
    pub fn allow(&mut self, caller: Option<ServiceId>, callee: ServiceId, now: SimTime) -> bool {
        let cfg = self.cfg;
        let b = self
            .edges
            .entry(key(caller, callee))
            .or_insert_with(Breaker::new);
        match b.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now.duration_since(b.opened_at) >= cfg.open_for {
                    b.state = BreakerState::HalfOpen;
                    b.probes_sent = 1;
                    b.probes_ok = 0;
                    self.transitions += 1;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                if b.probes_sent < cfg.half_open_probes {
                    b.probes_sent += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record a successful call over this edge.
    pub fn on_success(&mut self, caller: Option<ServiceId>, callee: ServiceId, _now: SimTime) {
        let cfg = self.cfg;
        let b = self
            .edges
            .entry(key(caller, callee))
            .or_insert_with(Breaker::new);
        match b.state {
            BreakerState::Closed => {
                b.calls += 1;
                Self::evaluate(b, cfg, &mut self.transitions, SimTime::ZERO);
            }
            BreakerState::HalfOpen => {
                b.probes_ok += 1;
                if b.probes_ok >= cfg.half_open_probes {
                    b.state = BreakerState::Closed;
                    b.calls = 0;
                    b.failures = 0;
                    self.transitions += 1;
                }
            }
            BreakerState::Open => {}
        }
    }

    /// Record a failed call over this edge (downstream rejection, drop,
    /// crash, loss — anything the caller would see as edge trouble).
    pub fn on_failure(&mut self, caller: Option<ServiceId>, callee: ServiceId, now: SimTime) {
        let cfg = self.cfg;
        let b = self
            .edges
            .entry(key(caller, callee))
            .or_insert_with(Breaker::new);
        match b.state {
            BreakerState::Closed => {
                b.calls += 1;
                b.failures += 1;
                Self::evaluate(b, cfg, &mut self.transitions, now);
            }
            BreakerState::HalfOpen => {
                // A failed probe re-opens immediately.
                b.state = BreakerState::Open;
                b.opened_at = now;
                self.transitions += 1;
            }
            BreakerState::Open => {}
        }
    }

    /// Close of a tumbling window: open on failure rate, else reset.
    fn evaluate(b: &mut Breaker, cfg: BreakerConfig, transitions: &mut u64, now: SimTime) {
        if b.calls < cfg.min_calls.max(1) {
            return;
        }
        let rate = f64::from(b.failures) / f64::from(b.calls);
        if rate >= cfg.failure_threshold {
            b.state = BreakerState::Open;
            b.opened_at = now;
            *transitions += 1;
        }
        b.calls = 0;
        b.failures = 0;
    }
}

// ---------------------------------------------------------------------
// Config + stats
// ---------------------------------------------------------------------

/// Engine-side resilience configuration ([`crate::Engine::set_resilience`]).
/// Retry budgets are client-side and live in the workload
/// ([`crate::workload::RetryStormWorkload::with_retry_budget`]).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct ResilienceConfig {
    /// Deadline propagation + doomed-work cancellation.
    pub deadlines: Option<DeadlineConfig>,
    /// Per-downstream-edge circuit breakers.
    pub breakers: Option<BreakerConfig>,
}

/// Request-plane resilience counters. Appears per observation window in
/// [`crate::ClusterObservation`] and cumulatively via
/// [`crate::Engine::resilience_totals`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResilienceStats {
    /// Queued calls skipped at a pod because their request was already
    /// cancelled — work that would have executed as pure waste.
    pub doomed_cancelled: u64,
    /// Calls rejected (request failed) because the deadline had expired
    /// before work started or before a sub-call was dispatched.
    pub deadline_rejected: u64,
    /// Root requests torn down when the client's timeout fired.
    pub client_cancelled: u64,
    /// Retries issued by the client population.
    pub retries_issued: u64,
    /// Retries suppressed by an exhausted retry budget.
    pub retries_suppressed: u64,
    /// Calls rejected by an open circuit breaker.
    pub breaker_rejected: u64,
    /// Breaker state transitions across all edges.
    pub breaker_transitions: u64,
}

impl ResilienceStats {
    /// Element-wise accumulate.
    pub fn add(&mut self, other: &ResilienceStats) {
        self.doomed_cancelled += other.doomed_cancelled;
        self.deadline_rejected += other.deadline_rejected;
        self.client_cancelled += other.client_cancelled;
        self.retries_issued += other.retries_issued;
        self.retries_suppressed += other.retries_suppressed;
        self.breaker_rejected += other.breaker_rejected;
        self.breaker_transitions += other.breaker_transitions;
    }

    /// Element-wise difference against an earlier snapshot of the same
    /// (monotone) counters — how a window is carved out of cumulative
    /// registry instruments.
    pub fn since(&self, base: &ResilienceStats) -> ResilienceStats {
        ResilienceStats {
            doomed_cancelled: self.doomed_cancelled - base.doomed_cancelled,
            deadline_rejected: self.deadline_rejected - base.deadline_rejected,
            client_cancelled: self.client_cancelled - base.client_cancelled,
            retries_issued: self.retries_issued - base.retries_issued,
            retries_suppressed: self.retries_suppressed - base.retries_suppressed,
            breaker_rejected: self.breaker_rejected - base.breaker_rejected,
            breaker_transitions: self.breaker_transitions - base.breaker_transitions,
        }
    }

    /// True when any counter is nonzero.
    pub fn any(&self) -> bool {
        *self != ResilienceStats::default()
    }
}

/// The resilience counters as shared, cumulative registry instruments.
/// The engine's resilience plane increments these on the hot path and a
/// [`obs::Registry`] exposes them; windowed [`ResilienceStats`] views are
/// derived by differencing snapshots, so the stats type stays the plain
/// `Copy` value every report already serializes.
#[derive(Clone, Debug, Default)]
pub struct ResilienceCounters {
    pub doomed_cancelled: obs::Counter,
    pub deadline_rejected: obs::Counter,
    pub client_cancelled: obs::Counter,
    pub retries_issued: obs::Counter,
    pub retries_suppressed: obs::Counter,
    pub breaker_rejected: obs::Counter,
    pub breaker_transitions: obs::Counter,
}

impl ResilienceCounters {
    /// Current cumulative values as a plain stats snapshot.
    pub fn snapshot(&self) -> ResilienceStats {
        ResilienceStats {
            doomed_cancelled: self.doomed_cancelled.get(),
            deadline_rejected: self.deadline_rejected.get(),
            client_cancelled: self.client_cancelled.get(),
            retries_issued: self.retries_issued.get(),
            retries_suppressed: self.retries_suppressed.get(),
            breaker_rejected: self.breaker_rejected.get(),
            breaker_transitions: self.breaker_transitions.get(),
        }
    }

    /// Register every counter under `topfull_resilience_events_total`,
    /// one `event` label per field (see DESIGN.md §13).
    pub fn register_into(&self, reg: &obs::Registry) {
        const FAMILY: &str = "topfull_resilience_events_total";
        for (event, c) in [
            ("doomed_cancelled", &self.doomed_cancelled),
            ("deadline_rejected", &self.deadline_rejected),
            ("client_cancelled", &self.client_cancelled),
            ("retries_issued", &self.retries_issued),
            ("retries_suppressed", &self.retries_suppressed),
            ("breaker_rejected", &self.breaker_rejected),
            ("breaker_transitions", &self.breaker_transitions),
        ] {
            reg.register_counter(FAMILY, &[("event", event)], c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_snapshot_and_window_difference() {
        let c = ResilienceCounters::default();
        c.doomed_cancelled.add(3);
        c.retries_issued.add(5);
        let base = c.snapshot();
        c.doomed_cancelled.inc();
        c.breaker_rejected.add(2);
        let win = c.snapshot().since(&base);
        assert_eq!(win.doomed_cancelled, 1);
        assert_eq!(win.breaker_rejected, 2);
        assert_eq!(win.retries_issued, 0, "unchanged counters read as zero");
        let reg = obs::Registry::new();
        c.register_into(&reg);
        assert_eq!(reg.len(), 7);
        let text = reg.render_prometheus();
        assert!(text.contains("topfull_resilience_events_total{event=\"doomed_cancelled\"} 4"));
    }

    #[test]
    fn retry_budget_drains_and_refills() {
        let mut b = RetryBudget::new(RetryBudgetConfig {
            max_tokens: 2.0,
            token_ratio: 0.5,
            retry_cost: 1.0,
        });
        assert!(b.try_retry());
        assert!(b.try_retry());
        assert!(!b.try_retry(), "bucket empty: retry suppressed");
        b.on_success();
        assert!(!b.try_retry(), "0.5 tokens < cost 1.0");
        b.on_success();
        assert!(b.try_retry(), "two successes buy one retry");
    }

    #[test]
    fn retry_budget_caps_at_max() {
        let mut b = RetryBudget::new(RetryBudgetConfig {
            max_tokens: 1.0,
            token_ratio: 10.0,
            retry_cost: 1.0,
        });
        for _ in 0..100 {
            b.on_success();
        }
        assert!(b.tokens() <= 1.0 + 1e-9);
        assert!(b.try_retry());
        assert!(!b.try_retry());
    }

    #[test]
    fn breaker_opens_on_failure_rate() {
        let cfg = BreakerConfig {
            failure_threshold: 0.5,
            min_calls: 4,
            ..BreakerConfig::default()
        };
        let mut eb = EdgeBreakers::new(cfg);
        let callee = ServiceId(1);
        let t = SimTime::from_secs(1);
        // 2 ok + 2 failed = 50% over the 4-call window → open.
        eb.on_success(None, callee, t);
        eb.on_failure(None, callee, t);
        eb.on_success(None, callee, t);
        assert_eq!(eb.state(None, callee), BreakerState::Closed);
        eb.on_failure(None, callee, t);
        assert_eq!(eb.state(None, callee), BreakerState::Open);
        assert!(!eb.allow(None, callee, t));
        assert_eq!(eb.transitions(), 1);
    }

    #[test]
    fn breaker_window_resets_when_healthy() {
        let cfg = BreakerConfig {
            failure_threshold: 0.5,
            min_calls: 4,
            ..BreakerConfig::default()
        };
        let mut eb = EdgeBreakers::new(cfg);
        let callee = ServiceId(0);
        let t = SimTime::ZERO;
        // One bad window's worth of failures spread across two healthy
        // windows never opens the breaker.
        for _ in 0..2 {
            eb.on_failure(None, callee, t);
            eb.on_success(None, callee, t);
            eb.on_success(None, callee, t);
            eb.on_success(None, callee, t);
        }
        assert_eq!(eb.state(None, callee), BreakerState::Closed);
    }

    #[test]
    fn breaker_half_open_probes_then_closes() {
        let cfg = BreakerConfig {
            failure_threshold: 0.5,
            min_calls: 2,
            open_for: SimDuration::from_secs(1),
            half_open_probes: 2,
        };
        let mut eb = EdgeBreakers::new(cfg);
        let callee = ServiceId(3);
        let t0 = SimTime::from_secs(10);
        eb.on_failure(None, callee, t0);
        eb.on_failure(None, callee, t0);
        assert_eq!(eb.state(None, callee), BreakerState::Open);
        // Still open before the cooldown elapses.
        assert!(!eb.allow(None, callee, t0 + SimDuration::from_millis(500)));
        // Cooldown over: half-open admits exactly two probes.
        let t1 = t0 + SimDuration::from_secs(1);
        assert!(eb.allow(None, callee, t1));
        assert_eq!(eb.state(None, callee), BreakerState::HalfOpen);
        assert!(eb.allow(None, callee, t1));
        assert!(!eb.allow(None, callee, t1), "probe quota exhausted");
        // Both probes succeed → closed again.
        eb.on_success(None, callee, t1);
        eb.on_success(None, callee, t1);
        assert_eq!(eb.state(None, callee), BreakerState::Closed);
        assert!(eb.allow(None, callee, t1));
    }

    #[test]
    fn breaker_failed_probe_reopens() {
        let cfg = BreakerConfig {
            failure_threshold: 0.5,
            min_calls: 2,
            open_for: SimDuration::from_secs(1),
            half_open_probes: 3,
        };
        let mut eb = EdgeBreakers::new(cfg);
        let callee = ServiceId(2);
        let t0 = SimTime::ZERO;
        eb.on_failure(None, callee, t0);
        eb.on_failure(None, callee, t0);
        let t1 = t0 + SimDuration::from_secs(1);
        assert!(eb.allow(None, callee, t1));
        eb.on_failure(None, callee, t1);
        assert_eq!(eb.state(None, callee), BreakerState::Open);
        // The re-open restarts the cooldown from the probe failure.
        assert!(!eb.allow(None, callee, t1 + SimDuration::from_millis(900)));
        assert!(eb.allow(None, callee, t1 + SimDuration::from_secs(1)));
    }

    #[test]
    fn edges_are_independent() {
        let cfg = BreakerConfig {
            failure_threshold: 0.5,
            min_calls: 2,
            ..BreakerConfig::default()
        };
        let mut eb = EdgeBreakers::new(cfg);
        let t = SimTime::ZERO;
        eb.on_failure(None, ServiceId(1), t);
        eb.on_failure(None, ServiceId(1), t);
        assert_eq!(eb.state(None, ServiceId(1)), BreakerState::Open);
        // Same callee, different caller: separate edge, still closed.
        assert_eq!(
            eb.state(Some(ServiceId(0)), ServiceId(1)),
            BreakerState::Closed
        );
        assert!(eb.allow(Some(ServiceId(0)), ServiceId(1), t));
    }

    #[test]
    fn stats_accumulate_and_report_any() {
        let mut a = ResilienceStats::default();
        assert!(!a.any());
        let b = ResilienceStats {
            doomed_cancelled: 2,
            retries_suppressed: 3,
            ..ResilienceStats::default()
        };
        a.add(&b);
        a.add(&b);
        assert_eq!(a.doomed_cancelled, 4);
        assert_eq!(a.retries_suppressed, 6);
        assert!(a.any());
    }
}
