//! Virtual gateway shards over one simulated cluster.
//!
//! The sharded control plane (see `topfull::shard`) models N replicated
//! front doors in front of a single backend fleet. Running N separate
//! engines would distort the physics (capacity, queueing, and latency
//! all scale with pod counts, which don't divide evenly), so the sim
//! keeps ONE engine as ground truth and *slices* its controller-facing
//! [`ClusterObservation`] into per-shard views: API arrival rates split
//! by shard weight, integer service counters apportioned exactly
//! (largest remainder), and shared-backend signals (utilization,
//! latency percentiles) replicated — each gateway shard scrapes the
//! same cAdvisor fleet, so each sees the same utilization.
//!
//! The slice is built so that the shard plane's weighted merge of all
//! slices reproduces the original observation (round-trip identity up
//! to float error), which is exactly the property `tests/sharding.rs`
//! pins.
//!
//! [`ShardFault`] schedules the failure modes the robustness plane must
//! absorb: telemetry partition of one shard, abrupt shard death (its
//! clients fail over to the survivors), and loss of the central
//! controller.

use crate::observe::ClusterObservation;
use crate::resilience::ResilienceStats;
use simnet::SimTime;

/// One scheduled shard-plane fault.
#[derive(Clone, Debug)]
pub enum ShardFault {
    /// Telemetry partition: the shard keeps serving traffic, but its
    /// reports never reach the controller and limit pushes never reach
    /// the shard (it must degrade locally).
    Dropout {
        shard: usize,
        from: SimTime,
        until: SimTime,
    },
    /// The shard's gateway dies abruptly at `at`: it stops serving and
    /// reporting forever; its client share fails over to the survivors.
    Kill { shard: usize, at: SimTime },
    /// The central controller is unreachable for every shard.
    ControllerLoss { from: SimTime, until: SimTime },
}

/// Slices one engine's observation into per-shard views under a static
/// client-affinity weighting plus a fault schedule.
#[derive(Clone, Debug)]
pub struct ShardSlicer {
    /// Normalized share of client traffic pinned to each shard.
    weights: Vec<f64>,
    faults: Vec<ShardFault>,
}

impl ShardSlicer {
    /// `weights = None` gives a uniform split. Explicit weights must be
    /// non-negative, sum to something positive, and match `shards`.
    pub fn new(shards: usize, weights: Option<Vec<f64>>) -> Result<ShardSlicer, String> {
        if shards == 0 {
            return Err("sharding requires at least one shard".into());
        }
        let weights = match weights {
            None => vec![1.0 / shards as f64; shards],
            Some(w) => {
                if w.len() != shards {
                    return Err(format!(
                        "sharding: {} weights given for {shards} shards",
                        w.len()
                    ));
                }
                if w.iter().any(|x| !x.is_finite() || *x < 0.0) {
                    return Err("sharding: weights must be finite and non-negative".into());
                }
                let sum: f64 = w.iter().sum();
                if sum <= 0.0 {
                    return Err("sharding: weights must sum to a positive value".into());
                }
                w.iter().map(|x| x / sum).collect()
            }
        };
        Ok(ShardSlicer {
            weights,
            faults: Vec::new(),
        })
    }

    pub fn with_faults(mut self, faults: Vec<ShardFault>) -> Self {
        self.faults = faults;
        self
    }

    pub fn shards(&self) -> usize {
        self.weights.len()
    }

    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Which shards are serving traffic at `t` (not killed).
    pub fn serving(&self, t: SimTime) -> Vec<bool> {
        let mut up = vec![true; self.shards()];
        for f in &self.faults {
            if let ShardFault::Kill { shard, at } = f {
                if *shard < up.len() && t >= *at {
                    up[*shard] = false;
                }
            }
        }
        up
    }

    /// Which shards' telemetry reaches the controller at `t` (serving
    /// and not inside a dropout window).
    pub fn reporting(&self, t: SimTime) -> Vec<bool> {
        let mut rep = self.serving(t);
        for f in &self.faults {
            if let ShardFault::Dropout { shard, from, until } = f {
                if *shard < rep.len() && t >= *from && t < *until {
                    rep[*shard] = false;
                }
            }
        }
        rep
    }

    /// Is the central controller unreachable at `t`?
    pub fn controller_lost(&self, t: SimTime) -> bool {
        self.faults.iter().any(|f| match f {
            ShardFault::ControllerLoss { from, until } => t >= *from && t < *until,
            _ => false,
        })
    }

    /// Effective traffic share per shard at `t`: a killed shard's
    /// clients fail over, so its weight is redistributed across the
    /// surviving shards proportionally. Zero everywhere only if every
    /// shard is dead.
    pub fn effective_weights(&self, t: SimTime) -> Vec<f64> {
        let serving = self.serving(t);
        let alive_sum: f64 = self
            .weights
            .iter()
            .zip(&serving)
            .filter(|(_, up)| **up)
            .map(|(w, _)| *w)
            .sum();
        self.weights
            .iter()
            .zip(&serving)
            .map(|(w, up)| {
                if *up && alive_sum > 0.0 {
                    w / alive_sum
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Slice `obs` into per-shard local views at `t`. A killed shard
    /// yields `None`; a dropped-out shard still yields its local view
    /// (it keeps serving — only the *report* to the controller is
    /// suppressed, which [`ShardSlicer::reporting`] tracks).
    pub fn slice(&self, obs: &ClusterObservation, t: SimTime) -> Vec<Option<ClusterObservation>> {
        let n = self.shards();
        let serving = self.serving(t);
        let w = self.effective_weights(t);

        // Integer service counters are apportioned exactly so that the
        // per-shard views sum back to the engine's ground truth.
        let svc_parts: Vec<ServicePartition> = obs
            .services
            .iter()
            .map(|s| ServicePartition {
                alive_pods: apportion(u64::from(s.alive_pods), &w),
                desired_pods: apportion(u64::from(s.desired_pods), &w),
                queue_len: apportion(s.queue_len, &w),
                started_calls: apportion(s.started_calls, &w),
                dropped_calls: apportion(s.dropped_calls, &w),
            })
            .collect();
        let res = resilience_partition(&obs.resilience, &w);

        (0..n)
            .map(|s| {
                if !serving[s] {
                    return None;
                }
                let mut view = obs.clone();
                for (svc, part) in view.services.iter_mut().zip(&svc_parts) {
                    svc.alive_pods = part.alive_pods[s] as u32;
                    svc.desired_pods = part.desired_pods[s] as u32;
                    svc.queue_len = part.queue_len[s];
                    svc.started_calls = part.started_calls[s];
                    svc.dropped_calls = part.dropped_calls[s];
                    // utilization and mean_queuing_delay stay as-is:
                    // every shard scrapes the same shared backend.
                }
                for api in view.apis.iter_mut() {
                    api.offered *= w[s];
                    api.admitted *= w[s];
                    api.goodput *= w[s];
                    api.slo_violated *= w[s];
                    api.failed *= w[s];
                    // Latency percentiles are backend-wide; rate_limit
                    // is overwritten by the harness with the shard's
                    // current quota.
                }
                view.resilience = res[s];
                Some(view)
            })
            .collect()
    }
}

struct ServicePartition {
    alive_pods: Vec<u64>,
    desired_pods: Vec<u64>,
    queue_len: Vec<u64>,
    started_calls: Vec<u64>,
    dropped_calls: Vec<u64>,
}

fn resilience_partition(r: &ResilienceStats, w: &[f64]) -> Vec<ResilienceStats> {
    let doomed = apportion(r.doomed_cancelled, w);
    let deadline = apportion(r.deadline_rejected, w);
    let client = apportion(r.client_cancelled, w);
    let issued = apportion(r.retries_issued, w);
    let suppressed = apportion(r.retries_suppressed, w);
    let rejected = apportion(r.breaker_rejected, w);
    let transitions = apportion(r.breaker_transitions, w);
    (0..w.len())
        .map(|s| ResilienceStats {
            doomed_cancelled: doomed[s],
            deadline_rejected: deadline[s],
            client_cancelled: client[s],
            retries_issued: issued[s],
            retries_suppressed: suppressed[s],
            breaker_rejected: rejected[s],
            breaker_transitions: transitions[s],
        })
        .collect()
}

/// Largest-remainder apportionment of `v` across `weights` (assumed to
/// sum to ~1 over the non-zero entries): exact conservation, ties
/// broken toward the lowest index for determinism.
pub fn apportion(v: u64, weights: &[f64]) -> Vec<u64> {
    let n = weights.len();
    let mut out = vec![0u64; n];
    let wsum: f64 = weights.iter().filter(|x| x.is_finite() && **x > 0.0).sum();
    if v == 0 || wsum <= 0.0 {
        return out;
    }
    let mut fracs: Vec<(usize, f64)> = Vec::with_capacity(n);
    let mut assigned = 0u64;
    for (i, w) in weights.iter().enumerate() {
        let w = if w.is_finite() && *w > 0.0 { *w } else { 0.0 };
        let exact = v as f64 * (w / wsum);
        let floor = exact.floor();
        out[i] = floor as u64;
        assigned += out[i];
        fracs.push((i, exact - floor));
    }
    // Remainder seats go to the largest fractional parts.
    let mut rest = v.saturating_sub(assigned);
    fracs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut cursor = 0usize;
    while rest > 0 && cursor < fracs.len() {
        let (i, _) = fracs[cursor];
        if weights[i].is_finite() && weights[i] > 0.0 {
            out[i] += 1;
            rest -= 1;
        }
        cursor += 1;
    }
    // Pathological float edge (all remainders zero-weighted): dump the
    // leftovers on the heaviest shard so the total is always conserved.
    if rest > 0 {
        let heaviest = weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0);
        out[heaviest] += rest;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ApiId, BusinessPriority, ServiceId};
    use simnet::SimDuration;

    fn obs() -> ClusterObservation {
        ClusterObservation {
            now: SimTime::from_secs(10),
            window: SimDuration::from_secs(1),
            services: vec![crate::observe::ServiceWindow {
                service: ServiceId(0),
                name: "backend".into(),
                utilization: 0.9,
                alive_pods: 7,
                desired_pods: 8,
                queue_len: 13,
                mean_queuing_delay: SimDuration::from_millis(5),
                started_calls: 101,
                dropped_calls: 3,
            }],
            apis: vec![crate::observe::ApiWindow {
                api: ApiId(0),
                name: "get".into(),
                business: BusinessPriority(1),
                offered: 300.0,
                admitted: 240.0,
                goodput: 210.0,
                slo_violated: 15.0,
                failed: 15.0,
                p50: Some(SimDuration::from_millis(20)),
                p95: Some(SimDuration::from_millis(60)),
                p99: Some(SimDuration::from_millis(90)),
                rate_limit: 250.0,
            }],
            api_paths: vec![vec![ServiceId(0)]],
            slo: SimDuration::from_millis(100),
            resilience: ResilienceStats::default(),
            slo_burn: Vec::new(),
        }
    }

    #[test]
    fn apportion_conserves_and_is_deterministic() {
        for v in [0u64, 1, 7, 100, 101, 999] {
            for w in [
                vec![1.0, 1.0, 1.0],
                vec![0.5, 0.3, 0.2],
                vec![0.0, 1.0, 0.0],
                vec![0.9, 0.05, 0.05],
            ] {
                let parts = apportion(v, &w);
                assert_eq!(parts.iter().sum::<u64>(), v, "v={v} w={w:?}");
                assert_eq!(parts, apportion(v, &w), "non-deterministic");
            }
        }
        // Zero-weight shards get nothing.
        assert_eq!(apportion(10, &[0.0, 1.0])[0], 0);
    }

    #[test]
    fn slices_sum_back_to_ground_truth() {
        let slicer = ShardSlicer::new(3, Some(vec![0.5, 0.3, 0.2])).unwrap();
        let o = obs();
        let views = slicer.slice(&o, SimTime::from_secs(10));
        let views: Vec<_> = views.into_iter().flatten().collect();
        assert_eq!(views.len(), 3);
        let offered: f64 = views.iter().map(|v| v.apis[0].offered).sum();
        let goodput: f64 = views.iter().map(|v| v.apis[0].goodput).sum();
        let pods: u32 = views.iter().map(|v| v.services[0].alive_pods).sum();
        let started: u64 = views.iter().map(|v| v.services[0].started_calls).sum();
        assert!((offered - 300.0).abs() < 1e-9);
        assert!((goodput - 210.0).abs() < 1e-9);
        assert_eq!(pods, 7);
        assert_eq!(started, 101);
        // Shared-backend signals replicate unchanged.
        for v in &views {
            assert_eq!(v.services[0].utilization, 0.9);
            assert_eq!(v.apis[0].p99, Some(SimDuration::from_millis(90)));
        }
    }

    #[test]
    fn kill_fails_traffic_over_to_survivors() {
        let slicer = ShardSlicer::new(3, None)
            .unwrap()
            .with_faults(vec![ShardFault::Kill {
                shard: 1,
                at: SimTime::from_secs(5),
            }]);
        let before = slicer.effective_weights(SimTime::from_secs(4));
        assert!((before[1] - 1.0 / 3.0).abs() < 1e-12);
        let after = slicer.effective_weights(SimTime::from_secs(5));
        assert_eq!(after[1], 0.0);
        assert!((after[0] - 0.5).abs() < 1e-12);
        assert!((after[2] - 0.5).abs() < 1e-12);

        let views = slicer.slice(&obs(), SimTime::from_secs(6));
        assert!(views[1].is_none(), "killed shard has no view");
        let total: f64 = views.iter().flatten().map(|v| v.apis[0].offered).sum();
        assert!((total - 300.0).abs() < 1e-9, "failover conserves traffic");
    }

    #[test]
    fn dropout_suppresses_reports_but_not_serving() {
        let slicer = ShardSlicer::new(2, None)
            .unwrap()
            .with_faults(vec![ShardFault::Dropout {
                shard: 0,
                from: SimTime::from_secs(10),
                until: SimTime::from_secs(20),
            }]);
        let t = SimTime::from_secs(15);
        assert_eq!(slicer.serving(t), vec![true, true]);
        assert_eq!(slicer.reporting(t), vec![false, true]);
        assert!(slicer.slice(&obs(), t)[0].is_some());
        assert_eq!(slicer.reporting(SimTime::from_secs(20)), vec![true, true]);
    }

    #[test]
    fn controller_loss_window() {
        let slicer =
            ShardSlicer::new(2, None)
                .unwrap()
                .with_faults(vec![ShardFault::ControllerLoss {
                    from: SimTime::from_secs(30),
                    until: SimTime::from_secs(40),
                }]);
        assert!(!slicer.controller_lost(SimTime::from_secs(29)));
        assert!(slicer.controller_lost(SimTime::from_secs(30)));
        assert!(!slicer.controller_lost(SimTime::from_secs(40)));
    }

    #[test]
    fn rejects_bad_weights() {
        assert!(ShardSlicer::new(0, None).is_err());
        assert!(ShardSlicer::new(2, Some(vec![1.0])).is_err());
        assert!(ShardSlicer::new(2, Some(vec![-1.0, 2.0])).is_err());
        assert!(ShardSlicer::new(2, Some(vec![0.0, 0.0])).is_err());
    }
}
