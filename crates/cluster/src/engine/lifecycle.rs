//! The request lifecycle: arrival, dispatch, subtree fan-out,
//! completion, and teardown.
//!
//! Every point where a cross-cutting concern can veto a call goes
//! through [`Planes::check`](super::planes::Planes::check): the caller
//! side before dispatch, the service side on arrival, and the pod side
//! before CPU is spent. The handlers here apply the returned
//! [`Verdict`] mechanically — which counters move and which requests
//! fail is decided by the planes.

use super::planes::{CallCtx, LifecyclePoint, Verdict};
use super::pods::{InFlight, QueuedCall};
use super::{Engine, Ev, NodeRt, Parked, RequestRt};
use crate::front::PreVerdict;
use crate::topology::CallNode;
use crate::tracing::{Span, SpanVerdict};
use crate::types::{RequestMeta, RequestOutcome, ServiceId};
use crate::workload::{Arrival, ResponseKind, UserRef};
use rand::rngs::SmallRng;
use rand::Rng;
use rand_distr::{Distribution, LogNormal};
use simnet::{SimDuration, SimTime};

impl Engine {
    pub(super) fn schedule_arrivals(&mut self, now: SimTime, arrivals: Vec<Arrival>) {
        for a in arrivals {
            let at = a.at.max(now);
            self.queue.schedule(at, Ev::Arrival(Arrival { at, ..a }));
            if let Some(user) = a.user {
                if let Some(t) = self.workload.client_timeout() {
                    self.queue.schedule(at + t, Ev::ClientTimeout { user });
                }
            }
        }
    }

    pub(super) fn on_workload_tick(&mut self, now: SimTime) {
        let arrivals = self.workload.on_tick(now, &mut self.rng);
        self.schedule_arrivals(now, arrivals);
        let next = now + self.workload.tick_interval();
        self.queue.schedule(next, Ev::WorkloadTick);
    }

    pub(super) fn on_arrival(&mut self, now: SimTime, a: Arrival) {
        let acc = &mut self.metrics.api_accums[a.api.idx()];
        acc.offered += 1;
        self.metrics.api_totals[a.api.idx()].offered += 1;
        // Front-door stages (coalescing, priority) run before the token
        // bucket; requests they absorb never reach it. Keys and user
        // priorities come from the plane's own RNG fork, so the base
        // streams (and therefore runs without the plane) are unchanged.
        let mut front_user = None;
        let mut lead_key = None;
        if let Some(front) = self.front.as_mut() {
            let business = self.topo.api(a.api).business.0;
            let user: u8 = front.rng.gen_range(0..=127);
            let space = front.key_space[a.api.idx()];
            let key = (space > 0).then(|| front.rng.gen_range(0..space));
            match front.door.pre_admit(a.api, key, business, user, now) {
                PreVerdict::CacheHit(_) => {
                    // Answered at the gateway without touching the
                    // cluster: admitted + good at ~zero latency.
                    let acc = &mut self.metrics.api_accums[a.api.idx()];
                    acc.admitted += 1;
                    acc.good += 1;
                    acc.latencies.record(SimDuration::ZERO);
                    let tot = &mut self.metrics.api_totals[a.api.idx()];
                    tot.admitted += 1;
                    tot.good += 1;
                    self.notify_response(now, a.user, ResponseKind::Success);
                    return;
                }
                PreVerdict::Follower { leader } => {
                    self.metrics.api_accums[a.api.idx()].admitted += 1;
                    self.metrics.api_totals[a.api.idx()].admitted += 1;
                    front.parked.entry(leader).or_default().push(Parked {
                        user: a.user,
                        arrival: now,
                    });
                    return;
                }
                PreVerdict::Shed { .. } => {
                    self.metrics.api_totals[a.api.idx()].rejected_shed += 1;
                    self.notify_response(now, a.user, ResponseKind::Failed);
                    return;
                }
                PreVerdict::Proceed { lead } => {
                    front_user = Some(user);
                    if lead {
                        lead_key = key;
                    }
                }
            }
        }
        if !self.gateway.try_admit(a.api, now) {
            self.metrics.api_totals[a.api.idx()].rejected_entry += 1;
            // Tracing backends see rejections too: a zero-duration span
            // at the API's entry service carrying the admission verdict,
            // so live and simulated traces stay comparable. (The id 0 is
            // a placeholder — rejected requests are never materialized.)
            if let Some(tracer) = self.tracer.as_mut() {
                let entry = self.topo.api(a.api).paths[0].1.service;
                tracer.record(Span {
                    request: 0,
                    api: a.api,
                    service: entry,
                    parent: None,
                    start: now,
                    end: now,
                    verdict: SpanVerdict::RejectedAtEntry,
                });
            }
            self.notify_response(now, a.user, ResponseKind::Failed);
            return;
        }
        self.metrics.api_accums[a.api.idx()].admitted += 1;
        self.metrics.api_totals[a.api.idx()].admitted += 1;

        // Materialize the request: sample an execution path, flatten it.
        let spec = self.topo.api(a.api);
        let path_idx = sample_weighted(&spec.paths, &mut self.rng);
        let mut nodes = Vec::with_capacity(spec.paths[path_idx].1.len());
        flatten(&spec.paths[path_idx].1, None, &mut nodes);
        let meta = RequestMeta {
            api: a.api,
            business: spec.business,
            user: match front_user {
                Some(u) => u,
                None => self.rng.gen_range(0..=127),
            },
            arrival: now,
            deadline: self.planes.resilience.deadline_budget.map(|b| now + b),
        };
        let id = self.next_req_id;
        self.next_req_id += 1;
        self.requests.insert(
            id,
            RequestRt {
                meta,
                user: a.user,
                nodes,
            },
        );
        if self.planes.resilience.cancel_doomed {
            if let Some(u) = a.user {
                self.user_reqs.insert((u.id, u.gen), id);
            }
        }
        if let Some(key) = lead_key {
            let front = self.front.as_mut().expect("lead implies front door");
            front.door.begin_flight(a.api, key, id);
            front.flights.insert(id, (a.api, key));
        }
        self.dispatch_call(now, id, 0);
    }

    /// Apply a [`Verdict::Fail`]: charge the dropped call and the edge
    /// breaker as the verdict directs, then fail the owning request.
    fn apply_fail(
        &mut self,
        now: SimTime,
        req: u64,
        ctx: &CallCtx,
        outcome: RequestOutcome,
        drop_at_callee: bool,
        edge_failure: bool,
    ) {
        if drop_at_callee {
            self.services[ctx.callee.idx()].dropped_calls += 1;
        }
        if edge_failure {
            self.planes
                .resilience
                .on_edge_failure(now, ctx.caller, ctx.callee);
        }
        self.fail_request(now, req, outcome);
    }

    /// Dispatch the call for `node` of request `req`: consult the planes
    /// on the caller side (deadline, circuit breaker, the downstream's
    /// advertised admission threshold, network faults) and, if admitted,
    /// deliver after one hop of latency.
    pub(super) fn dispatch_call(&mut self, now: SimTime, req: u64, node: u32) {
        let Some(r) = self.requests.get(&req) else {
            return;
        };
        let svc = r.nodes[node as usize].service;
        let cost = r.nodes[node as usize].cost;
        let ctx = CallCtx {
            meta: Some(r.meta),
            caller: r.nodes[node as usize]
                .parent
                .map(|p| r.nodes[p as usize].service),
            callee: svc,
        };
        match self.planes.check(LifecyclePoint::Dispatch, &ctx, now) {
            Verdict::Proceed { extra } => {
                self.queue.schedule(
                    now + self.cfg.hop_latency + extra,
                    Ev::CallArrive {
                        req,
                        node,
                        svc,
                        cost,
                    },
                );
            }
            Verdict::Cancel => {}
            Verdict::Fail {
                outcome,
                drop_at_callee,
                edge_failure,
            } => self.apply_fail(now, req, &ctx, outcome, drop_at_callee, edge_failure),
        }
    }

    fn record_edge_success(&mut self, now: SimTime, req: u64, node: u32, callee: ServiceId) {
        if self.planes.resilience.breakers.is_none() {
            return;
        }
        // The caller is the node's parent; unknowable once the request is
        // gone (wasted work), in which case nothing is recorded.
        let Some(r) = self.requests.get(&req) else {
            return;
        };
        let caller = r.nodes[node as usize]
            .parent
            .map(|p| r.nodes[p as usize].service);
        self.planes.resilience.on_edge_success(now, caller, callee);
    }

    pub(super) fn on_call_arrive(
        &mut self,
        now: SimTime,
        req: u64,
        node: u32,
        svc_id: ServiceId,
        cost: SimDuration,
    ) {
        // The request may have failed elsewhere already; by default the
        // call still arrives and consumes capacity (wasted work), but the
        // planes may recognize the dead request and drop the call at the
        // door, or reject it for an expired deadline.
        let r = self.requests.get(&req);
        let request_alive = r.is_some();
        let ctx = CallCtx {
            meta: r.map(|r| r.meta),
            caller: r.and_then(|r| {
                r.nodes[node as usize]
                    .parent
                    .map(|p| r.nodes[p as usize].service)
            }),
            callee: svc_id,
        };
        match self.planes.check(LifecyclePoint::Arrival, &ctx, now) {
            Verdict::Proceed { .. } => {}
            Verdict::Cancel => return,
            Verdict::Fail {
                outcome,
                drop_at_callee,
                edge_failure,
            } => {
                self.apply_fail(now, req, &ctx, outcome, drop_at_callee, edge_failure);
                return;
            }
        }
        let spec_q = self.topo.service(svc_id).queue_capacity as usize;
        let svc = &mut self.services[svc_id.idx()];
        // Shortest-queue dispatch across ready pods.
        let pod_idx = svc
            .pods
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_ready())
            .min_by_key(|(i, p)| (p.load(), *i))
            .map(|(i, _)| i);
        let Some(pi) = pod_idx else {
            // No pod alive: the request fails here.
            svc.dropped_calls += 1;
            if request_alive {
                self.planes
                    .resilience
                    .on_edge_failure(now, ctx.caller, svc_id);
                self.fail_request(now, req, RequestOutcome::PodCrashed(svc_id));
            }
            return;
        };
        if svc.pods[pi].queue.len() >= spec_q {
            svc.dropped_calls += 1;
            if request_alive {
                self.planes
                    .resilience
                    .on_edge_failure(now, ctx.caller, svc_id);
                self.fail_request(now, req, RequestOutcome::QueueOverflow(svc_id));
            }
            return;
        }
        svc.pods[pi].queue.push_back(QueuedCall {
            req,
            node,
            cost,
            enqueued: now,
        });
        if svc.pods[pi].busy.is_none() {
            self.start_processing(now, svc_id, pi);
        }
    }

    /// The service checks each queued call with the planes before
    /// spending CPU on it: work for an already-cancelled request is
    /// skipped (doomed-work cancellation), and a call whose deadline
    /// expired while queued fails without executing.
    pub(super) fn start_processing(&mut self, now: SimTime, svc_id: ServiceId, pod: usize) {
        let call = loop {
            let Some(call) = self.services[svc_id.idx()].pods[pod].queue.pop_front() else {
                return;
            };
            let ctx = CallCtx {
                meta: self.requests.get(&call.req).map(|r| r.meta),
                caller: None,
                callee: svc_id,
            };
            match self.planes.check(LifecyclePoint::Process, &ctx, now) {
                Verdict::Proceed { .. } => break call,
                Verdict::Cancel => {}
                Verdict::Fail {
                    outcome,
                    drop_at_callee,
                    edge_failure,
                } => {
                    self.apply_fail(now, call.req, &ctx, outcome, drop_at_callee, edge_failure);
                }
            }
        };
        let speed = self.topo.service(svc_id).pod_speed;
        let jitter = self.sample_jitter();
        let slow = self.planes.faults.slow_factor(now, svc_id);
        let svc = &mut self.services[svc_id.idx()];
        svc.queuing_delay_ns += now.duration_since(call.enqueued).as_nanos();
        svc.started_calls += 1;
        let proc = call
            .cost
            .mul_f64(jitter * slow / speed)
            .max(SimDuration::from_nanos(1));
        let done_at = now + proc;
        svc.pods[pod].busy = Some(InFlight {
            req: call.req,
            node: call.node,
            started: now,
            done_at,
        });
        let epoch = svc.pods[pod].epoch;
        self.queue.schedule(
            done_at,
            Ev::PodDone {
                svc: svc_id,
                pod: pod as u32,
                epoch,
            },
        );
    }

    fn sample_jitter(&mut self) -> f64 {
        let sigma = self.cfg.service_jitter;
        if sigma <= 0.0 {
            return 1.0;
        }
        // Mean-preserving log-normal: E[exp(N(-σ²/2, σ²))] = 1.
        let ln = LogNormal::new(-sigma * sigma / 2.0, sigma).expect("valid lognormal");
        ln.sample(&mut self.rng)
    }

    pub(super) fn on_pod_done(&mut self, now: SimTime, svc_id: ServiceId, pod: u32, epoch: u64) {
        let win_start = self.metrics.window_start;
        let svc = &mut self.services[svc_id.idx()];
        let p = &mut svc.pods[pod as usize];
        if p.epoch != epoch || !p.is_ready() {
            return; // stale completion from before a crash
        }
        let Some(fl) = p.busy.take() else {
            return;
        };
        debug_assert_eq!(fl.done_at, now, "PodDone at wrong time");
        // Busy-time accounting within the current window.
        svc.busy_ns += now.duration_since(fl.started.max(win_start)).as_nanos();
        // Next queued call starts immediately.
        if !svc.pods[pod as usize].queue.is_empty() {
            self.start_processing(now, svc_id, pod as usize);
        }
        // Emit the span to the tracing collector.
        if let Some(tracer) = self.tracer.as_mut() {
            if let Some(r) = self.requests.get(&fl.req) {
                let parent = r.nodes[fl.node as usize]
                    .parent
                    .map(|p| r.nodes[p as usize].service);
                tracer.record(Span {
                    request: fl.req,
                    api: r.meta.api,
                    service: svc_id,
                    parent,
                    start: fl.started,
                    end: now,
                    verdict: SpanVerdict::Admitted,
                });
            }
        }
        // A completed call is a success signal for its inbound edge.
        self.record_edge_success(now, fl.req, fl.node, svc_id);
        // Propagate completion of this node's processing.
        self.on_node_processed(now, fl.req, fl.node);
    }

    /// A node finished its CPU work: dispatch its children, or complete.
    fn on_node_processed(&mut self, now: SimTime, req: u64, node: u32) {
        let Some(r) = self.requests.get_mut(&req) else {
            return;
        };
        let children = r.nodes[node as usize].children.clone();
        if children.is_empty() {
            self.on_node_complete(now, req, node);
        } else {
            r.nodes[node as usize].pending = children.len() as u32;
            for c in children {
                self.dispatch_call(now, req, c);
                // A child dispatch can fail the whole request (admission
                // rejection); stop dispatching the rest if so.
                if !self.requests.contains_key(&req) {
                    return;
                }
            }
        }
    }

    /// A node's subtree fully completed (processing + all children).
    pub(super) fn on_node_complete(&mut self, now: SimTime, req: u64, node: u32) {
        let Some(r) = self.requests.get_mut(&req) else {
            return;
        };
        match r.nodes[node as usize].parent {
            None => self.complete_request(now, req),
            Some(parent) => {
                let pn = &mut r.nodes[parent as usize];
                debug_assert!(pn.pending > 0, "join underflow");
                pn.pending -= 1;
                if pn.pending == 0 {
                    // The parent's response travels one hop back.
                    self.queue.schedule(
                        now + self.cfg.hop_latency,
                        Ev::NodeJoin { req, node: parent },
                    );
                }
            }
        }
    }

    fn complete_request(&mut self, now: SimTime, req: u64) {
        let Some(r) = self.requests.remove(&req) else {
            return;
        };
        if let Some(u) = r.user {
            self.user_reqs.remove(&(u.id, u.gen));
        }
        let api = r.meta.api;
        let latency = now.duration_since(r.meta.arrival);
        let acc = &mut self.metrics.api_accums[api.idx()];
        acc.latencies.record(latency);
        let kind = if latency <= self.cfg.slo {
            acc.good += 1;
            self.metrics.api_totals[api.idx()].good += 1;
            ResponseKind::Success
        } else {
            acc.slo_violated += 1;
            self.metrics.api_totals[api.idx()].slo_violated += 1;
            ResponseKind::Late
        };
        self.notify_response(now, r.user, kind);
        self.settle_flight(now, req, true);
    }

    pub(super) fn fail_request(&mut self, now: SimTime, req: u64, _outcome: RequestOutcome) {
        let Some(r) = self.requests.remove(&req) else {
            return;
        };
        if let Some(u) = r.user {
            self.user_reqs.remove(&(u.id, u.gen));
        }
        let api = r.meta.api;
        self.metrics.api_accums[api.idx()].failed += 1;
        self.metrics.api_totals[api.idx()].failed += 1;
        self.notify_response(now, r.user, ResponseKind::Failed);
        self.settle_flight(now, req, false);
    }

    /// If `req` led a coalescing flight, resolve it: fill (or clear)
    /// the response cache and settle every parked follower — each with
    /// its own arrival-to-now latency against the SLO on success, or a
    /// failure on leader failure (followers get errors, never hangs).
    fn settle_flight(&mut self, now: SimTime, req: u64, ok: bool) {
        let Some(front) = self.front.as_mut() else {
            return;
        };
        let Some((api, key)) = front.flights.remove(&req) else {
            return;
        };
        if ok {
            front.door.complete_flight(api, key, "ok".into(), now);
        } else {
            front.door.fail_flight(api, key);
        }
        let parked = front.parked.remove(&req).unwrap_or_default();
        for p in parked {
            let kind = if ok {
                let latency = now.duration_since(p.arrival);
                let acc = &mut self.metrics.api_accums[api.idx()];
                acc.latencies.record(latency);
                if latency <= self.cfg.slo {
                    acc.good += 1;
                    self.metrics.api_totals[api.idx()].good += 1;
                    ResponseKind::Success
                } else {
                    acc.slo_violated += 1;
                    self.metrics.api_totals[api.idx()].slo_violated += 1;
                    ResponseKind::Late
                }
            } else {
                self.metrics.api_accums[api.idx()].failed += 1;
                self.metrics.api_totals[api.idx()].failed += 1;
                ResponseKind::Failed
            };
            self.notify_response(now, p.user, kind);
        }
    }

    fn notify_response(&mut self, now: SimTime, user: Option<UserRef>, kind: ResponseKind) {
        if let Some(u) = user {
            let follow = self.workload.on_response(u, kind, now, &mut self.rng);
            self.schedule_arrivals(now, follow);
        }
    }

    pub(super) fn on_client_timeout(&mut self, now: SimTime, user: UserRef) {
        // The workload ignores stale generations internally, so this is
        // safe to fire unconditionally. Notifying first bumps the user's
        // generation, so the teardown's failure notification below is
        // recognized as stale and cannot resurrect the user.
        let follow = self
            .workload
            .on_response(user, ResponseKind::Timeout, now, &mut self.rng);
        self.schedule_arrivals(now, follow);
        // With cancellation enabled, the abandoned request's in-flight
        // subtree is torn down instead of silently finishing: queued
        // calls get skipped at their pods, scheduled hops evaporate on
        // arrival. (In-flight CPU work still runs to completion — a
        // busy pod cannot be preempted mid-call.)
        if self.planes.resilience.cancel_doomed {
            if let Some(req) = self.user_reqs.remove(&(user.id, user.gen)) {
                if self.requests.contains_key(&req) {
                    self.planes.resilience.on_client_cancelled();
                    self.fail_request(now, req, RequestOutcome::ClientTimeout);
                }
            }
        }
    }
}

/// Flatten a call tree into `NodeRt`s, parents before children.
pub(super) fn flatten(node: &CallNode, parent: Option<u32>, out: &mut Vec<NodeRt>) {
    let idx = out.len() as u32;
    out.push(NodeRt {
        service: node.service,
        cost: node.cost,
        parent,
        children: Vec::with_capacity(node.children.len()),
        pending: 0,
    });
    for c in &node.children {
        let child_idx = out.len() as u32;
        out[idx as usize].children.push(child_idx);
        flatten(c, Some(idx), out);
    }
}

/// Sample an index from weighted `(weight, _)` pairs.
pub(super) fn sample_weighted<T>(items: &[(f64, T)], rng: &mut SmallRng) -> usize {
    if items.len() == 1 {
        return 0;
    }
    let total: f64 = items.iter().map(|(w, _)| w.max(0.0)).sum();
    if total <= 0.0 {
        return 0;
    }
    let mut x = rng.gen::<f64>() * total;
    for (i, (w, _)) in items.iter().enumerate() {
        x -= w.max(0.0);
        if x <= 0.0 {
            return i;
        }
    }
    items.len() - 1
}
