//! The pod and service runtime: queues, crash loops, epochs, scaling.
//!
//! A [`Pod`] is a single-threaded executor with a bounded queue; a
//! [`ServiceRt`] is the per-service collection of pods plus the window
//! accumulators the metrics module drains. This module also owns
//! everything that changes the pod population: crash-loop probes,
//! injected pod kills, the HPA reconciliation, and VM-pool scheduling.

use super::{Engine, Ev};
use crate::observe::ClusterObservation;
use crate::types::{RequestOutcome, ServiceId};
use simnet::{SimDuration, SimTime};
use std::collections::VecDeque;

/// A call waiting in a pod queue. The cost is embedded so wasted work is
/// still executed even if the owning request has already failed.
#[derive(Clone, Copy, Debug)]
pub(super) struct QueuedCall {
    pub(super) req: u64,
    pub(super) node: u32,
    pub(super) cost: SimDuration,
    pub(super) enqueued: SimTime,
}

/// A call being processed by a pod.
#[derive(Clone, Copy, Debug)]
pub(super) struct InFlight {
    pub(super) req: u64,
    pub(super) node: u32,
    pub(super) started: SimTime,
    pub(super) done_at: SimTime,
}

#[derive(Clone, Debug, PartialEq)]
pub(super) enum PodPhase {
    Ready,
    /// Crashed or injected-killed; restarting at the given time.
    Down,
    /// Tombstone after scale-down.
    Removed,
}

#[derive(Debug)]
pub(super) struct Pod {
    pub(super) phase: PodPhase,
    /// Bumped on crash so stale `PodDone` events are ignored.
    pub(super) epoch: u64,
    pub(super) queue: VecDeque<QueuedCall>,
    pub(super) busy: Option<InFlight>,
    pub(super) saturated_probes: u32,
    /// Consecutive crash-loop count, for exponential restart backoff
    /// (k8s CrashLoopBackOff: 10 s, 20 s, 40 s, … capped).
    pub(super) crash_count: u32,
}

impl Pod {
    pub(super) fn fresh() -> Self {
        Pod {
            phase: PodPhase::Ready,
            epoch: 0,
            queue: VecDeque::new(),
            busy: None,
            saturated_probes: 0,
            crash_count: 0,
        }
    }

    pub(super) fn is_ready(&self) -> bool {
        self.phase == PodPhase::Ready
    }

    pub(super) fn load(&self) -> usize {
        self.queue.len() + usize::from(self.busy.is_some())
    }

    /// Recommission a tombstoned or crashed slot as a fresh ready pod.
    pub(super) fn recommission(&mut self) {
        self.phase = PodPhase::Ready;
        self.epoch += 1;
        self.saturated_probes = 0;
        self.queue.clear();
        self.busy = None;
    }
}

/// Per-service runtime state.
pub(super) struct ServiceRt {
    pub(super) pods: Vec<Pod>,
    /// Replicas the autoscaler wants.
    pub(super) desired: u32,
    /// Pods allocated vCPUs and starting up (PodReady scheduled).
    pub(super) starting: u32,
    /// Pods waiting for vCPUs.
    pub(super) pending_unscheduled: u32,
    // --- per-window accumulators ---
    pub(super) busy_ns: u64,
    pub(super) queuing_delay_ns: u64,
    pub(super) started_calls: u64,
    pub(super) dropped_calls: u64,
    /// Integral of ready-pod count over the window (pod·ns).
    pub(super) alive_integral_ns: u64,
    pub(super) alive_last_change: SimTime,
}

impl ServiceRt {
    pub(super) fn fresh(replicas: u32) -> Self {
        ServiceRt {
            pods: (0..replicas).map(|_| Pod::fresh()).collect(),
            desired: replicas,
            starting: 0,
            pending_unscheduled: 0,
            busy_ns: 0,
            queuing_delay_ns: 0,
            started_calls: 0,
            dropped_calls: 0,
            alive_integral_ns: 0,
            alive_last_change: SimTime::ZERO,
        }
    }

    pub(super) fn ready_pods(&self) -> u32 {
        self.pods.iter().filter(|p| p.is_ready()).count() as u32
    }

    /// Pods that exist or are being created (the HPA's "current").
    pub(super) fn spec_pods(&self) -> u32 {
        self.pods
            .iter()
            .filter(|p| p.phase != PodPhase::Removed)
            .count() as u32
            + self.starting
            + self.pending_unscheduled
    }

    pub(super) fn accumulate_alive(&mut self, now: SimTime) {
        let ready = u64::from(self.ready_pods());
        let dt = now.duration_since(self.alive_last_change).as_nanos();
        self.alive_integral_ns += ready * dt;
        self.alive_last_change = now;
    }
}

impl Engine {
    /// Immediately bring a service to `total` *ready* pods (experiment
    /// hook emulating an allocation that already completed, e.g. Fig. 16
    /// pre-provisioning or a specialization-training scale-up). Growth
    /// stops early if the VM pool is exhausted; shrinking is not done
    /// here (use the autoscaler for graceful scale-down).
    pub fn grow_service(&mut self, sid: ServiceId, total: u32) {
        let now = self.now();
        self.services[sid.idx()].desired = self.services[sid.idx()].desired.max(total);
        while self.services[sid.idx()].ready_pods() < total {
            if !self.vm_pool.try_allocate_pod() {
                break;
            }
            let svc = &mut self.services[sid.idx()];
            svc.accumulate_alive(now);
            if let Some(p) = svc.pods.iter_mut().find(|p| p.phase == PodPhase::Removed) {
                p.recommission();
            } else {
                svc.pods.push(Pod::fresh());
            }
        }
    }

    pub(super) fn run_probes(&mut self, now: SimTime) {
        let crash = self.cfg.crash;
        for i in 0..self.services.len() {
            let sid = ServiceId(i as u32);
            if !self.topo.service(sid).crash_on_overload {
                continue;
            }
            let cap = self.topo.service(sid).queue_capacity as f64;
            let threshold = (cap * crash.saturation_fraction) as usize;
            for pi in 0..self.services[i].pods.len() {
                let pod = &mut self.services[i].pods[pi];
                if !pod.is_ready() {
                    continue;
                }
                if pod.queue.len() >= threshold.max(1) {
                    pod.saturated_probes += 1;
                } else {
                    if pod.saturated_probes == 0 && pod.crash_count > 0 {
                        // A healthy probe streak decays the backoff.
                        pod.crash_count -= 1;
                    }
                    pod.saturated_probes = 0;
                }
                if pod.saturated_probes >= crash.probes_to_crash {
                    // This crash is number `crash_count + 1`; the backoff
                    // policy (fixed, or capped exponential) sets the delay.
                    let backoff = crash
                        .backoff
                        .delay(crash.restart_delay, pod.crash_count + 1);
                    self.crash_pod(now, sid, pi, backoff);
                }
            }
        }
    }

    /// Crash a pod: lose its backlog and in-flight call, restart later.
    pub(super) fn crash_pod(
        &mut self,
        now: SimTime,
        sid: ServiceId,
        pod: usize,
        restart: SimDuration,
    ) {
        self.crash_events += 1;
        let win_start = self.metrics.window_start;
        let svc = &mut self.services[sid.idx()];
        svc.accumulate_alive(now);
        let p = &mut svc.pods[pod];
        // Credit busy time up to the crash.
        if let Some(fl) = p.busy.take() {
            svc.busy_ns += now.duration_since(fl.started.max(win_start)).as_nanos();
            let req = fl.req;
            svc.dropped_calls += 1;
            self.fail_request(now, req, RequestOutcome::PodCrashed(sid));
        }
        let svc = &mut self.services[sid.idx()];
        let p = &mut svc.pods[pod];
        let dropped: Vec<u64> = p.queue.drain(..).map(|c| c.req).collect();
        svc.dropped_calls += dropped.len() as u64;
        p.phase = PodPhase::Down;
        p.epoch += 1;
        p.saturated_probes = 0;
        p.crash_count = p.crash_count.saturating_add(1);
        let epoch = p.epoch;
        for req in dropped {
            self.fail_request(now, req, RequestOutcome::PodCrashed(sid));
        }
        self.queue.schedule(
            now + restart,
            Ev::PodRestart {
                svc: sid,
                pod: pod as u32,
                epoch,
            },
        );
    }

    pub(super) fn on_pod_restart(&mut self, now: SimTime, sid: ServiceId, pod: u32, epoch: u64) {
        let svc = &mut self.services[sid.idx()];
        if svc.pods[pod as usize].epoch != epoch || svc.pods[pod as usize].phase != PodPhase::Down {
            return;
        }
        svc.accumulate_alive(now);
        let p = &mut svc.pods[pod as usize];
        p.phase = PodPhase::Ready;
        p.saturated_probes = 0;
    }

    pub(super) fn run_hpa(&mut self, now: SimTime, obs: &ClusterObservation) {
        let Some(hpa) = self.hpa.as_mut() else {
            return;
        };
        if !hpa.sync_due(now) {
            return;
        }
        let per_service: Vec<(f64, u32)> = self
            .services
            .iter()
            .zip(obs.services.iter())
            .map(|(rt, w)| (w.utilization, rt.spec_pods()))
            .collect();
        let changes = hpa.sync(now, &per_service);
        for (sid, desired) in changes {
            self.scale_service(now, sid, desired);
        }
    }

    /// Reconcile a service to `desired` replicas.
    pub(super) fn scale_service(&mut self, now: SimTime, sid: ServiceId, desired: u32) {
        let current = self.services[sid.idx()].spec_pods();
        self.services[sid.idx()].desired = desired;
        if desired > current {
            let add = desired - current;
            for _ in 0..add {
                self.create_pod(now, sid);
            }
        } else if desired < current {
            let mut remove = current - desired;
            let svc = &mut self.services[sid.idx()];
            // Drop unscheduled pending first (they cost nothing).
            let from_pending = remove.min(svc.pending_unscheduled);
            svc.pending_unscheduled -= from_pending;
            remove -= from_pending;
            // Then remove idle ready pods; busy pods are left until a
            // later sync finds them idle (a simple graceful drain).
            if remove > 0 {
                svc.accumulate_alive(now);
                let mut removed = 0;
                for p in svc.pods.iter_mut() {
                    if removed == remove {
                        break;
                    }
                    if p.is_ready() && p.busy.is_none() && p.queue.is_empty() {
                        p.phase = PodPhase::Removed;
                        p.epoch += 1;
                        removed += 1;
                    }
                }
                for _ in 0..removed {
                    self.vm_pool.release_pod();
                }
            }
        }
    }

    /// Begin creating one pod: allocate vCPUs now if possible, else queue
    /// it as unscheduled and ask the VM pool to provision.
    pub(super) fn create_pod(&mut self, now: SimTime, sid: ServiceId) {
        if self.vm_pool.try_allocate_pod() {
            self.services[sid.idx()].starting += 1;
            self.queue
                .schedule(now + self.cfg.pod_startup, Ev::PodReady { svc: sid });
        } else {
            self.services[sid.idx()].pending_unscheduled += 1;
            let pending: u32 = self.services.iter().map(|s| s.pending_unscheduled).sum();
            let vms = self.vm_pool.provision_for(pending);
            let startup = self.vm_pool.config.vm_startup;
            for _ in 0..vms {
                self.queue.schedule(now + startup, Ev::VmReady);
            }
        }
    }

    pub(super) fn on_pod_ready(&mut self, now: SimTime, sid: ServiceId) {
        let svc = &mut self.services[sid.idx()];
        if svc.starting == 0 {
            return;
        }
        svc.starting -= 1;
        svc.accumulate_alive(now);
        // Reuse a Removed slot if present, else grow.
        if let Some(p) = svc.pods.iter_mut().find(|p| p.phase == PodPhase::Removed) {
            p.recommission();
        } else {
            svc.pods.push(Pod::fresh());
        }
    }

    pub(super) fn on_vm_ready(&mut self, now: SimTime) {
        self.vm_pool.vm_ready();
        // Schedule unscheduled pods FIFO across services (by id).
        for i in 0..self.services.len() {
            while self.services[i].pending_unscheduled > 0 && self.vm_pool.try_allocate_pod() {
                self.services[i].pending_unscheduled -= 1;
                self.services[i].starting += 1;
                let sid = ServiceId(i as u32);
                self.queue
                    .schedule(now + self.cfg.pod_startup, Ev::PodReady { svc: sid });
            }
        }
    }

    pub(super) fn on_inject_failure(&mut self, now: SimTime, idx: usize) {
        let spec = self.failures[idx];
        let sid = spec.service;
        // Kill up to `spec.pods` ready pods (k8s will recreate them to
        // maintain the desired count, after pod startup).
        let mut killed = 0;
        for pi in 0..self.services[sid.idx()].pods.len() {
            if killed == spec.pods {
                break;
            }
            if self.services[sid.idx()].pods[pi].is_ready() {
                // Reuse the crash path for teardown, then convert the pod
                // into a permanent tombstone replaced via create_pod.
                self.crash_pod(now, sid, pi, SimDuration::from_secs(3600));
                let svc = &mut self.services[sid.idx()];
                svc.pods[pi].phase = PodPhase::Removed;
                svc.pods[pi].epoch += 1;
                self.vm_pool.release_pod();
                killed += 1;
            }
        }
        for _ in 0..killed {
            self.create_pod(now, sid);
        }
    }
}
