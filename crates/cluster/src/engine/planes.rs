//! Cross-cutting planes hooked into the request lifecycle.
//!
//! Three concerns veto or observe requests as they move through the
//! cluster: per-service **admission** control (DAGOR, Breakwater), the
//! request-plane **resilience** layer (deadlines, doomed-work
//! cancellation, circuit breakers), and the gray-failure **fault**
//! plane (degraded network paths). Before this module they were each
//! hand-threaded through the engine's lifecycle handlers; now they all
//! implement one [`Plane`] trait consulted at the same three
//! [`LifecyclePoint`]s, in a fixed order, and answer with a uniform
//! [`Verdict`] the lifecycle code applies mechanically.
//!
//! Keeping the consultation order fixed (resilience → admission →
//! faults) and short-circuiting on the first veto preserves the exact
//! event and RNG sequence of the monolithic engine — determinism is the
//! refactor's regression oracle.

use crate::admission::AdmissionControl;
use crate::faults::FaultPlane;
use crate::observe::ClusterObservation;
use crate::resilience::{EdgeBreakers, ResilienceConfig, ResilienceCounters, ResilienceStats};
use crate::types::{RequestMeta, RequestOutcome, ServiceId};
use rand::rngs::SmallRng;
use simnet::{SimDuration, SimTime};

/// Where in the request lifecycle a plane is being consulted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(super) enum LifecyclePoint {
    /// Caller side, before a sub-call is sent downstream.
    Dispatch,
    /// Service side, as the call reaches the pod queues.
    Arrival,
    /// Pod side, before CPU is spent on a queued call.
    Process,
}

/// The call a plane is asked to judge.
#[derive(Clone, Copy, Debug)]
pub(super) struct CallCtx {
    /// Request metadata; `None` when the owning request already
    /// terminated elsewhere (the call is wasted work in flight).
    pub meta: Option<RequestMeta>,
    /// Service of the calling node (`None` at the entry edge or when the
    /// request is gone).
    pub caller: Option<ServiceId>,
    /// Service the call targets.
    pub callee: ServiceId,
}

/// A plane's answer at a lifecycle point.
#[derive(Clone, Copy, Debug)]
pub(super) enum Verdict {
    /// Let the call continue; `extra` is added network latency
    /// (dispatch only).
    Proceed { extra: SimDuration },
    /// Drop the call silently — its request is already gone and the
    /// plane accounted for the skipped work.
    Cancel,
    /// Fail the owning request. `drop_at_callee` charges a dropped call
    /// to the target service; `edge_failure` feeds the caller→callee
    /// circuit breaker.
    Fail {
        outcome: RequestOutcome,
        drop_at_callee: bool,
        edge_failure: bool,
    },
}

impl Verdict {
    pub(super) fn proceed() -> Self {
        Verdict::Proceed {
            extra: SimDuration::ZERO,
        }
    }
}

/// One cross-cutting concern hooked into the lifecycle. Implementations
/// must be deterministic: any randomness comes from their own forked RNG
/// stream so enabling a plane never perturbs the base simulation.
pub(super) trait Plane {
    fn check(&mut self, point: LifecyclePoint, ctx: &CallCtx, now: SimTime) -> Verdict;
}

/// Per-plane veto counters: calls cancelled or failed by each plane,
/// cumulative over the run. Registered under
/// `topfull_plane_vetoes_total{plane=…}`; the engine journals per-window
/// deltas so `topfull explain` can show which plane was shedding.
#[derive(Clone, Debug, Default)]
pub(super) struct PlaneVetoCounters {
    pub(super) resilience: obs::Counter,
    pub(super) admission: obs::Counter,
    pub(super) faults: obs::Counter,
}

impl PlaneVetoCounters {
    pub(super) fn register_into(&self, reg: &obs::Registry) {
        for (plane, c) in [
            ("resilience", &self.resilience),
            ("admission", &self.admission),
            ("faults", &self.faults),
        ] {
            reg.register_counter("topfull_plane_vetoes_total", &[("plane", plane)], c);
        }
    }

    /// Current cumulative counts `(resilience, admission, faults)`.
    pub(super) fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.resilience.get(),
            self.admission.get(),
            self.faults.get(),
        )
    }
}

/// The engine's plane stack, consulted in fixed order.
pub(super) struct Planes {
    pub(super) resilience: ResiliencePlane,
    pub(super) admission: AdmissionPlane,
    pub(super) faults: FaultPlane,
    /// How often each plane vetoed a call (Cancel or Fail verdicts).
    pub(super) vetoes: PlaneVetoCounters,
}

impl Planes {
    pub(super) fn new(fault_rng: SmallRng) -> Self {
        Planes {
            resilience: ResiliencePlane::default(),
            admission: AdmissionPlane { ctrl: None },
            faults: FaultPlane::new(fault_rng),
            vetoes: PlaneVetoCounters::default(),
        }
    }

    /// Adopt every plane counter into `reg` (resilience events, plane
    /// vetoes, fault-plane telemetry distortions).
    pub(super) fn register_into(&self, reg: &obs::Registry) {
        self.resilience.counters.register_into(reg);
        self.vetoes.register_into(reg);
        self.faults.counters().register_into(reg);
    }

    /// Consult every plane at `point`, short-circuiting on the first
    /// veto; `Proceed` latencies accumulate. The consultation order is
    /// fixed (resilience → admission → faults) and veto accounting is
    /// plain counter increments, so adding telemetry never perturbs the
    /// event or RNG sequence.
    pub(super) fn check(&mut self, point: LifecyclePoint, ctx: &CallCtx, now: SimTime) -> Verdict {
        let mut total = SimDuration::ZERO;
        for i in 0..3 {
            let verdict = match i {
                0 => self.resilience.check(point, ctx, now),
                1 => self.admission.check(point, ctx, now),
                _ => self.faults.check(point, ctx, now),
            };
            match verdict {
                Verdict::Proceed { extra } => total += extra,
                veto => {
                    match i {
                        0 => self.vetoes.resilience.inc(),
                        1 => self.vetoes.admission.inc(),
                        _ => self.vetoes.faults.inc(),
                    }
                    return veto;
                }
            }
        }
        Verdict::Proceed { extra: total }
    }
}

/// Per-service admission control (DAGOR, Breakwater): the upstream
/// checks the downstream's advertised threshold before sending.
pub(super) struct AdmissionPlane {
    pub(super) ctrl: Option<Box<dyn AdmissionControl>>,
}

impl AdmissionPlane {
    /// Admission controllers update their thresholds on fresh metrics.
    pub(super) fn on_interval(&mut self, obs: &ClusterObservation) {
        if let Some(ctrl) = self.ctrl.as_mut() {
            ctrl.on_interval(obs);
        }
    }
}

impl Plane for AdmissionPlane {
    fn check(&mut self, point: LifecyclePoint, ctx: &CallCtx, now: SimTime) -> Verdict {
        if point != LifecyclePoint::Dispatch {
            return Verdict::proceed();
        }
        let (Some(ctrl), Some(meta)) = (self.ctrl.as_mut(), ctx.meta.as_ref()) else {
            return Verdict::proceed();
        };
        if ctrl.admit(ctx.callee, meta, now) {
            Verdict::proceed()
        } else {
            Verdict::Fail {
                outcome: RequestOutcome::RejectedAtService(ctx.callee),
                drop_at_callee: true,
                edge_failure: true,
            }
        }
    }
}

/// The request-plane resilience layer ([`crate::resilience`]): deadline
/// propagation, doomed-work cancellation, and per-edge circuit breakers.
#[derive(Default)]
pub(super) struct ResiliencePlane {
    /// Resolved per-request deadline budget (`None` = deadlines off).
    pub(super) deadline_budget: Option<SimDuration>,
    /// Skip doomed queued work and tear down timed-out requests.
    pub(super) cancel_doomed: bool,
    /// Per-downstream-edge circuit breakers (`None` = breakers off).
    pub(super) breakers: Option<EdgeBreakers>,
    /// Cumulative resilience counters as shared registry instruments;
    /// windows and run totals are views derived by differencing.
    pub(super) counters: ResilienceCounters,
    /// Cumulative snapshot taken when the current window opened.
    window_base: ResilienceStats,
    /// Workload retry counters already folded into the counters above.
    retry_snapshot: (u64, u64),
    /// Breaker transitions already folded into the counters above.
    breaker_snapshot: u64,
}

impl ResiliencePlane {
    /// Apply a [`ResilienceConfig`], resolving the deadline budget
    /// against `fallback` (client timeout, else the latency SLO).
    pub(super) fn configure(&mut self, cfg: ResilienceConfig, fallback: SimDuration) {
        match cfg.deadlines {
            Some(d) => {
                self.deadline_budget = Some(d.budget.unwrap_or(fallback));
                self.cancel_doomed = d.cancel_doomed;
            }
            None => {
                self.deadline_budget = None;
                self.cancel_doomed = false;
            }
        }
        self.breakers = cfg.breakers.map(EdgeBreakers::new);
    }

    /// Cumulative counters including the window in progress, folding in
    /// the workload's live retry counters.
    pub(super) fn totals(&self, retry_stats: (u64, u64)) -> ResilienceStats {
        let mut t = self.counters.snapshot();
        let (ri, rs) = retry_stats;
        t.retries_issued += ri - self.retry_snapshot.0;
        t.retries_suppressed += rs - self.retry_snapshot.1;
        if let Some(b) = &self.breakers {
            t.breaker_transitions += b.transitions() - self.breaker_snapshot;
        }
        t
    }

    /// Close the metrics window: fold client-side retry counters and
    /// breaker transitions into the cumulative instruments, and return
    /// the window's stats (cumulative delta since the window opened).
    pub(super) fn close_window(&mut self, retry_stats: (u64, u64)) -> ResilienceStats {
        let (ri, rs) = retry_stats;
        self.counters.retries_issued.add(ri - self.retry_snapshot.0);
        self.counters
            .retries_suppressed
            .add(rs - self.retry_snapshot.1);
        self.retry_snapshot = (ri, rs);
        if let Some(b) = &self.breakers {
            let t = b.transitions();
            self.counters
                .breaker_transitions
                .add(t - self.breaker_snapshot);
            self.breaker_snapshot = t;
        }
        let cum = self.counters.snapshot();
        let closed = cum.since(&self.window_base);
        self.window_base = cum;
        closed
    }

    /// A root request was torn down by its client's timeout.
    pub(super) fn on_client_cancelled(&self) {
        self.counters.client_cancelled.inc();
    }

    /// A failed call is a failure signal for its inbound edge.
    pub(super) fn on_edge_failure(
        &mut self,
        now: SimTime,
        caller: Option<ServiceId>,
        callee: ServiceId,
    ) {
        if let Some(b) = self.breakers.as_mut() {
            b.on_failure(caller, callee, now);
        }
    }

    /// A completed call is a success signal for its inbound edge.
    pub(super) fn on_edge_success(
        &mut self,
        now: SimTime,
        caller: Option<ServiceId>,
        callee: ServiceId,
    ) {
        if let Some(b) = self.breakers.as_mut() {
            b.on_success(caller, callee, now);
        }
    }

    fn deadline_expired(&self, ctx: &CallCtx, now: SimTime) -> bool {
        matches!(ctx.meta.and_then(|m| m.deadline), Some(dl) if now >= dl)
    }
}

impl Plane for ResiliencePlane {
    fn check(&mut self, point: LifecyclePoint, ctx: &CallCtx, now: SimTime) -> Verdict {
        match point {
            // A caller never dispatches work its deadline can no longer
            // use, nor across an open breaker.
            LifecyclePoint::Dispatch => {
                if self.deadline_expired(ctx, now) {
                    self.counters.deadline_rejected.inc();
                    return Verdict::Fail {
                        outcome: RequestOutcome::DeadlineExpired(ctx.callee),
                        drop_at_callee: false,
                        edge_failure: false,
                    };
                }
                if let Some(b) = self.breakers.as_mut() {
                    if !b.allow(ctx.caller, ctx.callee, now) {
                        self.counters.breaker_rejected.inc();
                        return Verdict::Fail {
                            outcome: RequestOutcome::BreakerOpen(ctx.callee),
                            drop_at_callee: false,
                            edge_failure: false,
                        };
                    }
                }
                Verdict::proceed()
            }
            // The service recognizes dead requests at the door and
            // checks the propagated deadline before accepting; a pod
            // re-checks both before spending CPU on a queued call.
            LifecyclePoint::Arrival | LifecyclePoint::Process => {
                if ctx.meta.is_none() {
                    if self.cancel_doomed {
                        self.counters.doomed_cancelled.inc();
                        return Verdict::Cancel;
                    }
                    return Verdict::proceed();
                }
                if self.deadline_expired(ctx, now) {
                    self.counters.deadline_rejected.inc();
                    return Verdict::Fail {
                        outcome: RequestOutcome::DeadlineExpired(ctx.callee),
                        drop_at_callee: true,
                        edge_failure: false,
                    };
                }
                Verdict::proceed()
            }
        }
    }
}

/// The gray-failure fault plane's lifecycle hook: degraded network paths
/// drop or delay forward calls at dispatch. (Its telemetry distortions
/// and slow-pod factors are queried from the metrics and pod runtimes
/// directly — they shape observations and service times, not call
/// admission.)
impl Plane for FaultPlane {
    fn check(&mut self, point: LifecyclePoint, ctx: &CallCtx, now: SimTime) -> Verdict {
        if point != LifecyclePoint::Dispatch {
            return Verdict::proceed();
        }
        let net = self.net_effect(now, ctx.callee);
        if net.dropped {
            Verdict::Fail {
                outcome: RequestOutcome::NetworkLost(ctx.callee),
                drop_at_callee: true,
                edge_failure: true,
            }
        } else {
            Verdict::Proceed { extra: net.extra }
        }
    }
}
