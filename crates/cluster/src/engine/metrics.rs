//! Metric accumulators, window close, and observation building.
//!
//! Per-API counters accumulate into [`ApiAccum`]s (window-scoped) and
//! [`ApiTotals`] (run-scoped); per-service accumulators live on the pod
//! runtime and are drained here at each metrics tick, when the window is
//! folded into a [`ClusterObservation`] for the control plane.

use super::{Engine, Ev};
use crate::observe::{ApiWindow, ClusterObservation, ServiceWindow};
use crate::types::{ApiId, ServiceId};
use simnet::{LatencyHistogram, SimDuration, SimTime};

/// Per-API per-window metric accumulators.
#[derive(Clone)]
pub(super) struct ApiAccum {
    pub(super) offered: u64,
    pub(super) admitted: u64,
    pub(super) good: u64,
    pub(super) slo_violated: u64,
    pub(super) failed: u64,
    pub(super) latencies: LatencyHistogram,
}

impl ApiAccum {
    pub(super) fn new() -> Self {
        ApiAccum {
            offered: 0,
            admitted: 0,
            good: 0,
            slo_violated: 0,
            failed: 0,
            latencies: LatencyHistogram::new(),
        }
    }

    pub(super) fn reset(&mut self) {
        *self = ApiAccum::new();
    }
}

/// Cumulative per-API counters over the whole run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ApiTotals {
    pub offered: u64,
    pub admitted: u64,
    pub good: u64,
    pub slo_violated: u64,
    pub failed: u64,
    pub rejected_entry: u64,
    /// Shed by the front-door priority gate before the token bucket.
    pub rejected_shed: u64,
}

/// The engine's metric state: window accumulators, run totals, and the
/// latest finalized observations.
pub(super) struct MetricsState {
    pub(super) api_accums: Vec<ApiAccum>,
    pub(super) api_totals: Vec<ApiTotals>,
    pub(super) window_start: SimTime,
    pub(super) latest_obs: Option<ClusterObservation>,
    pub(super) latest_true_obs: Option<ClusterObservation>,
    /// Static per-API service paths (topology union), used when path
    /// learning is disabled.
    pub(super) api_paths: Vec<Vec<ServiceId>>,
    /// Plane-veto counter values at the last journaled window close.
    pub(super) veto_base: (u64, u64, u64),
    /// Fault-telemetry counter values (dropouts, noisy, stale) at the
    /// last journaled window close.
    pub(super) fault_base: (u64, u64, u64),
}

impl MetricsState {
    pub(super) fn new(num_apis: usize, api_paths: Vec<Vec<ServiceId>>) -> Self {
        MetricsState {
            api_accums: vec![ApiAccum::new(); num_apis],
            api_totals: vec![ApiTotals::default(); num_apis],
            window_start: SimTime::ZERO,
            latest_obs: None,
            latest_true_obs: None,
            api_paths,
            veto_base: (0, 0, 0),
            fault_base: (0, 0, 0),
        }
    }
}

impl Engine {
    pub(super) fn on_metrics_tick(&mut self, now: SimTime) {
        let obs = self.finalize_window(now);
        // Admission controllers update their thresholds on fresh metrics.
        self.planes.admission.on_interval(&obs);
        // The front-door priority gate adapts on the same true window.
        self.front_tick(now, &obs);
        // Crash-loop probes.
        self.run_probes(now);
        // HPA sync on its own cadence (evaluated at metric ticks).
        self.run_hpa(now, &obs);
        // Telemetry faults distort only what leaves the cluster toward
        // the control plane; admission, probes and the HPA above ran on
        // the true window (they are in-cluster mechanisms, not part of
        // the observability pipeline being degraded). The true window is
        // kept alongside for ground-truth measurement.
        self.metrics.latest_true_obs = Some(obs.clone());
        self.metrics.latest_obs = Some(self.planes.faults.distort(now, obs));
        self.journal_window_aggregates(now);
        self.queue
            .schedule(now + self.cfg.control_interval, Ev::MetricsTick);
    }

    /// Advance the front-door plane one window: adapt the priority
    /// gate to the cluster's queuing-delay signal (the identical law
    /// the live gateway applies to its own observation), refresh its
    /// gauges, and journal verdict aggregates plus threshold moves.
    fn front_tick(&mut self, now: SimTime, obs: &ClusterObservation) {
        let rate_limited: u64 = self
            .metrics
            .api_totals
            .iter()
            .map(|t| t.rejected_entry)
            .sum();
        let Some(front) = self.front.as_mut() else {
            return;
        };
        let overloaded = front.door.overloaded(obs);
        let tick = front.door.tick(overloaded);
        let dr = rate_limited - front.rate_limited_base;
        front.rate_limited_base = rate_limited;
        let Some(journal) = self.journal.as_ref() else {
            return;
        };
        let t = now.as_secs_f64();
        if tick.window.any() || dr > 0 {
            journal.record(obs::JournalEntry::AdmissionWindow {
                t,
                cache_hits: tick.window.cache_hits,
                follower_hits: tick.window.follower_hits,
                misses: tick.window.misses,
                shed: tick.window.shed,
                rate_limited: dr,
            });
        }
        if let Some(mv) = tick.threshold {
            journal.record(obs::JournalEntry::PriorityThreshold {
                t,
                from: mv.from,
                to: mv.to,
                admitted: mv.admitted,
                shed: mv.shed,
                reason: mv.reason.to_string(),
            });
        }
    }

    /// Journal per-window plane-veto and fault-telemetry deltas (only for
    /// windows in which the counters actually moved). Runs after
    /// `distort`, so this window's telemetry distortions are included.
    fn journal_window_aggregates(&mut self, now: SimTime) {
        let Some(journal) = self.journal.as_ref() else {
            return;
        };
        let t = now.as_secs_f64();
        let v = self.planes.vetoes.snapshot();
        let base = self.metrics.veto_base;
        let (dr, da, df) = (v.0 - base.0, v.1 - base.1, v.2 - base.2);
        if (dr, da, df) != (0, 0, 0) {
            journal.record(obs::JournalEntry::PlaneVetoes {
                t,
                resilience: dr,
                admission: da,
                faults: df,
            });
        }
        self.metrics.veto_base = v;
        let fc = self.planes.faults.counters();
        let f = (fc.dropouts.get(), fc.noisy.get(), fc.stale.get());
        let base = self.metrics.fault_base;
        let (dd, dn, ds) = (f.0 - base.0, f.1 - base.1, f.2 - base.2);
        if (dd, dn, ds) != (0, 0, 0) {
            journal.record(obs::JournalEntry::FaultTelemetry {
                t,
                dropouts: dd,
                noisy: dn,
                stale: ds,
            });
        }
        self.metrics.fault_base = f;
    }

    pub(super) fn finalize_window(&mut self, now: SimTime) -> ClusterObservation {
        let window = now.duration_since(self.metrics.window_start);
        let window_ns = window.as_nanos().max(1);
        let mut services = Vec::with_capacity(self.services.len());
        for (i, svc) in self.services.iter_mut().enumerate() {
            svc.accumulate_alive(now);
            // Credit partial busy time of in-flight calls to this window.
            let mut busy = svc.busy_ns;
            for p in &svc.pods {
                if let Some(fl) = p.busy {
                    busy += now
                        .duration_since(fl.started.max(self.metrics.window_start))
                        .as_nanos();
                }
            }
            let denom = svc.alive_integral_ns;
            let queue_len: u64 = svc.pods.iter().map(|p| p.queue.len() as u64).sum();
            let utilization = if denom > 0 {
                (busy as f64 / denom as f64).min(1.0)
            } else if queue_len > 0 || svc.dropped_calls > 0 {
                1.0 // all pods down with work arriving: fully overloaded
            } else {
                0.0
            };
            let mean_qd = svc
                .queuing_delay_ns
                .checked_div(svc.started_calls)
                .map_or(SimDuration::ZERO, SimDuration::from_nanos);
            let sid = ServiceId(i as u32);
            services.push(ServiceWindow {
                service: sid,
                name: self.topo.service(sid).name.clone(),
                utilization,
                alive_pods: svc.ready_pods(),
                desired_pods: svc.desired,
                queue_len,
                mean_queuing_delay: mean_qd,
                started_calls: svc.started_calls,
                dropped_calls: svc.dropped_calls,
            });
            // Reset window accumulators.
            svc.busy_ns = 0;
            svc.queuing_delay_ns = 0;
            svc.started_calls = 0;
            svc.dropped_calls = 0;
            svc.alive_integral_ns = 0;
            svc.alive_last_change = now;
        }
        let secs = window_ns as f64 / 1e9;
        let mut apis = Vec::with_capacity(self.metrics.api_accums.len());
        for (i, acc) in self.metrics.api_accums.iter_mut().enumerate() {
            let aid = ApiId(i as u32);
            let spec = self.topo.api(aid);
            apis.push(ApiWindow {
                api: aid,
                name: spec.name.clone(),
                business: spec.business,
                offered: acc.offered as f64 / secs,
                admitted: acc.admitted as f64 / secs,
                goodput: acc.good as f64 / secs,
                slo_violated: acc.slo_violated as f64 / secs,
                failed: acc.failed as f64 / secs,
                p50: acc.latencies.quantile(0.50),
                p95: acc.latencies.quantile(0.95),
                p99: acc.latencies.quantile(0.99),
                rate_limit: self.gateway.rate_limit(aid),
            });
            acc.reset();
        }
        self.metrics.window_start = now;
        let api_paths = match self.tracer.as_mut() {
            Some(tr) => {
                tr.compact(now);
                tr.learned_paths(now)
            }
            None => self.metrics.api_paths.clone(),
        };
        let resilience = self
            .planes
            .resilience
            .close_window(self.workload.retry_stats());
        ClusterObservation {
            now,
            window,
            services,
            apis,
            api_paths,
            slo: self.cfg.slo,
            resilience,
            slo_burn: Vec::new(),
        }
    }
}
