//! The discrete-event cluster engine.
//!
//! [`Engine`] executes a [`Topology`] under a [`Workload`]: requests
//! arrive at the gateway, traverse their API's call tree across services
//! and pods, and complete (within or beyond the SLO) or fail. The engine
//! also runs the metrics window, the HPA + VM-pool autoscaler, the
//! crash-loop prober and injected failures — everything that happens
//! *inside* the cluster. Overload controllers live outside: entry
//! controllers set gateway rate limits between [`Engine::run_until`]
//! calls (see [`crate::harness`]), and per-service admission controllers
//! plug in via [`Engine::set_admission`].
//!
//! ## Module layout
//!
//! * [`mod@self`] — the [`Engine`] facade: construction, the public
//!   control surface, and the `run_until` event loop.
//! * `lifecycle` — request arrival, dispatch, subtree fan-out, and
//!   completion/teardown.
//! * `pods` — the [`Pod`]/[`ServiceRt`] runtime: crash loops, epochs,
//!   scaling, and the VM pool.
//! * `metrics` — per-window accumulators, window close, and observation
//!   building.
//! * `planes` — the uniform [`planes::Plane`] hook through which
//!   admission, resilience, and fault injection observe and veto the
//!   request lifecycle.
//!
//! ## Determinism
//!
//! The engine is single-threaded, draws randomness from one seeded RNG,
//! and uses a FIFO-stable event queue — a run is a pure function of
//! `(topology, config, workload, seed, control inputs)`.

mod lifecycle;
mod metrics;
mod planes;
mod pods;
#[cfg(test)]
mod tests;

pub use metrics::ApiTotals;

use crate::admission::AdmissionControl;
use crate::autoscaler::{Hpa, HpaConfig, VmPool, VmPoolConfig};
use crate::failure::{CrashLoopConfig, FailureSpec};
use crate::faults::FaultSpec;
use crate::front::{FrontConfig, FrontDoor};
use crate::gateway::Gateway;
use crate::observe::ClusterObservation;
use crate::resilience::{EdgeBreakers, ResilienceConfig, ResilienceStats};
use crate::topology::Topology;
use crate::tracing::TraceCollector;
use crate::types::{ApiId, ServiceId};
use crate::workload::{Arrival, UserRef, Workload};
use metrics::MetricsState;
use planes::Planes;
use pods::ServiceRt;
use rand::rngs::SmallRng;
use simnet::{EventQueue, SimDuration, SimTime};
use std::collections::HashMap;

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Root RNG seed; forked per concern.
    pub seed: u64,
    /// Latency SLO defining goodput (paper: 1 s).
    pub slo: SimDuration,
    /// Observation / control window (paper: 1 s).
    pub control_interval: SimDuration,
    /// One-way network latency per hop.
    pub hop_latency: SimDuration,
    /// Log-normal sigma of service-time jitter (0 disables).
    pub service_jitter: f64,
    /// Gateway token-bucket depth in seconds of rate.
    pub gateway_burst_secs: f64,
    /// Time for a new pod to become ready once vCPUs are available.
    pub pod_startup: SimDuration,
    /// Crash-loop model for `crash_on_overload` services.
    pub crash: CrashLoopConfig,
    /// When true, the observation's `api_paths` come from the distributed
    /// tracing collector (paths *learned* from spans, §4.1/§5) instead of
    /// the static topology union.
    pub learn_paths: bool,
    /// Span retention window for learned paths.
    pub trace_window: SimDuration,
    /// Raw spans to retain in the collector for inspection (0 = none);
    /// only meaningful with `learn_paths`.
    pub trace_raw_buffer: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            seed: 1,
            slo: SimDuration::from_secs(1),
            control_interval: SimDuration::from_secs(1),
            hop_latency: SimDuration::from_micros(500),
            service_jitter: 0.1,
            gateway_burst_secs: 0.05,
            pod_startup: SimDuration::from_secs(10),
            crash: CrashLoopConfig::default(),
            learn_paths: false,
            trace_window: SimDuration::from_secs(60),
            trace_raw_buffer: 0,
        }
    }
}

/// Flattened call-tree node of a live request.
#[derive(Clone, Debug)]
struct NodeRt {
    service: ServiceId,
    cost: SimDuration,
    parent: Option<u32>,
    children: Vec<u32>,
    /// Children still running (counts down to completion).
    pending: u32,
}

/// A live request.
struct RequestRt {
    meta: crate::types::RequestMeta,
    user: Option<UserRef>,
    nodes: Vec<NodeRt>,
}

/// A duplicate read parked on an in-flight leader's completion.
struct Parked {
    user: Option<UserRef>,
    arrival: SimTime,
}

/// Front-door admission runtime: the shared [`FrontDoor`] stages plus
/// the engine-side flight bookkeeping (who leads, who is parked) and a
/// dedicated RNG fork so enabling the plane leaves the base simulation
/// streams untouched.
struct FrontState {
    door: FrontDoor,
    rng: SmallRng,
    /// Per-API coalescing key space (0 = API not coalescable).
    key_space: Vec<u64>,
    /// Parked followers per leader request id.
    parked: HashMap<u64, Vec<Parked>>,
    /// Open flights: leader request id → `(api, key)`.
    flights: HashMap<u64, (ApiId, u64)>,
    /// Entry-limit rejection total at the last journaled window.
    rate_limited_base: u64,
}

enum Ev {
    Arrival(Arrival),
    /// A call travelling to `svc`. Service and cost are embedded so the
    /// call still executes (as wasted work) when its request has already
    /// failed elsewhere in the tree — an in-flight RPC fan-out does not
    /// recall sub-requests that were already sent.
    CallArrive {
        req: u64,
        node: u32,
        svc: ServiceId,
        cost: SimDuration,
    },
    PodDone {
        svc: ServiceId,
        pod: u32,
        epoch: u64,
    },
    NodeJoin {
        req: u64,
        node: u32,
    },
    MetricsTick,
    WorkloadTick,
    ClientTimeout {
        user: UserRef,
    },
    /// A starting pod of `svc` became ready.
    PodReady {
        svc: ServiceId,
    },
    /// A crashed pod restarts.
    PodRestart {
        svc: ServiceId,
        pod: u32,
        epoch: u64,
    },
    VmReady,
    InjectFailure(usize),
}

/// The cluster engine. See module docs.
pub struct Engine {
    topo: Topology,
    cfg: EngineConfig,
    queue: EventQueue<Ev>,
    /// Clock floor: `run_until` advances this beyond the last event.
    now_floor: SimTime,
    services: Vec<ServiceRt>,
    gateway: Gateway,
    workload: Box<dyn Workload>,
    /// Admission, resilience, and fault-injection hooks (see `planes`).
    planes: Planes,
    hpa: Option<Hpa>,
    vm_pool: VmPool,
    failures: Vec<FailureSpec>,
    /// Front-door admission plane (coalescing + priority), when enabled.
    front: Option<FrontState>,
    requests: HashMap<u64, RequestRt>,
    next_req_id: u64,
    rng: SmallRng,
    /// Per-window and cumulative metric accumulators.
    metrics: MetricsState,
    tracer: Option<TraceCollector>,
    /// Live root request per closed-loop `(user, generation)`, so a
    /// firing client timeout can tear down the in-flight subtree.
    user_reqs: HashMap<(u32, u64), u64>,
    /// Services whose pods crashed at least once (for assertions in tests
    /// and experiment reporting).
    pub crash_events: u64,
    /// Metrics registry; plane counters are adopted into it at build.
    registry: obs::Registry,
    /// Decision journal for per-window plane-veto / fault-telemetry
    /// aggregates (attached by the harness; `None` = not recording).
    journal: Option<std::sync::Arc<obs::Journal>>,
}

impl Engine {
    /// Build an engine over `topo`, driven by `workload`.
    pub fn new(topo: Topology, cfg: EngineConfig, workload: Box<dyn Workload>) -> Self {
        let mut vm_pool = VmPool::new(VmPoolConfig {
            // Effectively unlimited until `set_vm_pool` is called.
            vcpus_per_vm: u32::MAX / 2,
            initial_vms: 1,
            max_vms: 1,
            vm_startup: SimDuration::from_secs(40),
            vcpus_per_pod: 1.0,
        });
        let services: Vec<ServiceRt> = topo
            .services()
            .map(|(_, spec)| {
                for _ in 0..spec.replicas {
                    let ok = vm_pool.try_allocate_pod();
                    debug_assert!(ok, "initial pods exceed VM pool");
                }
                ServiceRt::fresh(spec.replicas)
            })
            .collect();
        let num_apis = topo.num_apis();
        let api_paths = topo.api_service_map();
        let tracer = cfg.learn_paths.then(|| {
            TraceCollector::new(num_apis, cfg.trace_window).with_raw_buffer(cfg.trace_raw_buffer)
        });
        let rng = simnet::rng::fork(cfg.seed, "engine");
        let seed_for_faults = cfg.seed;
        let mut queue = EventQueue::new();
        queue.schedule(SimTime::ZERO, Ev::WorkloadTick);
        queue.schedule(SimTime::ZERO + cfg.control_interval, Ev::MetricsTick);
        let planes = Planes::new(simnet::rng::fork(seed_for_faults, "faults"));
        let registry = obs::Registry::new();
        planes.register_into(&registry);
        Engine {
            gateway: Gateway::new(num_apis, cfg.gateway_burst_secs),
            topo,
            cfg,
            queue,
            now_floor: SimTime::ZERO,
            services,
            workload,
            planes,
            hpa: None,
            vm_pool,
            failures: Vec::new(),
            front: None,
            requests: HashMap::new(),
            next_req_id: 0,
            rng,
            metrics: MetricsState::new(num_apis, api_paths),
            tracer,
            user_reqs: HashMap::new(),
            crash_events: 0,
            registry,
            journal: None,
        }
    }

    /// The engine's metrics registry: resilience events, per-plane veto
    /// counts, and fault-plane telemetry distortions, as cumulative
    /// instruments renderable in Prometheus text format.
    pub fn registry(&self) -> &obs::Registry {
        &self.registry
    }

    /// Attach a decision journal. The engine records one `PlaneVetoes`
    /// and one `FaultTelemetry` aggregate per observation window in which
    /// the respective counters moved.
    pub fn set_journal(&mut self, journal: std::sync::Arc<obs::Journal>) {
        self.journal = Some(journal);
    }

    /// Enable the request-plane resilience layer ([`crate::resilience`]):
    /// deadline propagation with doomed-work cancellation and/or
    /// per-edge circuit breakers. The deadline budget defaults to the
    /// workload's client timeout, falling back to the latency SLO.
    pub fn set_resilience(&mut self, cfg: ResilienceConfig) {
        let fallback = self.workload.client_timeout().unwrap_or(self.cfg.slo);
        self.planes.resilience.configure(cfg, fallback);
    }

    /// Cumulative resilience counters since the start of the run,
    /// including the window in progress.
    pub fn resilience_totals(&self) -> ResilienceStats {
        self.planes.resilience.totals(self.workload.retry_stats())
    }

    /// The edge breakers, when enabled (state inspection for tests).
    pub fn breakers(&self) -> Option<&EdgeBreakers> {
        self.planes.resilience.breakers.as_ref()
    }

    /// The tracing collector, when `learn_paths` is enabled.
    pub fn trace_collector(&self) -> Option<&TraceCollector> {
        self.tracer.as_ref()
    }

    /// Install a per-service admission controller (DAGOR, Breakwater).
    pub fn set_admission(&mut self, a: Box<dyn AdmissionControl>) {
        self.planes.admission.ctrl = Some(a);
    }

    /// Enable the front-door admission plane ([`crate::front`]) in
    /// front of the entry token bucket. `key_space[api]` is the number
    /// of distinct coalescing keys the workload draws for that API
    /// (0 = not coalescable); request keys and user priorities come
    /// from a dedicated `"front"` RNG fork, so runs without the plane
    /// are byte-identical to before it existed.
    pub fn set_front_door(&mut self, cfg: FrontConfig, mut key_space: Vec<u64>) {
        key_space.resize(self.topo.num_apis(), 0);
        let door = FrontDoor::new(cfg);
        door.stats().register_into(&self.registry);
        self.front = Some(FrontState {
            door,
            rng: simnet::rng::fork(self.cfg.seed, "front"),
            key_space,
            parked: HashMap::new(),
            flights: HashMap::new(),
            rate_limited_base: 0,
        });
    }

    /// The front door's instruments, when the plane is enabled.
    pub fn front_stats(&self) -> Option<&crate::front::FrontStats> {
        self.front.as_ref().map(|f| f.door.stats())
    }

    /// Enable the HPA over all services, flooring at current replicas.
    pub fn enable_hpa(&mut self, cfg: HpaConfig) {
        let mins: Vec<u32> = self.topo.services().map(|(_, s)| s.replicas).collect();
        self.hpa = Some(Hpa::new(cfg, mins));
    }

    /// Constrain the cluster to a finite VM pool (enables Fig. 19-style
    /// VM-provisioning delays). Panics if current pods don't fit.
    pub fn set_vm_pool(&mut self, cfg: VmPoolConfig) {
        let mut pool = VmPool::new(cfg);
        let total_pods: u32 = self.services.iter().map(|s| s.spec_pods()).sum();
        for _ in 0..total_pods {
            assert!(
                pool.try_allocate_pod(),
                "initial pods exceed configured VM pool"
            );
        }
        self.vm_pool = pool;
    }

    /// Schedule pod-kill failures.
    pub fn inject_failures(&mut self, specs: Vec<FailureSpec>) {
        for spec in specs {
            let idx = self.failures.len();
            self.failures.push(spec);
            self.queue
                .schedule(spec.at.max(self.now()), Ev::InjectFailure(idx));
        }
    }

    /// Install a schedule of [`FaultSpec`]s (the gray-failure fault
    /// plane). Pod kills route through the existing failure path; all
    /// other faults are evaluated per event from their own RNG fork, so
    /// the base simulation streams are unperturbed.
    pub fn inject_faults(&mut self, specs: Vec<FaultSpec>) {
        let kills = self.planes.faults.add(specs);
        if !kills.is_empty() {
            self.inject_failures(kills);
        }
    }

    /// Whether the control plane is stalled right now (a
    /// [`FaultSpec::ControllerStall`] window is active). The harness
    /// checks this each tick and skips control while true.
    pub fn control_stalled(&self) -> bool {
        self.planes.faults.control_stalled(self.now())
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now().max(self.now_floor)
    }

    /// The topology under simulation.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Latest finalized observation window, if one has completed. This
    /// is the *controller-facing* view: telemetry faults (dropout,
    /// staleness, noise) have already been applied.
    pub fn latest_observation(&self) -> Option<&ClusterObservation> {
        self.metrics.latest_obs.as_ref()
    }

    /// Latest finalized window *before* telemetry faults — ground truth
    /// for measurement and experiment reporting.
    pub fn latest_true_observation(&self) -> Option<&ClusterObservation> {
        self.metrics.latest_true_obs.as_ref()
    }

    /// Set the entry rate limit for `api` (requests/s; infinity = none).
    pub fn set_rate_limit(&mut self, api: ApiId, rate: f64) {
        let now = self.now();
        self.gateway.set_rate_limit(api, rate, now);
    }

    /// Current entry rate limit for `api`.
    pub fn rate_limit(&self, api: ApiId) -> f64 {
        self.gateway.rate_limit(api)
    }

    /// Ready pods of a service.
    pub fn ready_pods(&self, svc: ServiceId) -> u32 {
        self.services[svc.idx()].ready_pods()
    }

    /// vCPUs currently allocated across the cluster.
    pub fn vcpus_used(&self) -> f64 {
        self.vm_pool.used()
    }

    /// Running VM count.
    pub fn vms(&self) -> u32 {
        self.vm_pool.vms()
    }

    /// Cumulative per-API counters since the start of the run.
    pub fn api_totals(&self, api: ApiId) -> ApiTotals {
        self.metrics.api_totals[api.idx()]
    }

    /// Events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.queue.events_processed()
    }

    /// Run the simulation up to (and including) time `t`.
    pub fn run_until(&mut self, t: SimTime) {
        while let Some((at, ev)) = self.queue.pop_until(t) {
            self.handle(at, ev);
        }
        self.now_floor = self.now_floor.max(t);
    }

    fn handle(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::Arrival(a) => self.on_arrival(now, a),
            Ev::CallArrive {
                req,
                node,
                svc,
                cost,
            } => self.on_call_arrive(now, req, node, svc, cost),
            Ev::PodDone { svc, pod, epoch } => self.on_pod_done(now, svc, pod, epoch),
            Ev::NodeJoin { req, node } => self.on_node_complete(now, req, node),
            Ev::MetricsTick => self.on_metrics_tick(now),
            Ev::WorkloadTick => self.on_workload_tick(now),
            Ev::ClientTimeout { user } => self.on_client_timeout(now, user),
            Ev::PodReady { svc } => self.on_pod_ready(now, svc),
            Ev::PodRestart { svc, pod, epoch } => self.on_pod_restart(now, svc, pod, epoch),
            Ev::VmReady => self.on_vm_ready(now),
            Ev::InjectFailure(i) => self.on_inject_failure(now, i),
        }
    }
}
