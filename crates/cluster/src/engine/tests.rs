//! Engine behavior tests, grouped by the module they exercise most.

mod core {
    use crate::autoscaler::{HpaConfig, VmPoolConfig};
    use crate::engine::lifecycle::sample_weighted;
    use crate::engine::{Engine, EngineConfig};
    use crate::failure::FailureSpec;
    use crate::resilience::{BreakerConfig, DeadlineConfig, ResilienceConfig, ResilienceStats};
    use crate::topology::{ApiSpec, CallNode, ServiceSpec, Topology};
    use crate::types::{ApiId, ServiceId};
    use crate::workload::OpenLoopWorkload;
    use simnet::{SimDuration, SimTime};

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    /// One service, one API: pod capacity = 1/cost per pod.
    fn tiny_topo(replicas: u32, cost_ms: u64) -> (Topology, ApiId, ServiceId) {
        let mut t = Topology::new("tiny");
        let s = t.add_service(ServiceSpec::new("s", replicas));
        let api = t.add_api(ApiSpec::single("api", CallNode::leaf(s, ms(cost_ms))));
        (t, api, s)
    }

    fn run(topo: Topology, rate: f64, secs: u64) -> Engine {
        let apis: Vec<ApiId> = topo.apis().map(|(id, _)| id).collect();
        let w = OpenLoopWorkload::constant(apis.into_iter().map(|a| (a, rate)).collect());
        let mut e = Engine::new(
            topo,
            EngineConfig {
                service_jitter: 0.0,
                ..EngineConfig::default()
            },
            Box::new(w),
        );
        e.run_until(SimTime::from_secs(secs));
        e
    }

    #[test]
    fn underloaded_service_serves_everything() {
        // 2 pods × 10ms cost = 200 rps capacity; offer 50 rps.
        let (topo, api, _) = tiny_topo(2, 10);
        let e = run(topo, 50.0, 20);
        let t = e.api_totals(api);
        assert!(
            t.offered > 800,
            "Poisson 50rps × 20s ≈ 1000, got {}",
            t.offered
        );
        assert_eq!(t.good + t.slo_violated + t.failed, t.admitted);
        assert_eq!(t.failed, 0);
        assert_eq!(t.slo_violated, 0, "underloaded: everything within SLO");
        assert_eq!(t.good, t.offered, "no entry limiter installed");
    }

    #[test]
    fn overloaded_service_saturates_at_capacity() {
        // 1 pod × 10ms = 100 rps capacity; offer 300 rps.
        let (topo, api, s) = tiny_topo(1, 10);
        let mut e = run(topo, 300.0, 30);
        let t = e.api_totals(api);
        // Goodput can't exceed capacity; most excess violates SLO or drops.
        let good_rate = t.good as f64 / 30.0;
        assert!(good_rate <= 110.0, "goodput {good_rate} > capacity");
        assert!(
            t.slo_violated + t.failed > 0,
            "overload must violate SLOs or drop"
        );
        // Utilization reported as saturated.
        e.run_until(SimTime::from_secs(31));
        let obs = e.latest_observation().unwrap();
        assert!(obs.service(s).utilization > 0.95);
    }

    #[test]
    fn entry_rate_limit_caps_admission() {
        let (topo, api, _) = tiny_topo(1, 10);
        let apis = vec![(api, 300.0)];
        let w = OpenLoopWorkload::constant(apis);
        let mut e = Engine::new(
            topo,
            EngineConfig {
                service_jitter: 0.0,
                ..EngineConfig::default()
            },
            Box::new(w),
        );
        e.set_rate_limit(api, 80.0);
        e.run_until(SimTime::from_secs(30));
        let t = e.api_totals(api);
        let admitted_rate = t.admitted as f64 / 30.0;
        assert!(
            (70.0..=90.0).contains(&admitted_rate),
            "admitted {admitted_rate} ≈ 80 rps"
        );
        // A few requests may still be in flight at the horizon.
        assert!(
            t.admitted - t.good <= 3,
            "admitted load is within capacity: good={} admitted={}",
            t.good,
            t.admitted
        );
        assert!(t.rejected_entry > 0);
    }

    #[test]
    fn latency_composes_along_call_tree() {
        // frontend(5ms) → backend(10ms): e2e ≈ 5+10 + 4 hops×0.5ms ≈ 17ms.
        let mut topo = Topology::new("chain");
        let f = topo.add_service(ServiceSpec::new("front", 2));
        let b = topo.add_service(ServiceSpec::new("back", 2));
        let api = topo.add_api(ApiSpec::single(
            "get",
            CallNode::with_children(f, ms(5), vec![CallNode::leaf(b, ms(10))]),
        ));
        let e = run(topo, 20.0, 10);
        let _ = api;
        let obs = e.latest_observation().unwrap();
        let p50 = obs.apis[0].p50.unwrap();
        assert!(
            (15.0..25.0).contains(&p50.as_millis_f64()),
            "p50 {p50} should be ≈17ms"
        );
    }

    #[test]
    fn parallel_fanout_latency_is_max_not_sum() {
        let mut topo = Topology::new("fan");
        let f = topo.add_service(ServiceSpec::new("front", 4));
        let a = topo.add_service(ServiceSpec::new("a", 4));
        let b = topo.add_service(ServiceSpec::new("b", 4));
        topo.add_api(ApiSpec::single(
            "get",
            CallNode::with_children(
                f,
                ms(1),
                vec![CallNode::leaf(a, ms(10)), CallNode::leaf(b, ms(30))],
            ),
        ));
        let e = run(topo, 10.0, 10);
        let obs = e.latest_observation().unwrap();
        let p50 = obs.apis[0].p50.unwrap().as_millis_f64();
        assert!(
            (30.0..40.0).contains(&p50),
            "fan-out joins at max(10,30)+overheads, got {p50}ms"
        );
    }

    #[test]
    fn queue_overflow_fails_requests() {
        let mut topo = Topology::new("q");
        let s = topo.add_service(ServiceSpec::new("s", 1).queue_capacity(4));
        topo.add_api(ApiSpec::single("x", CallNode::leaf(s, ms(100))));
        // Capacity 10 rps; offer 200 rps → queues overflow instantly.
        let e = run(topo, 200.0, 10);
        let t = e.api_totals(ApiId(0));
        assert!(t.failed > 0, "bounded queue must drop");
    }

    #[test]
    fn observation_cadence_matches_interval() {
        let (topo, _, _) = tiny_topo(1, 10);
        let e = run(topo, 10.0, 5);
        let obs = e.latest_observation().unwrap();
        assert_eq!(obs.now, SimTime::from_secs(5));
        assert!((obs.window.as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn determinism_same_seed_same_totals() {
        let totals = |seed: u64| {
            let (topo, api, _) = tiny_topo(2, 10);
            let w = OpenLoopWorkload::constant(vec![(api, 150.0)]);
            let mut e = Engine::new(
                topo,
                EngineConfig {
                    seed,
                    ..EngineConfig::default()
                },
                Box::new(w),
            );
            e.run_until(SimTime::from_secs(10));
            e.api_totals(api)
        };
        assert_eq!(totals(7), totals(7));
        assert_ne!(totals(7).offered, totals(8).offered);
    }

    #[test]
    fn injected_failure_kills_and_recovers_pods() {
        let (topo, _, s) = tiny_topo(10, 10);
        let w = OpenLoopWorkload::constant(vec![(ApiId(0), 100.0)]);
        let mut e = Engine::new(
            topo,
            EngineConfig {
                service_jitter: 0.0,
                pod_startup: SimDuration::from_secs(5),
                ..EngineConfig::default()
            },
            Box::new(w),
        );
        e.inject_failures(vec![FailureSpec {
            at: SimTime::from_secs(10),
            service: s,
            pods: 7,
        }]);
        e.run_until(SimTime::from_secs(11));
        assert_eq!(e.ready_pods(s), 3, "7 of 10 pods killed");
        e.run_until(SimTime::from_secs(20));
        assert_eq!(e.ready_pods(s), 10, "replacements ready after startup");
    }

    #[test]
    fn crash_loop_fires_under_saturation() {
        let mut topo = Topology::new("crash");
        let s = topo.add_service(
            ServiceSpec::new("frag", 1)
                .queue_capacity(16)
                .crash_on_overload(),
        );
        topo.add_api(ApiSpec::single("x", CallNode::leaf(s, ms(50))));
        // Capacity 20 rps; offer 500 → queue pinned at cap → crash.
        let w = OpenLoopWorkload::constant(vec![(ApiId(0), 500.0)]);
        let mut e = Engine::new(topo, EngineConfig::default(), Box::new(w));
        e.run_until(SimTime::from_secs(20));
        assert!(e.crash_events > 0, "saturated pod should crash-loop");
    }

    #[test]
    fn hpa_scales_up_under_load() {
        let (topo, api, s) = tiny_topo(2, 10);
        // Capacity 200 rps; offer 500.
        let w = OpenLoopWorkload::constant(vec![(api, 500.0)]);
        let mut e = Engine::new(
            topo,
            EngineConfig {
                service_jitter: 0.0,
                pod_startup: SimDuration::from_secs(5),
                ..EngineConfig::default()
            },
            Box::new(w),
        );
        e.enable_hpa(HpaConfig {
            sync_period: SimDuration::from_secs(15),
            target_utilization: 0.7,
            ..HpaConfig::default()
        });
        e.run_until(SimTime::from_secs(120));
        assert!(
            e.ready_pods(s) >= 4,
            "HPA should have scaled up, pods={}",
            e.ready_pods(s)
        );
        // With enough pods, goodput recovers near offered rate.
        let obs = e.latest_observation().unwrap();
        assert!(
            obs.apis[0].goodput > 350.0,
            "goodput {} should approach 500 rps after scaling",
            obs.apis[0].goodput
        );
    }

    #[test]
    fn vm_pool_delays_scale_up() {
        let (topo, api, s) = tiny_topo(2, 10);
        let w = OpenLoopWorkload::constant(vec![(api, 800.0)]);
        let mut e = Engine::new(
            topo,
            EngineConfig {
                service_jitter: 0.0,
                pod_startup: SimDuration::from_secs(2),
                ..EngineConfig::default()
            },
            Box::new(w),
        );
        e.set_vm_pool(VmPoolConfig {
            vcpus_per_vm: 4,
            initial_vms: 1,
            max_vms: 3,
            vm_startup: SimDuration::from_secs(30),
            vcpus_per_pod: 1.0,
        });
        e.enable_hpa(HpaConfig::default());
        e.run_until(SimTime::from_secs(25));
        // Only 4 vCPUs → at most 4 pods before the new VM lands.
        assert!(e.ready_pods(s) <= 4);
        e.run_until(SimTime::from_secs(120));
        assert!(e.vms() > 1, "VM autoscaler should have provisioned");
        assert!(e.ready_pods(s) > 4, "pods land after VM startup");
    }

    #[test]
    fn weighted_sampling_prefers_heavy_branch() {
        let items = vec![(0.9, "a"), (0.1, "b")];
        let mut rng = simnet::rng::fork(3, "t");
        let heavy = (0..1000)
            .filter(|_| sample_weighted(&items, &mut rng) == 0)
            .count();
        assert!((850..=950).contains(&heavy), "got {heavy}");
    }

    /// 4 users with a 1 s timeout against a 3 s single-pod service:
    /// every request is doomed, queued calls pile up behind the pod.
    fn doomed_engine(cancel: bool) -> Engine {
        let (topo, api, _) = tiny_topo(1, 3000);
        let w = crate::workload::ClosedLoopWorkload::fixed(vec![(api, 1.0)], 4, ms(100))
            .timeout(Some(SimDuration::from_secs(1)));
        let mut e = Engine::new(
            topo,
            EngineConfig {
                service_jitter: 0.0,
                ..EngineConfig::default()
            },
            Box::new(w),
        );
        if cancel {
            e.set_resilience(ResilienceConfig {
                deadlines: Some(DeadlineConfig::default()),
                breakers: None,
            });
        }
        e.run_until(SimTime::from_secs(30));
        e
    }

    #[test]
    fn client_timeout_tears_down_doomed_work() {
        let e = doomed_engine(true);
        let t = e.api_totals(ApiId(0));
        assert_eq!(t.good, 0, "nothing completes within a 1 s timeout");
        // ≤: the 4 users' final requests may still be in flight.
        assert!(t.good + t.slo_violated + t.failed <= t.admitted);
        assert!(t.admitted - (t.good + t.slo_violated + t.failed) <= 4);
        let r = e.resilience_totals();
        assert!(r.client_cancelled > 0, "timeouts tear requests down: {r:?}");
        assert!(
            r.doomed_cancelled > 0,
            "queued calls behind the pod are skipped, not executed: {r:?}"
        );
    }

    #[test]
    fn late_response_after_timeout_neither_counts_goodput_nor_resurrects_user() {
        // The seed's wasted-work default: the pod finishes the 3 s call
        // after the 1 s client timeout already gave up. The late
        // completion must not count as goodput, and the stale
        // notification must not re-activate the user (which would
        // inflate the offered rate).
        let e = doomed_engine(false);
        let t = e.api_totals(ApiId(0));
        assert_eq!(t.good, 0, "late completions are not goodput");
        // Without cancellation, abandoned requests linger in the queue
        // and drain at 1 per 3 s — most are unfinished at the horizon.
        assert!(t.good + t.slo_violated + t.failed <= t.admitted);
        // 4 users cycling timeout (1 s) + think (0.1 s) ≈ 27 requests
        // each over 30 s. Resurrected users would roughly double this.
        assert!(
            (80..=130).contains(&t.offered),
            "one request per user per cycle, got {}",
            t.offered
        );
        // Resilience disabled: no counters move.
        assert_eq!(e.resilience_totals(), ResilienceStats::default());
    }

    #[test]
    fn breaker_opens_on_failing_edge_and_sheds_dispatch() {
        // front (fast, wide) → back (1 pod, 100 ms, queue of 2): the
        // downstream edge fails almost every call, so its breaker opens
        // and dispatches are declined at the caller.
        let mut topo = Topology::new("brk");
        let f = topo.add_service(ServiceSpec::new("front", 4));
        let b = topo.add_service(ServiceSpec::new("back", 1).queue_capacity(2));
        let api = topo.add_api(ApiSpec::single(
            "x",
            CallNode::with_children(f, ms(1), vec![CallNode::leaf(b, ms(100))]),
        ));
        let w = OpenLoopWorkload::constant(vec![(api, 300.0)]);
        let mut e = Engine::new(
            topo,
            EngineConfig {
                service_jitter: 0.0,
                ..EngineConfig::default()
            },
            Box::new(w),
        );
        e.set_resilience(ResilienceConfig {
            deadlines: None,
            breakers: Some(BreakerConfig::default()),
        });
        e.run_until(SimTime::from_secs(20));
        let r = e.resilience_totals();
        assert!(
            r.breaker_rejected > 0,
            "open breaker rejects dispatch: {r:?}"
        );
        assert!(r.breaker_transitions > 0, "breaker changed state: {r:?}");
        let t = e.api_totals(api);
        assert_eq!(t.good + t.slo_violated + t.failed, t.admitted);
        // The healthy entry edge (gateway → front) stays closed.
        assert_eq!(
            e.breakers().unwrap().state(None, f),
            crate::resilience::BreakerState::Closed
        );
    }

    #[test]
    fn resilience_determinism_same_seed_same_counters() {
        let run = |seed: u64| {
            let (topo, api, _) = tiny_topo(1, 20);
            let w =
                crate::workload::RetryStormWorkload::new(vec![(api, 1.0)], 120, ms(100), 5, ms(10))
                    .with_retry_budget(crate::resilience::RetryBudgetConfig::default());
            let mut e = Engine::new(
                topo,
                EngineConfig {
                    seed,
                    ..EngineConfig::default()
                },
                Box::new(w),
            );
            e.set_resilience(ResilienceConfig {
                deadlines: Some(DeadlineConfig::default()),
                breakers: Some(BreakerConfig::default()),
            });
            e.run_until(SimTime::from_secs(20));
            (e.api_totals(api), e.resilience_totals())
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11).0.offered, run(12).0.offered);
    }

    #[test]
    fn deadline_expiry_rejects_queued_work_without_cancellation() {
        // Deadlines on but doomed-work cancellation off: queued calls
        // whose deadline passed are rejected when the pod reaches them
        // (DeadlineExpired), not silently executed.
        let (topo, api, _) = tiny_topo(1, 500);
        let w = OpenLoopWorkload::constant(vec![(api, 50.0)]);
        let mut e = Engine::new(
            topo,
            EngineConfig {
                service_jitter: 0.0,
                ..EngineConfig::default()
            },
            Box::new(w),
        );
        e.set_resilience(ResilienceConfig {
            deadlines: Some(DeadlineConfig {
                budget: Some(SimDuration::from_secs(1)),
                cancel_doomed: false,
            }),
            breakers: None,
        });
        e.run_until(SimTime::from_secs(20));
        let r = e.resilience_totals();
        assert!(r.deadline_rejected > 0, "expired deadlines reject: {r:?}");
        assert_eq!(r.doomed_cancelled, 0, "cancellation was off");
        let t = e.api_totals(api);
        assert!(t.good + t.slo_violated + t.failed <= t.admitted);
    }
}

mod tracing_tests {
    use crate::engine::{Engine, EngineConfig};
    use crate::topology::{ApiSpec, CallNode, ServiceSpec, Topology};
    use crate::types::{ApiId, ServiceId};
    use crate::workload::OpenLoopWorkload;
    use simnet::{SimDuration, SimTime};

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    /// A branching API: branch A → {front, a}, branch B → {front, b}.
    fn branching_topo() -> (Topology, ApiId, ServiceId, ServiceId) {
        let mut t = Topology::new("traced");
        let front = t.add_service(ServiceSpec::new("front", 4));
        let a = t.add_service(ServiceSpec::new("a", 2));
        let b = t.add_service(ServiceSpec::new("b", 2));
        let api = t.add_api(ApiSpec::branching(
            "br",
            vec![
                (
                    0.9,
                    CallNode::with_children(front, ms(1), vec![CallNode::leaf(a, ms(2))]),
                ),
                (
                    0.1,
                    CallNode::with_children(front, ms(1), vec![CallNode::leaf(b, ms(2))]),
                ),
            ],
        ));
        (t, api, a, b)
    }

    #[test]
    fn learned_paths_converge_to_exercised_branches() {
        let (topo, api, a, b) = branching_topo();
        let w = OpenLoopWorkload::constant(vec![(api, 200.0)]);
        let mut e = Engine::new(
            topo,
            EngineConfig {
                learn_paths: true,
                ..EngineConfig::default()
            },
            Box::new(w),
        );
        e.run_until(SimTime::from_secs(10));
        let obs = e.latest_observation().expect("ran").clone();
        let path = &obs.api_paths[api.idx()];
        // With 2000 requests at 90/10 branching, both branches have been
        // exercised, so the learned path covers everything.
        assert!(path.contains(&a), "hot branch learned: {path:?}");
        assert!(path.contains(&b), "cold branch learned: {path:?}");
        assert!(e.trace_collector().expect("enabled").spans_recorded() > 1000);
    }

    #[test]
    fn learned_paths_start_empty_and_grow() {
        let (topo, api, _, _) = branching_topo();
        let w = OpenLoopWorkload::constant(vec![(api, 50.0)]);
        let mut e = Engine::new(
            topo,
            EngineConfig {
                learn_paths: true,
                ..EngineConfig::default()
            },
            Box::new(w),
        );
        e.run_until(SimTime::from_secs(1));
        let early = e.latest_observation().expect("tick").api_paths[api.idx()].len();
        e.run_until(SimTime::from_secs(20));
        let late = e.latest_observation().expect("tick").api_paths[api.idx()].len();
        assert!(late >= early, "paths only grow under steady traffic");
        assert!(late >= 2, "at least front + one branch learned");
    }

    /// Span assembly across the engine lifecycle hooks: a two-service
    /// chain must emit one span per call, with the child span pointing at
    /// its parent service, times ordered by the actual execution
    /// (parent's CPU completes before the child's call arrives), and the
    /// admitted verdict on every span.
    #[test]
    fn spans_assemble_parent_child_across_lifecycle() {
        use crate::tracing::SpanVerdict;
        let mut t = Topology::new("chain");
        let front = t.add_service(ServiceSpec::new("front", 2));
        let back = t.add_service(ServiceSpec::new("back", 2));
        let api = t.add_api(ApiSpec::single(
            "get",
            CallNode::with_children(front, ms(1), vec![CallNode::leaf(back, ms(2))]),
        ));
        let w = OpenLoopWorkload::constant(vec![(api, 50.0)]);
        let mut e = Engine::new(
            t,
            EngineConfig {
                learn_paths: true,
                trace_raw_buffer: 4096,
                service_jitter: 0.0,
                ..EngineConfig::default()
            },
            Box::new(w),
        );
        e.run_until(SimTime::from_secs(5));
        let tracer = e.trace_collector().expect("enabled");
        let mut by_req: std::collections::HashMap<u64, Vec<_>> = std::collections::HashMap::new();
        for s in tracer.raw_spans() {
            by_req.entry(s.request).or_default().push(*s);
        }
        let mut checked = 0;
        for spans in by_req.values() {
            if spans.len() != 2 {
                continue; // request straddling the buffer edge
            }
            let front_span = spans.iter().find(|s| s.service == front).expect("front");
            let back_span = spans.iter().find(|s| s.service == back).expect("back");
            assert_eq!(front_span.parent, None, "entry span has no parent");
            assert_eq!(back_span.parent, Some(front), "child links to caller");
            assert_eq!(front_span.api, api);
            assert_eq!(front_span.verdict, SpanVerdict::Admitted);
            assert_eq!(back_span.verdict, SpanVerdict::Admitted);
            // The parent's CPU completes before the child call arrives.
            assert!(front_span.end <= back_span.start);
            assert_eq!(front_span.duration(), ms(1));
            assert_eq!(back_span.duration(), ms(2));
            checked += 1;
        }
        assert!(checked > 50, "enough complete requests checked: {checked}");
    }

    /// Entry-gateway rejections surface as zero-duration spans carrying
    /// the rejection verdict, and never teach the path learner.
    #[test]
    fn entry_rejections_emit_verdict_spans() {
        use crate::tracing::SpanVerdict;
        let (topo, api, _, _) = branching_topo();
        let entry = topo.api(api).paths[0].1.service;
        let w = OpenLoopWorkload::constant(vec![(api, 100.0)]);
        let mut e = Engine::new(
            topo,
            EngineConfig {
                learn_paths: true,
                trace_raw_buffer: 1024,
                ..EngineConfig::default()
            },
            Box::new(w),
        );
        e.set_rate_limit(api, 0.0); // admit nothing
        e.run_until(SimTime::from_secs(3));
        let tracer = e.trace_collector().expect("enabled");
        assert!(tracer.rejected_recorded() > 100, "rejections were traced");
        assert_eq!(
            tracer.rejected_recorded(),
            tracer.spans_recorded(),
            "nothing was admitted, so every span is a rejection"
        );
        for s in tracer.raw_spans() {
            assert_eq!(s.verdict, SpanVerdict::RejectedAtEntry);
            assert_eq!(s.service, entry, "rejection marked at the entry");
            assert_eq!(s.start, s.end, "zero-duration marker");
        }
        let obs = e.latest_observation().expect("tick").clone();
        assert!(
            obs.api_paths[api.idx()].is_empty(),
            "rejected spans must not teach paths: {:?}",
            obs.api_paths[api.idx()]
        );
    }

    #[test]
    fn static_paths_remain_default() {
        let (topo, api, a, b) = branching_topo();
        let w = OpenLoopWorkload::constant(vec![(api, 10.0)]);
        let mut e = Engine::new(topo, EngineConfig::default(), Box::new(w));
        assert!(e.trace_collector().is_none());
        e.run_until(SimTime::from_secs(2));
        let obs = e.latest_observation().expect("tick").clone();
        // Static union: every possible branch present from the start.
        let path = &obs.api_paths[api.idx()];
        assert!(path.contains(&a) && path.contains(&b));
    }
}

mod lifecycle_tests {
    use crate::autoscaler::HpaConfig;
    use crate::engine::{Engine, EngineConfig};
    use crate::topology::{ApiSpec, CallNode, ServiceSpec, Topology};
    use crate::types::ApiId;
    use crate::workload::{ClosedLoopWorkload, OpenLoopWorkload, RateSchedule};
    use simnet::{SimDuration, SimTime};

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    #[test]
    fn hpa_scales_down_after_load_drops() {
        let mut topo = Topology::new("downscale");
        let s = topo.add_service(ServiceSpec::new("s", 2));
        let api = topo.add_api(ApiSpec::single("a", CallNode::leaf(s, ms(10))));
        // Load for 60 s, then quiet for the rest.
        let w = OpenLoopWorkload::new(vec![(
            api,
            RateSchedule::steps(vec![(SimTime::ZERO, 600.0), (SimTime::from_secs(60), 10.0)]),
        )]);
        let mut e = Engine::new(
            topo,
            EngineConfig {
                service_jitter: 0.0,
                pod_startup: SimDuration::from_secs(2),
                ..EngineConfig::default()
            },
            Box::new(w),
        );
        e.enable_hpa(HpaConfig {
            stabilization: SimDuration::from_secs(30),
            ..HpaConfig::default()
        });
        e.run_until(SimTime::from_secs(55));
        let peak = e.ready_pods(s);
        assert!(peak >= 4, "scaled up under load, pods={peak}");
        e.run_until(SimTime::from_secs(200));
        let settled = e.ready_pods(s);
        assert!(
            settled < peak,
            "scaled down after the load dropped: {peak} → {settled}"
        );
        assert!(settled >= 2, "never below the min replicas");
    }

    #[test]
    fn grow_service_adds_ready_pods_immediately() {
        let mut topo = Topology::new("grow");
        let s = topo.add_service(ServiceSpec::new("s", 1));
        topo.add_api(ApiSpec::single("a", CallNode::leaf(s, ms(10))));
        let w = OpenLoopWorkload::constant(vec![(ApiId(0), 50.0)]);
        let mut e = Engine::new(topo, EngineConfig::default(), Box::new(w));
        e.run_until(SimTime::from_secs(2));
        assert_eq!(e.ready_pods(s), 1);
        e.grow_service(s, 5);
        assert_eq!(e.ready_pods(s), 5, "growth is immediate (no startup)");
        let used = e.vcpus_used();
        assert!((used - 5.0).abs() < 1e-9, "vCPU accounting follows: {used}");
    }

    #[test]
    fn closed_loop_client_timeout_keeps_users_alive() {
        // One pod at 10 ms with a huge queue: responses take far longer
        // than the 10 s client timeout under heavy overload, yet users
        // keep issuing (via the timeout path), so offered load persists.
        let mut topo = Topology::new("timeout");
        let s = topo.add_service(ServiceSpec::new("s", 1).queue_capacity(100_000));
        let api = topo.add_api(ApiSpec::single("a", CallNode::leaf(s, ms(10))));
        let w = ClosedLoopWorkload::fixed(vec![(api, 1.0)], 500, SimDuration::from_secs(1));
        let mut e = Engine::new(
            topo,
            EngineConfig {
                service_jitter: 0.0,
                ..EngineConfig::default()
            },
            Box::new(w),
        );
        e.run_until(SimTime::from_secs(60));
        let t = e.api_totals(api);
        // 500 users, ~100 rps capacity → backlog far beyond the timeout.
        // Users must still have issued many generations of requests.
        assert!(
            t.offered > 1500,
            "timed-out users keep issuing, offered={}",
            t.offered
        );
    }

    #[test]
    fn learned_and_static_paths_agree_for_non_branching_apis() {
        let mut topo = Topology::new("agree");
        let f = topo.add_service(ServiceSpec::new("f", 2));
        let b = topo.add_service(ServiceSpec::new("b", 2));
        let api = topo.add_api(ApiSpec::single(
            "a",
            CallNode::with_children(f, ms(1), vec![CallNode::leaf(b, ms(2))]),
        ));
        let static_paths = topo.api_service_map();
        let w = OpenLoopWorkload::constant(vec![(api, 100.0)]);
        let mut e = Engine::new(
            topo,
            EngineConfig {
                learn_paths: true,
                ..EngineConfig::default()
            },
            Box::new(w),
        );
        e.run_until(SimTime::from_secs(5));
        let mut learned = e.latest_observation().expect("tick").api_paths[api.idx()].clone();
        learned.sort();
        let mut want = static_paths[api.idx()].clone();
        want.sort();
        assert_eq!(learned, want);
    }
}

mod front {
    use crate::engine::{Engine, EngineConfig};
    use crate::front::{CoalesceConfig, FrontConfig, PriorityConfig};
    use crate::topology::{ApiSpec, CallNode, ServiceSpec, Topology};
    use crate::types::{ApiId, BusinessPriority};
    use crate::workload::OpenLoopWorkload;
    use simnet::{SimDuration, SimTime};

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    fn engine(topo: Topology, rates: Vec<(ApiId, f64)>) -> Engine {
        Engine::new(
            topo,
            EngineConfig {
                service_jitter: 0.0,
                ..EngineConfig::default()
            },
            Box::new(OpenLoopWorkload::constant(rates)),
        )
    }

    #[test]
    fn coalescing_multiplies_flash_crowd_goodput() {
        // 1 pod × 10 ms = 100 rps capacity; a read-heavy flash crowd
        // offers 500 rps over only 4 hot keys. Coalescing must lift
        // goodput far beyond raw capacity (leaders do the work once).
        let mut t = Topology::new("reads");
        let s = t.add_service(ServiceSpec::new("s", 1));
        let api = t.add_api(ApiSpec::single("read", CallNode::leaf(s, ms(10))));
        let mut e = engine(t, vec![(api, 500.0)]);
        e.set_front_door(
            FrontConfig {
                coalesce: Some(CoalesceConfig {
                    cache_capacity: 64,
                    cache_ttl: SimDuration::from_millis(500),
                }),
                priority: None,
            },
            vec![4],
        );
        e.run_until(SimTime::from_secs(20));
        let tot = e.api_totals(api);
        let stats = e.front_stats().expect("front door enabled");
        assert!(stats.cache_hits.get() > 0, "cache must serve hits");
        assert!(stats.follower_hits.get() > 0, "flights must coalesce");
        let good_rate = tot.good as f64 / 20.0;
        assert!(
            good_rate >= 200.0,
            "coalesced goodput {good_rate} rps must be ≥2× the 100 rps capacity"
        );
        assert_eq!(tot.failed, 0, "no failures in a cache-served crowd");
        assert_eq!(tot.good + tot.slo_violated, tot.admitted);
    }

    #[test]
    fn priority_gate_sheds_low_business_tier_first() {
        let mut t = Topology::new("tiers");
        let s = t.add_service(ServiceSpec::new("s", 1));
        let hi = t.add_api(
            ApiSpec::single("hi", CallNode::leaf(s, ms(10))).business(BusinessPriority(0)),
        );
        let lo = t.add_api(
            ApiSpec::single("lo", CallNode::leaf(s, ms(10))).business(BusinessPriority(7)),
        );
        let mut e = engine(t, vec![(hi, 150.0), (lo, 150.0)]);
        e.set_front_door(
            FrontConfig {
                coalesce: None,
                priority: Some(PriorityConfig::default()),
            },
            vec![],
        );
        let journal = obs::Journal::shared();
        e.set_journal(journal.clone());
        e.run_until(SimTime::from_secs(60));
        let hi_t = e.api_totals(hi);
        let lo_t = e.api_totals(lo);
        assert!(lo_t.rejected_shed > 0, "overload must shed the low tier");
        assert!(
            lo_t.rejected_shed > hi_t.rejected_shed,
            "low tier shed ({}) must exceed high tier shed ({})",
            lo_t.rejected_shed,
            hi_t.rejected_shed
        );
        let hi_frac = hi_t.admitted as f64 / hi_t.offered as f64;
        let lo_frac = lo_t.admitted as f64 / lo_t.offered as f64;
        assert!(
            hi_frac > lo_frac,
            "high tier admitted fraction {hi_frac} must beat low tier {lo_frac}"
        );
        // Every threshold move and verdict window is journaled.
        let entries = journal.snapshot();
        assert!(entries
            .iter()
            .any(|e| matches!(e, obs::JournalEntry::PriorityThreshold { .. })));
        assert!(entries
            .iter()
            .any(|e| matches!(e, obs::JournalEntry::AdmissionWindow { shed, .. } if *shed > 0)));
    }

    #[test]
    fn leader_failure_fails_followers_without_hangs() {
        // Queue capacity 0 at the backend: every led flight that
        // reaches a full pod fails, and parked followers must fail
        // with it (never hang as ghost admitted-but-unresolved work).
        let mut t = Topology::new("fail");
        let mut spec = ServiceSpec::new("s", 1);
        spec.queue_capacity = 1;
        let s = t.add_service(spec);
        let api = t.add_api(ApiSpec::single("read", CallNode::leaf(s, ms(200))));
        let mut e = engine(t, vec![(api, 200.0)]);
        e.set_front_door(
            FrontConfig {
                coalesce: Some(CoalesceConfig {
                    cache_capacity: 16,
                    cache_ttl: SimDuration::from_millis(100),
                }),
                priority: None,
            },
            vec![16],
        );
        e.run_until(SimTime::from_secs(10));
        let tot = e.api_totals(api);
        assert!(tot.failed > 0, "overflow must fail some flights");
        // Conservation: every admitted request resolves. Only work
        // genuinely in flight at the cutoff instant may be pending —
        // bounded by the key space, not growing with run length (which
        // is what parked-forever followers would do).
        let unresolved = tot.admitted - (tot.good + tot.slo_violated + tot.failed);
        assert!(
            unresolved <= 64,
            "unresolved admitted work must stay bounded, got {unresolved}"
        );
    }
}
