//! Per-API token-bucket admission — the one implementation shared by the
//! simulated entry gateway ([`crate::gateway::Gateway`]) and the live
//! serving plane's TCP gateway (`liveserve`).
//!
//! The paper's actuation point is a rate limiter "attached at the entry"
//! (§5); for the Sim2Real story to hold, the simulator and the real
//! gateway must make *identical* admit/deny decisions for identical
//! rate-limit programs and timestamps. Factoring the limiter bank here
//! makes drift impossible: both planes call the same code, and the parity
//! test below replays one admit/deny sequence through both front ends.
//!
//! Time is a [`SimTime`]. The simulator passes virtual time; the live
//! gateway maps wall-clock nanoseconds since server start through
//! [`SimTime::from_nanos`], so bucket refill arithmetic is shared bit for
//! bit.

use crate::types::ApiId;
use simnet::{SimTime, TokenBucket};

/// Rate-limit state for one API. `None` bucket = unlimited.
struct ApiLimiter {
    bucket: Option<TokenBucket>,
    rate: f64,
}

/// A bank of per-API token-bucket rate limiters.
pub struct EntryAdmission {
    limiters: Vec<ApiLimiter>,
    /// Burst size as a fraction of the rate (seconds of burst).
    burst_secs: f64,
}

impl EntryAdmission {
    /// A limiter bank for `num_apis` APIs, all initially unlimited.
    ///
    /// `burst_secs` sets bucket depth = `rate × burst_secs` (clamped to at
    /// least 1 token for positive rates; a rate of exactly 0 gets depth
    /// 0); the paper's 1-second control cadence makes ~50 ms of burst a
    /// reasonable default.
    pub fn new(num_apis: usize, burst_secs: f64) -> Self {
        EntryAdmission {
            limiters: (0..num_apis)
                .map(|_| ApiLimiter {
                    bucket: None,
                    rate: f64::INFINITY,
                })
                .collect(),
            burst_secs: burst_secs.max(1e-3),
        }
    }

    /// Number of APIs in the bank.
    pub fn num_apis(&self) -> usize {
        self.limiters.len()
    }

    /// Current rate limit for `api` (`f64::INFINITY` when unlimited).
    pub fn rate_limit(&self, api: ApiId) -> f64 {
        self.limiters[api.idx()].rate
    }

    /// Set the rate limit for `api` at time `now`. `f64::INFINITY` (or any
    /// non-finite value) removes the limit; zero (and negative rates,
    /// which clamp to zero) admits nothing at all — the bucket depth is
    /// forced to 0 so not even a burst token leaks through.
    pub fn set_rate_limit(&mut self, api: ApiId, rate: f64, now: SimTime) {
        let lim = &mut self.limiters[api.idx()];
        if !rate.is_finite() {
            lim.bucket = None;
            lim.rate = f64::INFINITY;
            return;
        }
        let rate = rate.max(0.0);
        let burst = if rate > 0.0 {
            (rate * self.burst_secs).max(1.0)
        } else {
            0.0
        };
        match &mut lim.bucket {
            Some(b) => b.set_rate_and_burst(rate, burst, now),
            None => lim.bucket = Some(TokenBucket::new(rate, burst, now)),
        }
        lim.rate = rate;
    }

    /// Admit or reject one request for `api` arriving at `now`.
    pub fn try_admit(&mut self, api: ApiId, now: SimTime) -> bool {
        match &mut self.limiters[api.idx()].bucket {
            Some(b) => b.try_admit(now),
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_secs_is_clamped() {
        // A degenerate burst window still leaves a usable bucket.
        let mut a = EntryAdmission::new(1, 0.0);
        a.set_rate_limit(ApiId(0), 10.0, SimTime::ZERO);
        assert!(a.try_admit(ApiId(0), SimTime::ZERO));
    }

    #[test]
    fn num_apis_reports_bank_size() {
        assert_eq!(EntryAdmission::new(3, 0.05).num_apis(), 3);
    }

    #[test]
    fn negative_rate_clamps_to_zero() {
        let mut a = EntryAdmission::new(1, 0.05);
        a.set_rate_limit(ApiId(0), -5.0, SimTime::ZERO);
        assert_eq!(a.rate_limit(ApiId(0)), 0.0);
        assert!(!a.try_admit(ApiId(0), SimTime::from_secs(10)));
    }

    #[test]
    fn nan_rate_means_unlimited() {
        let mut a = EntryAdmission::new(1, 0.05);
        a.set_rate_limit(ApiId(0), f64::NAN, SimTime::ZERO);
        assert!(a.rate_limit(ApiId(0)).is_infinite());
        assert!(a.try_admit(ApiId(0), SimTime::ZERO));
    }
}
