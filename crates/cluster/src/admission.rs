//! Per-service admission hooks — the actuation point of DAGOR and
//! Breakwater.
//!
//! The baselines the paper compares against shed load *inside* the
//! application: each microservice decides per sub-request whether to admit
//! it, based on local signals (queueing delay, incoming rate). The engine
//! consults an [`AdmissionControl`] implementation at every call dispatch
//! — including the entry call — and notifies it once per interval with the
//! observation so it can move its thresholds.
//!
//! Rejecting a sub-request mid-tree fails the whole request, and all work
//! already performed upstream is wasted: this is precisely the mechanism
//! behind the starvation problem of the paper's Figure 1.

use crate::observe::ClusterObservation;
use crate::types::{RequestMeta, ServiceId};
use simnet::SimTime;

/// A per-service admission controller (DAGOR, Breakwater, …).
pub trait AdmissionControl: Send {
    /// Decide whether `service` admits a call of request `meta` at `now`.
    ///
    /// Called on every call dispatch; must be cheap. The upstream caller
    /// consults this *before* sending the sub-request, which also models
    /// DAGOR's piggybacked-threshold early rejection.
    fn admit(&mut self, service: ServiceId, meta: &RequestMeta, now: SimTime) -> bool;

    /// Per-interval threshold update with fresh local metrics.
    fn on_interval(&mut self, obs: &ClusterObservation);

    /// Human-readable name for experiment reports.
    fn name(&self) -> &str {
        "admission"
    }
}

/// Admit-everything hook; used when only entry-point control is active.
#[derive(Clone, Copy, Debug, Default)]
pub struct AdmitAll;

impl AdmissionControl for AdmitAll {
    fn admit(&mut self, _service: ServiceId, _meta: &RequestMeta, _now: SimTime) -> bool {
        true
    }

    fn on_interval(&mut self, _obs: &ClusterObservation) {}

    fn name(&self) -> &str {
        "admit-all"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ApiId, BusinessPriority};

    #[test]
    fn admit_all_admits() {
        let meta = RequestMeta {
            api: ApiId(0),
            business: BusinessPriority(0),
            user: 7,
            arrival: SimTime::ZERO,
            deadline: None,
        };
        let mut a = AdmitAll;
        assert!(a.admit(ServiceId(0), &meta, SimTime::ZERO));
        assert_eq!(a.name(), "admit-all");
    }
}
