//! Distributed tracing collector: learn API execution paths from spans.
//!
//! In the paper, execution paths are not configuration — they are
//! *observed*: "API execution paths are collected through a distributed
//! tracing tool" (§4.1); "The execution paths for APIs are built from the
//! data gathered from the distributed tracing collector" (§5, via Istio).
//! This module reproduces that: every completed call emits a [`Span`],
//! and the collector maintains, per API, the set of services seen on its
//! requests within a sliding window. The engine can export these
//! *learned* paths in the [`crate::observe::ClusterObservation`] instead
//! of the static topology union (see
//! [`crate::engine::EngineConfig::learn_paths`]), which is exactly what a
//! production TopFull deployment would consume.
//!
//! Learned paths handle branching APIs the way §4.2 prescribes: once
//! traffic has exercised a branch, its services join the API's path set
//! and stay there while traces keep arriving; paths through retired
//! branches age out after [`TraceCollector::window`].

use crate::types::{ApiId, ServiceId};
use simnet::{SimDuration, SimTime};
use std::collections::HashMap;

/// What the entry gateway decided about the request a span belongs to.
///
/// Live and simulated traces both carry this, so the two planes'
/// admission behavior can be compared span-for-span (the sim2real
/// overlay): an `Admitted` span is real work on a service; a
/// `RejectedAtEntry` span is a zero-duration marker at the API's entry
/// service recording that the token bucket turned the request away.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SpanVerdict {
    /// The request passed the entry rate limiter; the span is real work.
    #[default]
    Admitted,
    /// The request was rejected at the entry token bucket; the span is a
    /// zero-duration marker and must not teach the path learner.
    RejectedAtEntry,
}

/// One completed call, as a tracing backend would record it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    pub request: u64,
    pub api: ApiId,
    pub service: ServiceId,
    /// The service that issued this call (`None` at the entry).
    pub parent: Option<ServiceId>,
    pub start: SimTime,
    pub end: SimTime,
    /// The entry gateway's admission decision for the owning request.
    pub verdict: SpanVerdict,
}

impl Span {
    /// Service-side duration of the call.
    pub fn duration(&self) -> SimDuration {
        self.end.duration_since(self.start)
    }
}

/// Sliding-window path learner.
#[derive(Clone, Debug)]
pub struct TraceCollector {
    /// `last_seen[api][service]` = end time of the latest span.
    last_seen: Vec<HashMap<ServiceId, SimTime>>,
    /// How long a service stays on a path without fresh spans.
    window: SimDuration,
    /// Spans recorded (for reporting).
    spans_recorded: u64,
    /// Of those, spans carrying [`SpanVerdict::RejectedAtEntry`].
    rejected_recorded: u64,
    /// Optional bounded buffer of raw spans for inspection/debugging.
    keep_raw: usize,
    raw: std::collections::VecDeque<Span>,
}

impl TraceCollector {
    /// A collector for `num_apis` APIs with the given retention window.
    pub fn new(num_apis: usize, window: SimDuration) -> Self {
        assert!(!window.is_zero(), "retention window must be positive");
        TraceCollector {
            last_seen: vec![HashMap::new(); num_apis],
            window,
            spans_recorded: 0,
            rejected_recorded: 0,
            keep_raw: 0,
            raw: std::collections::VecDeque::new(),
        }
    }

    /// Builder: also retain the most recent `n` raw spans.
    pub fn with_raw_buffer(mut self, n: usize) -> Self {
        self.keep_raw = n;
        self
    }

    /// The retention window.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Total spans recorded.
    pub fn spans_recorded(&self) -> u64 {
        self.spans_recorded
    }

    /// Spans recorded with [`SpanVerdict::RejectedAtEntry`].
    pub fn rejected_recorded(&self) -> u64 {
        self.rejected_recorded
    }

    /// Record one completed call. Entry-rejected spans are counted and
    /// kept in the raw buffer, but do not teach the path learner: a
    /// request that never entered the cluster exercised no services.
    pub fn record(&mut self, span: Span) {
        self.spans_recorded += 1;
        match span.verdict {
            SpanVerdict::Admitted => {
                self.last_seen[span.api.idx()].insert(span.service, span.end);
            }
            SpanVerdict::RejectedAtEntry => self.rejected_recorded += 1,
        }
        if self.keep_raw > 0 {
            if self.raw.len() == self.keep_raw {
                self.raw.pop_front();
            }
            self.raw.push_back(span);
        }
    }

    /// The most recent raw spans (empty unless `with_raw_buffer`).
    pub fn raw_spans(&self) -> impl Iterator<Item = &Span> {
        self.raw.iter()
    }

    /// The learned path of one API at time `now`: services with a span
    /// newer than the retention window, ascending by id.
    pub fn learned_path(&self, api: ApiId, now: SimTime) -> Vec<ServiceId> {
        let horizon = now - self.window;
        let mut out: Vec<ServiceId> = self.last_seen[api.idx()]
            .iter()
            .filter(|(_, seen)| **seen >= horizon)
            .map(|(svc, _)| *svc)
            .collect();
        out.sort();
        out
    }

    /// Learned paths for every API (the `api_paths` of an observation).
    pub fn learned_paths(&self, now: SimTime) -> Vec<Vec<ServiceId>> {
        (0..self.last_seen.len())
            .map(|i| self.learned_path(ApiId(i as u32), now))
            .collect()
    }

    /// Drop expired entries (bounds memory on long runs).
    pub fn compact(&mut self, now: SimTime) {
        let horizon = now - self.window;
        for m in self.last_seen.iter_mut() {
            m.retain(|_, seen| *seen >= horizon);
        }
    }

    /// Live `(api, service)` entries in the path learner — the
    /// collector's only unbounded-in-principle state. With `compact`
    /// called every window close this stays bounded by
    /// `num_apis × num_services` regardless of run length.
    pub fn tracked_entries(&self) -> usize {
        self.last_seen.iter().map(|m| m.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(api: u32, svc: u32, end_s: u64) -> Span {
        Span {
            request: 0,
            api: ApiId(api),
            service: ServiceId(svc),
            parent: None,
            start: SimTime::from_secs(end_s.saturating_sub(1)),
            end: SimTime::from_secs(end_s),
            verdict: SpanVerdict::Admitted,
        }
    }

    #[test]
    fn learns_paths_from_spans() {
        let mut c = TraceCollector::new(2, SimDuration::from_secs(60));
        c.record(span(0, 3, 1));
        c.record(span(0, 1, 2));
        c.record(span(1, 2, 2));
        assert_eq!(
            c.learned_path(ApiId(0), SimTime::from_secs(5)),
            vec![ServiceId(1), ServiceId(3)]
        );
        assert_eq!(
            c.learned_path(ApiId(1), SimTime::from_secs(5)),
            vec![ServiceId(2)]
        );
        assert_eq!(c.spans_recorded(), 3);
    }

    #[test]
    fn paths_age_out_after_the_window() {
        let mut c = TraceCollector::new(1, SimDuration::from_secs(10));
        c.record(span(0, 7, 1));
        assert_eq!(
            c.learned_path(ApiId(0), SimTime::from_secs(5)).len(),
            1,
            "fresh span visible"
        );
        assert!(
            c.learned_path(ApiId(0), SimTime::from_secs(20)).is_empty(),
            "stale span aged out"
        );
        // Fresh traffic re-adds it.
        c.record(span(0, 7, 21));
        assert_eq!(c.learned_path(ApiId(0), SimTime::from_secs(25)).len(), 1);
    }

    #[test]
    fn compact_prunes_but_preserves_fresh() {
        let mut c = TraceCollector::new(1, SimDuration::from_secs(10));
        c.record(span(0, 1, 1));
        c.record(span(0, 2, 14));
        c.compact(SimTime::from_secs(15));
        assert_eq!(
            c.learned_path(ApiId(0), SimTime::from_secs(15)),
            vec![ServiceId(2)]
        );
    }

    #[test]
    fn raw_buffer_is_bounded() {
        let mut c = TraceCollector::new(1, SimDuration::from_secs(10)).with_raw_buffer(3);
        for i in 0..10 {
            c.record(span(0, i, 1));
        }
        assert_eq!(c.raw_spans().count(), 3);
        let last: Vec<u32> = c.raw_spans().map(|s| s.service.0).collect();
        assert_eq!(last, vec![7, 8, 9], "keeps the most recent spans");
    }

    #[test]
    fn compaction_bounds_memory_over_long_runs() {
        // Simulated hours of traffic rotating through a large service id
        // space: without compaction the learner would accumulate one
        // entry per distinct service ever seen; with per-window
        // compaction it holds only services fresh within the window.
        let window = SimDuration::from_secs(60);
        let mut c = TraceCollector::new(4, window).with_raw_buffer(16);
        let mut peak = 0usize;
        for tick in 0..(6 * 60 * 60u64) {
            let now = SimTime::from_secs(tick);
            // Each second, each API touches a service id that rotates
            // through a space far larger than the retention window.
            for api in 0..4u32 {
                c.record(Span {
                    request: tick,
                    api: ApiId(api),
                    service: ServiceId((tick % 10_000) as u32 + api),
                    parent: None,
                    start: now,
                    end: now,
                    verdict: SpanVerdict::Admitted,
                });
            }
            if tick % 60 == 0 {
                c.compact(now);
            }
            peak = peak.max(c.tracked_entries());
        }
        // 4 APIs × (60 s window + 60 s compact cadence slack) entries.
        assert!(
            peak <= 4 * 2 * (window.as_nanos() / 1_000_000_000) as usize + 8,
            "tracked entries stay bounded by the window, peak {peak}"
        );
        assert!(c.raw_spans().count() <= 16);
        assert_eq!(c.spans_recorded(), 4 * 6 * 60 * 60);
    }

    #[test]
    fn span_duration() {
        let s = span(0, 0, 5);
        assert_eq!(s.duration(), SimDuration::from_secs(1));
    }

    #[test]
    fn rejected_spans_do_not_teach_paths() {
        let mut c = TraceCollector::new(1, SimDuration::from_secs(60)).with_raw_buffer(8);
        let mut rej = span(0, 4, 1);
        rej.verdict = SpanVerdict::RejectedAtEntry;
        c.record(rej);
        assert!(
            c.learned_path(ApiId(0), SimTime::from_secs(2)).is_empty(),
            "a rejected request exercised no services"
        );
        assert_eq!(c.spans_recorded(), 1);
        assert_eq!(c.rejected_recorded(), 1);
        // Raw buffer still keeps it for inspection.
        assert_eq!(c.raw_spans().count(), 1);
        // An admitted span for the same service does teach the path.
        c.record(span(0, 4, 2));
        assert_eq!(
            c.learned_path(ApiId(0), SimTime::from_secs(3)),
            vec![ServiceId(4)]
        );
        assert_eq!(c.rejected_recorded(), 1);
    }
}
