//! # cluster — a microservice cluster simulator
//!
//! A deterministic discrete-event model of a microservice application, the
//! substrate on which the TopFull reproduction runs. It stands in for the
//! paper's Kubernetes + Istio + Locust testbed (see DESIGN.md §2) while
//! preserving the dynamics the evaluation depends on:
//!
//! * **Services and pods** — each service runs `replicas` pods; a pod is a
//!   single-server FIFO queue with bounded backlog. Overload manifests as
//!   queue growth → latency growth → SLO violations, exactly the signal
//!   chain the paper's controllers react to.
//! * **APIs and execution paths** — an external API owns one or more
//!   weighted call trees over services ([`topology`]); a request fans out
//!   through its tree, and its end-to-end latency is the root's completion
//!   time. Work already done upstream of a downstream drop is wasted,
//!   which is the starvation mechanism of the paper's Figure 1.
//! * **Entry gateway** — per-API token-bucket rate limiting, the actuation
//!   point of TopFull ([`gateway`]).
//! * **Per-service admission hooks** — the actuation point of DAGOR and
//!   Breakwater ([`admission`]).
//! * **Autoscaling** — an HPA replica law plus a VM-pool cluster
//!   autoscaler with provisioning delays ([`autoscaler`]).
//! * **Failure injection** — scheduled pod kills and an overload
//!   crash-loop model ([`failure`]), plus a gray-failure fault plane
//!   (slow pods, lossy links, degraded telemetry, controller stalls —
//!   [`faults`]).
//! * **Observation** — 1-second snapshots of per-service utilization and
//!   per-API goodput/latency percentiles ([`observe`]), mirroring the
//!   paper's cAdvisor + Istio tracing collector.
//!
//! The [`engine::Engine`] ties these together; [`harness`] runs an engine
//! against a [`controller::Controller`] at the control cadence.

pub mod admission;
pub mod autoscaler;
pub mod controller;
pub mod engine;
pub mod entry_admission;
pub mod failure;
pub mod faults;
pub mod front;
pub mod gateway;
pub mod harness;
pub mod observe;
pub mod resilience;
pub mod sharded;
pub mod topology;
pub mod tracing;
pub mod types;
pub mod workload;

pub use controller::{Controller, NoControl, RateLimitUpdate};
pub use engine::{Engine, EngineConfig};
pub use entry_admission::EntryAdmission;
pub use faults::FaultSpec;
pub use harness::{Harness, RunResult, WatchdogConfig, WatchdogStats};
pub use observe::{ApiWindow, ClusterObservation, ServiceWindow};
pub use resilience::{
    BreakerConfig, BreakerState, DeadlineConfig, EdgeBreakers, ResilienceConfig, ResilienceStats,
    RetryBudget, RetryBudgetConfig,
};
pub use sharded::{ShardFault, ShardSlicer};
pub use topology::{ApiSpec, CallNode, ServiceSpec, Topology};
pub use types::{ApiId, BusinessPriority, RequestMeta, ServiceId};
pub use workload::{
    ClosedLoopWorkload, OpenLoopWorkload, RateSchedule, ResponseKind, RetryStormWorkload, Workload,
};
