//! Synthetic 23k-microservice trace for the §2 / §6.4 analyses.
//!
//! The paper analyzes the Alibaba cluster trace (23,481 microservices) to
//! establish that (a) starvation-vulnerable overload is common — "44.4% of
//! APIs among those involved in overloaded microservices were potentially
//! vulnerable to starvation" (§2) — and (b) clustering fragments the
//! overload-control problem well — "the initial problem with 68
//! overloaded microservices is divided into 57 independent clusters with
//! each sub-problem containing 1.19 constraints on average"; "59% of
//! [overloaded microservices] do not share any overlapping APIs …
//! forming an average of 2.38 microservices that share any common APIs"
//! (§6.4).
//!
//! The original trace is proprietary; [`SyntheticTrace::generate`] emits a
//! trace with the same published structure: 23,481 services, an
//! overloaded set of 68 built from isolated services plus small sharing
//! groups, and API paths arranged so the analysis functions reproduce the
//! paper's statistics. Background services/APIs fill out the population.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use simnet::rng::fork;

/// Total services, matching the Alibaba trace analysis.
pub const NUM_SERVICES: usize = 23_481;
/// Overloaded services at the analyzed instant.
pub const NUM_OVERLOADED: usize = 68;
/// CPU-utilization threshold classifying "overloaded".
pub const OVERLOAD_THRESHOLD: f64 = 0.8;

/// A point-in-time trace snapshot: utilizations plus API execution paths.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SyntheticTrace {
    /// Per-service CPU utilization in `[0, 1]`.
    pub utilization: Vec<f64>,
    /// Per-API set of services on its execution path (service indices).
    pub api_paths: Vec<Vec<u32>>,
}

/// §2-style starvation-vulnerability statistics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StarvationStats {
    /// APIs whose path includes ≥1 overloaded service.
    pub involved_apis: usize,
    /// Of those, APIs on ≥2 overloaded services that also have ≥2
    /// contending APIs at some overloaded service — the Figure 1 shape.
    pub vulnerable_apis: usize,
}

impl StarvationStats {
    /// Vulnerable fraction (paper: 44.4%).
    pub fn vulnerable_fraction(&self) -> f64 {
        if self.involved_apis == 0 {
            0.0
        } else {
            self.vulnerable_apis as f64 / self.involved_apis as f64
        }
    }
}

/// §6.4-style sharing statistics over overloaded services.
#[derive(Clone, Debug, PartialEq)]
pub struct SharingStats {
    pub overloaded: usize,
    /// Overloaded services sharing no API with any other overloaded one.
    pub isolated: usize,
    /// Sizes of the connected sharing groups (of size ≥ 2).
    pub group_sizes: Vec<usize>,
}

impl SharingStats {
    /// Fraction of overloaded services that are isolated (paper: 59%).
    pub fn isolated_fraction(&self) -> f64 {
        if self.overloaded == 0 {
            0.0
        } else {
            self.isolated as f64 / self.overloaded as f64
        }
    }

    /// Mean sharing-group size (paper: 2.38).
    pub fn mean_group_size(&self) -> f64 {
        if self.group_sizes.is_empty() {
            0.0
        } else {
            self.group_sizes.iter().sum::<usize>() as f64 / self.group_sizes.len() as f64
        }
    }

    /// Number of independent clusters the overload problem splits into
    /// (isolated services + sharing groups; paper: 57).
    pub fn num_clusters(&self) -> usize {
        self.isolated + self.group_sizes.len()
    }

    /// Mean constraints (overloaded services) per cluster (paper: 1.19).
    pub fn mean_constraints_per_cluster(&self) -> f64 {
        if self.num_clusters() == 0 {
            0.0
        } else {
            self.overloaded as f64 / self.num_clusters() as f64
        }
    }
}

impl SyntheticTrace {
    /// Generate the snapshot. Deterministic per seed.
    pub fn generate(seed: u64) -> Self {
        let mut rng = fork(seed, "alibaba-trace");
        // Background utilization: busy cluster, but below threshold.
        let mut utilization: Vec<f64> = (0..NUM_SERVICES)
            .map(|_| rng.gen_range(0.05..0.75))
            .collect();

        // Choose the 68 overloaded services: 49 isolated + 8 groups
        // ([3,3,3,2,2,2,2,2] = 19) → 57 clusters, 68/57 = 1.19
        // constraints per cluster, mean group size 19/8 = 2.375.
        let mut ids: Vec<u32> = (0..NUM_SERVICES as u32).collect();
        ids.shuffle(&mut rng);
        let group_sizes = [3usize, 3, 3, 2, 2, 2, 2, 2];
        let num_grouped: usize = group_sizes.iter().sum();
        let isolated: Vec<u32> = ids[..49].to_vec();
        let grouped: Vec<u32> = ids[49..49 + num_grouped].to_vec();
        for &s in isolated.iter().chain(grouped.iter()) {
            utilization[s as usize] = rng.gen_range(0.82..0.99);
        }

        let mut api_paths: Vec<Vec<u32>> = Vec::new();
        let mut background_pool: Vec<u32> = ids[49 + num_grouped..].to_vec();
        let bg = |rng: &mut rand::rngs::SmallRng, pool: &mut Vec<u32>, n: usize| -> Vec<u32> {
            (0..n)
                .map(|_| {
                    let i = rng.gen_range(0..pool.len());
                    pool[i]
                })
                .collect()
        };

        // Isolated overloaded services: 2 contending APIs each, every API
        // passing exactly one overloaded service → involved but NOT
        // vulnerable.
        for &s in &isolated {
            for _ in 0..2 {
                let mut path = vec![s];
                path.extend(bg(&mut rng, &mut background_pool, 3));
                api_paths.push(path);
            }
        }

        // Sharing groups: APIs spanning ≥2 members of the group → those
        // members share APIs (transitively one cluster) and the spanning
        // APIs are starvation-vulnerable. ~10 spanning APIs per group
        // calibrates the §2 ratio: 78 vulnerable / (98 + 78) ≈ 44.4%.
        let mut cursor = 0;
        for (gi, &size) in group_sizes.iter().enumerate() {
            let members = &grouped[cursor..cursor + size];
            cursor += size;
            let spanning = if gi < 6 { 10 } else { 9 }; // 6×10 + 2×9 = 78
            for k in 0..spanning {
                let a = members[k % size];
                let b = members[(k + 1) % size];
                let mut path = vec![a];
                if b != a {
                    path.push(b);
                }
                path.extend(bg(&mut rng, &mut background_pool, 2));
                api_paths.push(path);
            }
        }

        // Background APIs over non-overloaded services only.
        for _ in 0..1800 {
            let len = rng.gen_range(3..=10);
            api_paths.push(bg(&mut rng, &mut background_pool, len));
        }

        SyntheticTrace {
            utilization,
            api_paths,
        }
    }

    /// Services above the overload threshold.
    pub fn overloaded(&self, threshold: f64) -> Vec<u32> {
        self.utilization
            .iter()
            .enumerate()
            .filter(|(_, u)| **u > threshold)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// §2 starvation-vulnerability analysis.
    pub fn starvation_analysis(&self, threshold: f64) -> StarvationStats {
        let over: std::collections::HashSet<u32> = self.overloaded(threshold).into_iter().collect();
        // Contending APIs per overloaded service.
        let mut contenders: std::collections::HashMap<u32, usize> =
            std::collections::HashMap::new();
        for path in &self.api_paths {
            for s in path {
                if over.contains(s) {
                    *contenders.entry(*s).or_insert(0) += 1;
                }
            }
        }
        let mut involved = 0;
        let mut vulnerable = 0;
        for path in &self.api_paths {
            let on_over: Vec<u32> = path.iter().copied().filter(|s| over.contains(s)).collect();
            if on_over.is_empty() {
                continue;
            }
            involved += 1;
            let multi_overloaded = on_over.len() >= 2;
            let contended = on_over.iter().any(|s| contenders[s] >= 2);
            if multi_overloaded && contended {
                vulnerable += 1;
            }
        }
        StarvationStats {
            involved_apis: involved,
            vulnerable_apis: vulnerable,
        }
    }

    /// §6.4 sharing analysis: union overloaded services that co-occur in
    /// some API's path, then report isolation and group sizes.
    pub fn sharing_analysis(&self, threshold: f64) -> SharingStats {
        let over = self.overloaded(threshold);
        let index: std::collections::HashMap<u32, usize> =
            over.iter().enumerate().map(|(i, s)| (*s, i)).collect();
        // Union-find over overloaded services.
        let mut parent: Vec<usize> = (0..over.len()).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let r = find(parent, parent[x]);
                parent[x] = r;
            }
            parent[x]
        }
        for path in &self.api_paths {
            let on_over: Vec<usize> = path.iter().filter_map(|s| index.get(s).copied()).collect();
            for w in on_over.windows(2) {
                let (a, b) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
                if a != b {
                    parent[a] = b;
                }
            }
        }
        let mut sizes: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        for i in 0..over.len() {
            let r = find(&mut parent, i);
            *sizes.entry(r).or_insert(0) += 1;
        }
        let isolated = sizes.values().filter(|s| **s == 1).count();
        let mut group_sizes: Vec<usize> = sizes.values().copied().filter(|s| *s >= 2).collect();
        group_sizes.sort_unstable();
        SharingStats {
            overloaded: over.len(),
            isolated,
            group_sizes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overloaded_count_matches_paper() {
        let tr = SyntheticTrace::generate(1);
        assert_eq!(tr.utilization.len(), NUM_SERVICES);
        assert_eq!(tr.overloaded(OVERLOAD_THRESHOLD).len(), NUM_OVERLOADED);
    }

    #[test]
    fn clustering_stats_match_paper() {
        let tr = SyntheticTrace::generate(1);
        let s = tr.sharing_analysis(OVERLOAD_THRESHOLD);
        assert_eq!(s.num_clusters(), 57, "57 independent clusters");
        assert!(
            (s.mean_constraints_per_cluster() - 1.19).abs() < 0.01,
            "1.19 constraints per cluster, got {}",
            s.mean_constraints_per_cluster()
        );
        assert!(
            (s.mean_group_size() - 2.38).abs() < 0.05,
            "mean sharing group ≈2.38, got {}",
            s.mean_group_size()
        );
        assert!(s.isolated_fraction() > 0.5, "majority isolated");
    }

    #[test]
    fn starvation_fraction_matches_paper() {
        let tr = SyntheticTrace::generate(1);
        let s = tr.starvation_analysis(OVERLOAD_THRESHOLD);
        let f = s.vulnerable_fraction();
        assert!(
            (0.40..=0.49).contains(&f),
            "≈44.4% vulnerable, got {f} ({}/{})",
            s.vulnerable_apis,
            s.involved_apis
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SyntheticTrace::generate(5);
        let b = SyntheticTrace::generate(5);
        assert_eq!(a.overloaded(0.8), b.overloaded(0.8));
        let c = SyntheticTrace::generate(6);
        assert_ne!(a.overloaded(0.8), c.overloaded(0.8));
    }

    #[test]
    fn empty_threshold_edge_cases() {
        let tr = SyntheticTrace::generate(2);
        // Threshold 1.0: nothing overloaded.
        let s = tr.sharing_analysis(1.0);
        assert_eq!(s.overloaded, 0);
        assert_eq!(s.num_clusters(), 0);
        assert_eq!(s.mean_constraints_per_cluster(), 0.0);
        let st = tr.starvation_analysis(1.0);
        assert_eq!(st.involved_apis, 0);
        assert_eq!(st.vulnerable_fraction(), 0.0);
    }
}
