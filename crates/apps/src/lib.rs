//! # apps — benchmark application topologies
//!
//! The three applications the paper evaluates on (§6 "Experimental
//! Setup"), modeled as [`cluster::Topology`] values:
//!
//! * [`online_boutique`] — Google's Online Boutique demo: 11 services,
//!   5 external APIs (`postcheckout`, `getproduct`, `getcart`, `postcart`,
//!   `emptycart`), with `recommendation` and `checkout` as the natural
//!   bottlenecks (paper Figures 2–3).
//! * [`train_ticket`] — FudanSE's Train Ticket benchmark: 41 services,
//!   the paper's 6 APIs (`high_speed_ticket`, `normal_speed_ticket`,
//!   `query_order`, `query_order_other`, `query_food`, `query_payment`)
//!   plus a `preserve` booking API that exercises the write path.
//! * [`alibaba`] — the paper's real-trace demo application rebuilt from
//!   the Alibaba trace shape: 127 services, 25 APIs, 43 execution paths,
//!   8 branching APIs (up to 6 branches), 13 overload-prone services.
//! * [`trace`] — a 23k-microservice synthetic trace reproducing the §2
//!   starvation-vulnerability analysis and §6.4 clustering statistics.
//!
//! Capacities are expressed as per-call CPU costs and replica counts; the
//! absolute numbers are calibrated so the experiments of §6 recreate the
//! same bottlenecks the paper reports, not the authors' exact hardware.

pub mod alibaba;
pub mod online_boutique;
pub mod trace;
pub mod train_ticket;

pub use alibaba::AlibabaDemo;
pub use online_boutique::OnlineBoutique;
pub use train_ticket::TrainTicket;
