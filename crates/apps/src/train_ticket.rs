//! Train Ticket: 41 microservices, the paper's 6 evaluated APIs.
//!
//! Modeled after FudanSE's Train Ticket benchmark as deployed by the paper
//! (Figure 7; "Train Ticket contains 41 microservices"). §6: "API 1, 2, 3,
//! 4, 5, 6 corresponds to high speed ticket, normal speed ticket, query
//! order, query order other, query food, and query payment". A seventh
//! `preserve` (seat booking) API exercises the write path and the many
//! auxiliary services; it is not part of the paper's measured set but
//! makes the topology's long tail reachable.
//!
//! The capacity profile follows the benchmark's well-known hot spots:
//! `ts-basic` (fan-out hub for ticket queries), `ts-station` (name
//! lookups on nearly every path; the Fig. 18 failure-injection target),
//! `ts-travel` and `ts-order`.

use cluster::types::BusinessPriority;
use cluster::{ApiId, ApiSpec, CallNode, ServiceId, ServiceSpec, Topology};
use simnet::SimDuration;

fn ms_f(x: f64) -> SimDuration {
    SimDuration::from_secs_f64(x / 1e3)
}

/// Handle bundling the topology with the ids experiments need.
#[derive(Clone, Debug)]
pub struct TrainTicket {
    pub topology: Topology,
    // Core path services.
    pub gateway: ServiceId,
    pub travel: ServiceId,
    pub travel2: ServiceId,
    pub ticketinfo: ServiceId,
    pub basic: ServiceId,
    pub station: ServiceId,
    pub train: ServiceId,
    pub route: ServiceId,
    pub price: ServiceId,
    pub seat: ServiceId,
    pub config: ServiceId,
    pub order: ServiceId,
    pub order_other: ServiceId,
    pub food: ServiceId,
    pub food_map: ServiceId,
    pub inside_payment: ServiceId,
    pub payment: ServiceId,
    // Preserve-path services.
    pub preserve: ServiceId,
    pub security: ServiceId,
    pub contacts: ServiceId,
    pub assurance: ServiceId,
    pub consign: ServiceId,
    pub consign_price: ServiceId,
    pub user: ServiceId,
    // APIs in the paper's numbering (API 1..=6), plus preserve.
    pub high_speed_ticket: ApiId,
    pub normal_speed_ticket: ApiId,
    pub query_order: ApiId,
    pub query_order_other: ApiId,
    pub query_food: ApiId,
    pub query_payment: ApiId,
    pub preserve_api: ApiId,
}

impl TrainTicket {
    /// Build the topology with the default (paper-scale) deployment.
    pub fn build() -> Self {
        let mut t = Topology::new("train-ticket");
        // -- services on the evaluated paths --
        let gateway = t.add_service(ServiceSpec::new("ts-gateway", 8));
        let travel = t.add_service(ServiceSpec::new("ts-travel-service", 4));
        let travel2 = t.add_service(ServiceSpec::new("ts-travel2-service", 3));
        let ticketinfo = t.add_service(ServiceSpec::new("ts-ticketinfo-service", 4));
        let basic = t.add_service(ServiceSpec::new("ts-basic-service", 4));
        let station = t.add_service(ServiceSpec::new("ts-station-service", 6));
        let train = t.add_service(ServiceSpec::new("ts-train-service", 3));
        let route = t.add_service(ServiceSpec::new("ts-route-service", 4));
        let price = t.add_service(ServiceSpec::new("ts-price-service", 3));
        let seat = t.add_service(ServiceSpec::new("ts-seat-service", 3));
        let config = t.add_service(ServiceSpec::new("ts-config-service", 2));
        let order = t.add_service(ServiceSpec::new("ts-order-service", 4));
        let order_other = t.add_service(ServiceSpec::new("ts-order-other-service", 3));
        let food = t.add_service(ServiceSpec::new("ts-food-service", 3));
        let food_map = t.add_service(ServiceSpec::new("ts-food-map-service", 2));
        let inside_payment = t.add_service(ServiceSpec::new("ts-inside-payment-service", 3));
        let payment = t.add_service(ServiceSpec::new("ts-payment-service", 2));
        // -- preserve (booking) path --
        let preserve = t.add_service(ServiceSpec::new("ts-preserve-service", 3));
        let security = t.add_service(ServiceSpec::new("ts-security-service", 2));
        let contacts = t.add_service(ServiceSpec::new("ts-contacts-service", 2));
        let assurance = t.add_service(ServiceSpec::new("ts-assurance-service", 2));
        let consign = t.add_service(ServiceSpec::new("ts-consign-service", 2));
        let consign_price = t.add_service(ServiceSpec::new("ts-consign-price-service", 2));
        let user = t.add_service(ServiceSpec::new("ts-user-service", 2));
        // -- long tail to 41 services (present in the deployment, not on
        //    the evaluated read paths) --
        for name in [
            "ts-auth-service",
            "ts-verification-code-service",
            "ts-preserve-other-service",
            "ts-cancel-service",
            "ts-rebook-service",
            "ts-execute-service",
            "ts-notification-service",
            "ts-delivery-service",
            "ts-news-service",
            "ts-voucher-service",
            "ts-avatar-service",
            "ts-route-plan-service",
            "ts-travel-plan-service",
            "ts-admin-basic-info-service",
            "ts-admin-order-service",
            "ts-admin-route-service",
            "ts-admin-travel-service",
        ] {
            t.add_service(ServiceSpec::new(name, 1));
        }
        assert_eq!(t.num_services(), 41, "Train Ticket has 41 services");

        // Shared query core: travel-ish services consult ticketinfo →
        // basic → {station, train, route, price}.
        let basic_fanout = |basic_cost: f64| {
            CallNode::with_children(
                basic,
                ms_f(basic_cost),
                vec![
                    CallNode::leaf(station, ms_f(1.0)),
                    CallNode::leaf(train, ms_f(0.8)),
                    CallNode::leaf(route, ms_f(1.0)),
                    CallNode::leaf(price, ms_f(0.8)),
                ],
            )
        };

        // API 1: high speed ticket query.
        let high_speed_ticket = t.add_api(
            ApiSpec::single(
                "high_speed_ticket",
                CallNode::with_children(
                    gateway,
                    ms_f(0.5),
                    vec![CallNode::with_children(
                        travel,
                        ms_f(3.0),
                        vec![
                            CallNode::with_children(ticketinfo, ms_f(1.5), vec![basic_fanout(2.0)]),
                            CallNode::with_children(
                                seat,
                                ms_f(1.5),
                                vec![
                                    CallNode::leaf(config, ms_f(0.5)),
                                    CallNode::leaf(order, ms_f(1.0)),
                                ],
                            ),
                            CallNode::leaf(route, ms_f(1.0)),
                        ],
                    )],
                ),
            )
            .business(BusinessPriority(0)),
        );
        // API 2: normal speed ticket query.
        let normal_speed_ticket = t.add_api(
            ApiSpec::single(
                "normal_speed_ticket",
                CallNode::with_children(
                    gateway,
                    ms_f(0.5),
                    vec![CallNode::with_children(
                        travel2,
                        ms_f(3.0),
                        vec![
                            CallNode::with_children(ticketinfo, ms_f(1.5), vec![basic_fanout(2.0)]),
                            CallNode::with_children(
                                seat,
                                ms_f(1.5),
                                vec![
                                    CallNode::leaf(config, ms_f(0.5)),
                                    CallNode::leaf(order_other, ms_f(1.0)),
                                ],
                            ),
                            CallNode::leaf(route, ms_f(1.0)),
                        ],
                    )],
                ),
            )
            .business(BusinessPriority(0)),
        );
        // API 3: query order.
        let query_order = t.add_api(
            ApiSpec::single(
                "query_order",
                CallNode::with_children(
                    gateway,
                    ms_f(0.5),
                    vec![CallNode::with_children(
                        order,
                        ms_f(2.0),
                        vec![CallNode::leaf(station, ms_f(1.0))],
                    )],
                ),
            )
            .business(BusinessPriority(0)),
        );
        // API 4: query order other.
        let query_order_other = t.add_api(
            ApiSpec::single(
                "query_order_other",
                CallNode::with_children(
                    gateway,
                    ms_f(0.5),
                    vec![CallNode::with_children(
                        order_other,
                        ms_f(2.0),
                        vec![CallNode::leaf(station, ms_f(1.0))],
                    )],
                ),
            )
            .business(BusinessPriority(0)),
        );
        // API 5: query food.
        let query_food = t.add_api(
            ApiSpec::single(
                "query_food",
                CallNode::with_children(
                    gateway,
                    ms_f(0.5),
                    vec![CallNode::with_children(
                        food,
                        ms_f(2.0),
                        vec![
                            CallNode::leaf(food_map, ms_f(1.5)),
                            CallNode::with_children(
                                travel,
                                ms_f(1.5),
                                vec![CallNode::leaf(route, ms_f(1.0))],
                            ),
                            CallNode::leaf(station, ms_f(1.0)),
                        ],
                    )],
                ),
            )
            .business(BusinessPriority(0)),
        );
        // API 6: query payment.
        let query_payment = t.add_api(
            ApiSpec::single(
                "query_payment",
                CallNode::with_children(
                    gateway,
                    ms_f(0.5),
                    vec![CallNode::with_children(
                        inside_payment,
                        ms_f(2.0),
                        vec![
                            CallNode::leaf(payment, ms_f(1.5)),
                            CallNode::leaf(order, ms_f(1.0)),
                        ],
                    )],
                ),
            )
            .business(BusinessPriority(0)),
        );
        // Preserve: the booking write path (not in the paper's measured
        // API set; exercises the auxiliary services).
        let preserve_api = t.add_api(
            ApiSpec::single(
                "preserve",
                CallNode::with_children(
                    gateway,
                    ms_f(0.5),
                    vec![CallNode::with_children(
                        preserve,
                        ms_f(3.0),
                        vec![
                            CallNode::with_children(
                                security,
                                ms_f(1.5),
                                vec![CallNode::leaf(order, ms_f(1.0))],
                            ),
                            CallNode::leaf(contacts, ms_f(1.0)),
                            CallNode::with_children(
                                travel,
                                ms_f(2.0),
                                vec![CallNode::with_children(
                                    ticketinfo,
                                    ms_f(1.5),
                                    vec![basic_fanout(2.0)],
                                )],
                            ),
                            CallNode::leaf(assurance, ms_f(1.0)),
                            CallNode::leaf(food, ms_f(1.5)),
                            CallNode::with_children(
                                consign,
                                ms_f(1.5),
                                vec![CallNode::leaf(consign_price, ms_f(0.5))],
                            ),
                            CallNode::leaf(user, ms_f(1.0)),
                        ],
                    )],
                ),
            )
            .business(BusinessPriority(0)),
        );

        TrainTicket {
            topology: t,
            gateway,
            travel,
            travel2,
            ticketinfo,
            basic,
            station,
            train,
            route,
            price,
            seat,
            config,
            order,
            order_other,
            food,
            food_map,
            inside_payment,
            payment,
            preserve,
            security,
            contacts,
            assurance,
            consign,
            consign_price,
            user,
            high_speed_ticket,
            normal_speed_ticket,
            query_order,
            query_order_other,
            query_food,
            query_payment,
            preserve_api,
        }
    }

    /// The six measured APIs in the paper's order (API 1..=6).
    pub fn apis(&self) -> [ApiId; 6] {
        [
            self.high_speed_ticket,
            self.normal_speed_ticket,
            self.query_order,
            self.query_order_other,
            self.query_food,
            self.query_payment,
        ]
    }
}

impl Default for TrainTicket {
    fn default() -> Self {
        Self::build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_41_services_and_7_apis() {
        let tt = TrainTicket::build();
        assert_eq!(tt.topology.num_services(), 41);
        assert_eq!(tt.topology.num_apis(), 7);
    }

    #[test]
    fn station_is_widely_shared() {
        // Fig. 18 injects failures into ts-station; overload there must
        // affect several APIs for the experiment to be meaningful.
        let tt = TrainTicket::build();
        let users = tt.topology.service_api_map()[tt.station.idx()].clone();
        assert!(
            users.len() >= 4,
            "ts-station should serve ≥4 APIs, got {users:?}"
        );
    }

    #[test]
    fn ticket_queries_share_basic_hub() {
        let tt = TrainTicket::build();
        let hs = tt.topology.api(tt.high_speed_ticket).touched_services();
        let ns = tt.topology.api(tt.normal_speed_ticket).touched_services();
        assert!(hs.contains(&tt.basic));
        assert!(ns.contains(&tt.basic));
        // But they use different order stores.
        assert!(hs.contains(&tt.order) && !hs.contains(&tt.order_other));
        assert!(ns.contains(&tt.order_other));
    }

    #[test]
    fn order_paths_are_disjoint_up_to_shared_infra() {
        let tt = TrainTicket::build();
        let qo = tt.topology.api(tt.query_order).touched_services();
        let qoo = tt.topology.api(tt.query_order_other).touched_services();
        assert!(qo.contains(&tt.order) && !qo.contains(&tt.order_other));
        assert!(qoo.contains(&tt.order_other) && !qoo.contains(&tt.order));
        // Both share the gateway and station only.
        let shared: Vec<_> = qo.iter().filter(|s| qoo.contains(s)).collect();
        assert_eq!(shared.len(), 2);
    }

    #[test]
    fn business_priorities_equal_by_default() {
        let tt = TrainTicket::build();
        for api in tt.apis() {
            assert_eq!(
                tt.topology.api(api).business,
                cluster::types::BusinessPriority(0)
            );
        }
    }

    #[test]
    fn preserve_reaches_the_write_tail() {
        let tt = TrainTicket::build();
        let p = tt.topology.api(tt.preserve_api).touched_services();
        for s in [tt.security, tt.contacts, tt.assurance, tt.consign, tt.user] {
            assert!(p.contains(&s));
        }
        assert!(p.len() >= 15, "preserve is a long path, got {}", p.len());
    }
}
