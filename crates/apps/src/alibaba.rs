//! The real-trace demo application (paper §5, Figure 20).
//!
//! The paper validates TopFull at scale on a demo application rebuilt
//! from the Alibaba microservice trace: "composed of 127 microservices
//! and 25 APIs with a total of 43 execution paths. Among 25 APIs, 8 APIs
//! have branching execution paths of up to 6. In our overload
//! experiments, 13 microservices are designed to be overloaded by
//! imitating microservice utilization data from the trace."
//!
//! We rebuild the same *shape* with a seeded generator: a layered service
//! graph (entry gateways → aggregation layer → logic layer → data layer),
//! 25 APIs whose path counts are `[6,5,4,3,2,2,2,2]` for the branching
//! eight plus 17 single-path APIs (43 paths total), and 13 designated
//! hot services with deliberately low capacity that multiple APIs share
//! — the precondition for the starvation scenarios of §2.

use cluster::types::BusinessPriority;
use cluster::{ApiId, ApiSpec, CallNode, ServiceId, ServiceSpec, Topology};
use rand::seq::SliceRandom;
use rand::Rng;
use simnet::rng::fork;
use simnet::SimDuration;

/// Branch counts of the 8 branching APIs (sums with 17 singles to 43).
pub const BRANCH_COUNTS: [usize; 8] = [6, 5, 4, 3, 2, 2, 2, 2];
/// Total services in the demo.
pub const NUM_SERVICES: usize = 127;
/// Total external APIs.
pub const NUM_APIS: usize = 25;
/// Hot (overload-prone) services.
pub const NUM_HOT: usize = 13;

/// Handle bundling the generated topology and its structure.
#[derive(Clone, Debug)]
pub struct AlibabaDemo {
    pub topology: Topology,
    /// The 13 overload-prone services.
    pub hot_services: Vec<ServiceId>,
    /// All 25 APIs in id order.
    pub apis: Vec<ApiId>,
}

struct Layers {
    entries: Vec<ServiceId>,
    aggregation: Vec<ServiceId>,
    logic: Vec<ServiceId>,
    data: Vec<ServiceId>,
}

impl AlibabaDemo {
    /// Generate the demo application from a seed. The same seed always
    /// produces the same topology.
    pub fn build(seed: u64) -> Self {
        let mut rng = fork(seed, "alibaba-demo");
        let mut t = Topology::new("alibaba-demo");

        // 127 services: 3 entries + 38 aggregation + 46 logic + 40 data.
        let mk = |t: &mut Topology, prefix: &str, n: usize, rng: &mut rand::rngs::SmallRng| {
            (0..n)
                .map(|i| {
                    let replicas = rng.gen_range(3..=6);
                    t.add_service(ServiceSpec::new(format!("{prefix}-{i:03}"), replicas))
                })
                .collect::<Vec<_>>()
        };
        let entries = mk(&mut t, "gw", 3, &mut rng);
        let aggregation = mk(&mut t, "agg", 38, &mut rng);
        let logic = mk(&mut t, "logic", 46, &mut rng);
        let data = mk(&mut t, "data", 40, &mut rng);
        assert_eq!(t.num_services(), NUM_SERVICES);

        // Pick 13 hot services from the aggregation + logic layers and
        // shrink them: few replicas, heavier per-call cost.
        let mut mid: Vec<ServiceId> = aggregation.iter().chain(logic.iter()).copied().collect();
        mid.shuffle(&mut rng);
        let hot_services: Vec<ServiceId> = mid[..NUM_HOT].to_vec();
        for &h in &hot_services {
            let spec = t.service_mut(h);
            spec.replicas = 2;
        }

        let layers = Layers {
            entries,
            aggregation,
            logic,
            data,
        };

        // Round-robin pools guaranteeing every service lands on ≥1 path.
        let mut unused_agg = layers.aggregation.clone();
        let mut unused_logic = layers.logic.clone();
        let mut unused_data = layers.data.clone();
        unused_agg.shuffle(&mut rng);
        unused_logic.shuffle(&mut rng);
        unused_data.shuffle(&mut rng);

        let pick =
            |pool: &mut Vec<ServiceId>, all: &[ServiceId], rng: &mut rand::rngs::SmallRng| {
                pool.pop()
                    .unwrap_or_else(|| *all.choose(rng).expect("non-empty layer"))
            };

        let hot_cost = |svc: ServiceId, hot: &[ServiceId], rng: &mut rand::rngs::SmallRng| {
            let base = if hot.contains(&svc) {
                rng.gen_range(3.0..6.0)
            } else {
                rng.gen_range(0.5..2.0)
            };
            SimDuration::from_secs_f64(base / 1e3)
        };

        // Path builder: entry → agg → {1..3 logic} → {0..1 data each},
        // with a forced station at `anchor` (a hot service) so hot
        // services are shared across APIs.
        let build_path = |anchor: Option<ServiceId>,
                          rng: &mut rand::rngs::SmallRng,
                          unused_agg: &mut Vec<ServiceId>,
                          unused_logic: &mut Vec<ServiceId>,
                          unused_data: &mut Vec<ServiceId>| {
            let entry = *layers.entries.choose(rng).expect("entries");
            let anchored_agg = matches!(anchor, Some(a) if layers.aggregation.contains(&a));
            let agg = if anchored_agg {
                anchor.expect("checked")
            } else {
                pick(unused_agg, &layers.aggregation, rng)
            };
            let n_logic = rng.gen_range(1..=3usize);
            let mut logic_children = Vec::new();
            // When the anchor occupied the aggregation slot, still drain
            // the aggregation pool so every service lands on some path.
            if anchored_agg {
                if let Some(extra) = unused_agg.pop() {
                    logic_children.push(CallNode::leaf(extra, hot_cost(extra, &hot_services, rng)));
                }
            }
            for li in 0..n_logic {
                let lsvc = match anchor {
                    Some(a) if li == 0 && layers.logic.contains(&a) => a,
                    _ => pick(unused_logic, &layers.logic, rng),
                };
                let mut kids = Vec::new();
                if rng.gen_bool(0.7) || !unused_data.is_empty() {
                    let d = pick(unused_data, &layers.data, rng);
                    kids.push(CallNode::leaf(d, hot_cost(d, &hot_services, rng)));
                }
                logic_children.push(CallNode::with_children(
                    lsvc,
                    hot_cost(lsvc, &hot_services, rng),
                    kids,
                ));
            }
            CallNode::with_children(
                entry,
                SimDuration::from_secs_f64(0.5 / 1e3),
                vec![CallNode::with_children(
                    agg,
                    hot_cost(agg, &hot_services, rng),
                    logic_children,
                )],
            )
        };

        // 25 APIs: the first 8 branch, the rest are single-path. Each API
        // is anchored on a hot service (cycling through the 13) so every
        // hot service is shared by ≈2 APIs.
        let mut apis = Vec::with_capacity(NUM_APIS);
        let mut hot_cycle = hot_services.iter().cycle();
        let path_counts = BRANCH_COUNTS
            .iter()
            .copied()
            .chain(std::iter::repeat(1))
            .take(NUM_APIS);
        for (i, n_paths) in path_counts.enumerate() {
            let anchor = *hot_cycle.next().expect("cycle");
            let mut paths = Vec::with_capacity(n_paths);
            for b in 0..n_paths {
                // Every branch keeps the anchor so the API reliably
                // touches its hot service; branch weight decays.
                let root = build_path(
                    Some(anchor),
                    &mut rng,
                    &mut unused_agg,
                    &mut unused_logic,
                    &mut unused_data,
                );
                paths.push((1.0 / (b as f64 + 1.0), root));
            }
            let api = t.add_api(
                ApiSpec::branching(format!("api-{i:02}"), paths).business(BusinessPriority(0)),
            );
            apis.push(api);
        }

        AlibabaDemo {
            topology: t,
            hot_services,
            apis,
        }
    }

    /// Total number of execution paths across all APIs.
    pub fn total_paths(&self) -> usize {
        self.topology.apis().map(|(_, a)| a.paths.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_shape() {
        let d = AlibabaDemo::build(7);
        assert_eq!(d.topology.num_services(), 127);
        assert_eq!(d.topology.num_apis(), 25);
        assert_eq!(d.total_paths(), 43, "43 execution paths");
        assert_eq!(d.hot_services.len(), 13);
        let branching = d.topology.apis().filter(|(_, a)| a.paths.len() > 1).count();
        assert_eq!(branching, 8, "8 branching APIs");
        let max_branches = d.topology.apis().map(|(_, a)| a.paths.len()).max().unwrap();
        assert_eq!(max_branches, 6, "branching up to 6");
    }

    #[test]
    fn every_service_is_on_some_path() {
        let d = AlibabaDemo::build(7);
        let by_service = d.topology.service_api_map();
        let orphan = by_service.iter().filter(|apis| apis.is_empty()).count();
        // Entry/agg/logic/data coverage is guaranteed by round-robin
        // pools; allow a tiny residue from pool exhaustion randomness.
        assert!(
            orphan <= 3,
            "{orphan} services on no execution path (want ~0)"
        );
    }

    #[test]
    fn hot_services_are_shared_by_multiple_apis() {
        let d = AlibabaDemo::build(7);
        let by_service = d.topology.service_api_map();
        let mut shared = 0;
        for &h in &d.hot_services {
            if by_service[h.idx()].len() >= 2 {
                shared += 1;
            }
        }
        assert!(
            shared >= 10,
            "most hot services shared by ≥2 APIs, got {shared}/13"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = AlibabaDemo::build(42);
        let b = AlibabaDemo::build(42);
        assert_eq!(a.topology.num_apis(), b.topology.num_apis());
        for (ai, bi) in a.topology.apis().zip(b.topology.apis()) {
            assert_eq!(ai.1.touched_services(), bi.1.touched_services());
        }
        let c = AlibabaDemo::build(43);
        let differs = a
            .topology
            .apis()
            .zip(c.topology.apis())
            .any(|(x, y)| x.1.touched_services() != y.1.touched_services());
        assert!(differs, "different seeds produce different wiring");
    }

    #[test]
    fn hot_services_have_low_capacity() {
        let d = AlibabaDemo::build(7);
        for &h in &d.hot_services {
            assert_eq!(d.topology.service(h).replicas, 2);
        }
    }
}
