//! Online Boutique: 11 microservices, 5 external APIs.
//!
//! Modeled after Google's microservices demo as deployed by the paper
//! (Figure 2). The five APIs follow §6 "Benchmark Application Setup":
//! "API 1, 2, 3, 4, 5 corresponds to postcheckout, getproduct, getcart,
//! postcart, and emptycart". Execution paths follow the real application:
//!
//! * `postcheckout` — frontend → checkout → {cart → redis, productcatalog,
//!   currency, shipping, payment, email}, and the order-confirmation page
//!   also renders recommendations (frontend → recommendation →
//!   productcatalog). This is why the paper's Figure 3 shows Post
//!   Checkout and Get Product *sharing* the Recommend and Product
//!   services.
//! * `getproduct` — frontend → {productcatalog, currency, cart → redis,
//!   recommendation → productcatalog, ad}.
//! * `getcart` — frontend → {cart → redis, recommendation →
//!   productcatalog, currency, shipping}.
//! * `postcart` — frontend → {productcatalog, cart → redis}.
//! * `emptycart` — frontend → cart → redis.
//!
//! `recommendation` and `checkout` are the capacity bottlenecks, matching
//! the paper's overload scenario (Figure 3), and `recommendation` is
//! marked `crash_on_overload` to reproduce the §6.3 crash cascade
//! ("Recommendation microservice's pods completely failed at the initial
//! traffic surge").

use cluster::types::BusinessPriority;
use cluster::{ApiId, ApiSpec, CallNode, ServiceId, ServiceSpec, Topology};
use simnet::SimDuration;

/// Handle bundling the topology with named service/API ids.
#[derive(Clone, Debug)]
pub struct OnlineBoutique {
    pub topology: Topology,
    // Services.
    pub frontend: ServiceId,
    pub cart: ServiceId,
    pub productcatalog: ServiceId,
    pub currency: ServiceId,
    pub payment: ServiceId,
    pub shipping: ServiceId,
    pub email: ServiceId,
    pub checkout: ServiceId,
    pub recommendation: ServiceId,
    pub ad: ServiceId,
    pub redis: ServiceId,
    // APIs, in the paper's numbering (API 1..=5).
    pub postcheckout: ApiId,
    pub getproduct: ApiId,
    pub getcart: ApiId,
    pub postcart: ApiId,
    pub emptycart: ApiId,
}

fn ms_f(x: f64) -> SimDuration {
    SimDuration::from_secs_f64(x / 1e3)
}

impl OnlineBoutique {
    /// Build the topology with the default (paper-scale) deployment.
    ///
    /// Default per-service capacity ≈ `replicas / cost`:
    /// recommendation ≈ 500 rps and checkout ≈ 400 rps are the
    /// bottlenecks; everything else has ≥ 2000 rps of headroom.
    pub fn build() -> Self {
        let mut t = Topology::new("online-boutique");
        let frontend = t.add_service(ServiceSpec::new("frontend", 8));
        let cart = t.add_service(ServiceSpec::new("cartservice", 2));
        let productcatalog = t.add_service(ServiceSpec::new("productcatalogservice", 6));
        let currency = t.add_service(ServiceSpec::new("currencyservice", 4));
        let payment = t.add_service(ServiceSpec::new("paymentservice", 2));
        let shipping = t.add_service(ServiceSpec::new("shippingservice", 2));
        let email = t.add_service(ServiceSpec::new("emailservice", 2));
        let checkout = t.add_service(
            // ≈2 s of backlog at the 5 ms checkout cost; deeper queues
            // would mean double-digit-seconds drains no RPC stack buffers.
            ServiceSpec::new("checkoutservice", 2).queue_capacity(400),
        );
        let recommendation = t.add_service(
            ServiceSpec::new("recommendationservice", 2)
                .queue_capacity(256)
                .crash_on_overload(),
        );
        let ad = t.add_service(ServiceSpec::new("adservice", 2));
        let redis = t.add_service(ServiceSpec::new("redis-cart", 2));

        // API 1: postcheckout (highest business priority by default).
        let postcheckout = t.add_api(
            ApiSpec::single(
                "postcheckout",
                CallNode::with_children(
                    frontend,
                    ms_f(1.0),
                    vec![
                        CallNode::with_children(
                            checkout,
                            ms_f(5.0),
                            vec![
                                CallNode::with_children(
                                    cart,
                                    ms_f(1.0),
                                    vec![CallNode::leaf(redis, ms_f(0.3))],
                                ),
                                CallNode::leaf(productcatalog, ms_f(1.5)),
                                CallNode::leaf(currency, ms_f(0.5)),
                                CallNode::leaf(shipping, ms_f(1.0)),
                                CallNode::leaf(payment, ms_f(2.5)),
                                CallNode::leaf(email, ms_f(1.0)),
                            ],
                        ),
                        // Order-confirmation page recommendations
                        // (lighter than the product page's).
                        CallNode::with_children(
                            recommendation,
                            ms_f(2.0),
                            vec![CallNode::leaf(productcatalog, ms_f(1.0))],
                        ),
                    ],
                ),
            )
            .business(BusinessPriority(0)),
        );
        // API 2: getproduct.
        let getproduct = t.add_api(
            ApiSpec::single(
                "getproduct",
                CallNode::with_children(
                    frontend,
                    ms_f(1.0),
                    vec![
                        CallNode::leaf(productcatalog, ms_f(1.5)),
                        CallNode::leaf(currency, ms_f(1.0)),
                        CallNode::with_children(
                            cart,
                            ms_f(0.5),
                            vec![CallNode::leaf(redis, ms_f(0.3))],
                        ),
                        CallNode::with_children(
                            recommendation,
                            ms_f(4.0),
                            vec![CallNode::leaf(productcatalog, ms_f(1.0))],
                        ),
                        CallNode::leaf(ad, ms_f(1.0)),
                    ],
                ),
            )
            .business(BusinessPriority(0)),
        );
        // API 3: getcart.
        let getcart = t.add_api(
            ApiSpec::single(
                "getcart",
                CallNode::with_children(
                    frontend,
                    ms_f(1.0),
                    vec![
                        CallNode::with_children(
                            cart,
                            ms_f(1.0),
                            vec![CallNode::leaf(redis, ms_f(0.3))],
                        ),
                        CallNode::with_children(
                            recommendation,
                            ms_f(4.0),
                            vec![CallNode::leaf(productcatalog, ms_f(1.0))],
                        ),
                        CallNode::leaf(currency, ms_f(1.0)),
                        CallNode::leaf(shipping, ms_f(1.0)),
                    ],
                ),
            )
            .business(BusinessPriority(0)),
        );
        // API 4: postcart.
        let postcart = t.add_api(
            ApiSpec::single(
                "postcart",
                CallNode::with_children(
                    frontend,
                    ms_f(1.0),
                    vec![
                        CallNode::leaf(productcatalog, ms_f(1.5)),
                        CallNode::with_children(
                            cart,
                            ms_f(1.5),
                            vec![CallNode::leaf(redis, ms_f(0.8))],
                        ),
                    ],
                ),
            )
            .business(BusinessPriority(0)),
        );
        // API 5: emptycart.
        let emptycart = t.add_api(
            ApiSpec::single(
                "emptycart",
                CallNode::with_children(
                    frontend,
                    ms_f(1.0),
                    vec![CallNode::with_children(
                        cart,
                        ms_f(1.0),
                        vec![CallNode::leaf(redis, ms_f(0.5))],
                    )],
                ),
            )
            .business(BusinessPriority(0)),
        );

        OnlineBoutique {
            topology: t,
            frontend,
            cart,
            productcatalog,
            currency,
            payment,
            shipping,
            email,
            checkout,
            recommendation,
            ad,
            redis,
            postcheckout,
            getproduct,
            getcart,
            postcart,
            emptycart,
        }
    }

    /// The five APIs in the paper's order (API 1..=5).
    pub fn apis(&self) -> [ApiId; 5] {
        [
            self.postcheckout,
            self.getproduct,
            self.getcart,
            self.postcart,
            self.emptycart,
        ]
    }

    /// Approximate serving capacity of a service in requests/s for a call
    /// of `cost` CPU-milliseconds, for experiment calibration.
    pub fn capacity_rps(&self, svc: ServiceId, cost_ms: f64) -> f64 {
        let spec = self.topology.service(svc);
        f64::from(spec.replicas) * spec.pod_speed * 1000.0 / cost_ms
    }
}

impl Default for OnlineBoutique {
    fn default() -> Self {
        Self::build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_eleven_services_and_five_apis() {
        let ob = OnlineBoutique::build();
        assert_eq!(ob.topology.num_services(), 11);
        assert_eq!(ob.topology.num_apis(), 5);
    }

    #[test]
    fn postcheckout_and_getproduct_share_recommend_and_product() {
        // The Figure 3 overload scenario requires these two APIs to share
        // the Recommendation and ProductCatalog services.
        let ob = OnlineBoutique::build();
        let p1 = ob.topology.api(ob.postcheckout).touched_services();
        let p2 = ob.topology.api(ob.getproduct).touched_services();
        for s in [ob.recommendation, ob.productcatalog] {
            assert!(p1.contains(&s), "postcheckout must touch {s}");
            assert!(p2.contains(&s), "getproduct must touch {s}");
        }
        assert!(p1.contains(&ob.checkout));
        assert!(!p2.contains(&ob.checkout));
    }

    #[test]
    fn business_priorities_equal_by_default() {
        // The paper assigns distinct priorities only in the Fig. 11/12
        // experiments; the default deployment treats APIs equally.
        let ob = OnlineBoutique::build();
        for api in ob.apis() {
            assert_eq!(ob.topology.api(api).business, BusinessPriority(0));
        }
    }

    #[test]
    fn recommendation_and_checkout_are_bottlenecks() {
        let ob = OnlineBoutique::build();
        let rec = ob.capacity_rps(ob.recommendation, 4.0);
        let chk = ob.capacity_rps(ob.checkout, 5.0);
        let front = ob.capacity_rps(ob.frontend, 1.0);
        assert!(rec < 600.0, "recommendation cap {rec}");
        assert!(chk < 600.0, "checkout cap {chk}");
        assert!(front > 4000.0, "frontend cap {front}");
    }

    #[test]
    fn recommendation_crash_loops_cart_does_not() {
        let ob = OnlineBoutique::build();
        assert!(ob.topology.service(ob.recommendation).crash_on_overload);
        assert!(!ob.topology.service(ob.cart).crash_on_overload);
    }

    #[test]
    fn every_api_starts_at_frontend() {
        let ob = OnlineBoutique::build();
        for api in ob.apis() {
            let spec = ob.topology.api(api);
            for (_, root) in &spec.paths {
                assert_eq!(
                    root.service, ob.frontend,
                    "{} enters via frontend",
                    spec.name
                );
            }
        }
    }
}
