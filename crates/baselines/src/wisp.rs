//! WISP: distributed rate limiting pushed toward the upper layers.
//!
//! Re-implementation of WISP [Suresh et al., SoCC '17] as the paper
//! characterizes it (§7): "WISP collects downstream microservices'
//! admission rates and applies a priori weights to make rate-limit
//! decisions at the upper microservices\[,\] trying to rate limit at the
//! upper layer as much as possible. Nevertheless, their request drop
//! policy makes them vulnerable to the random sub-request drop identified
//! by DAGOR[, and] WISP does not consider the contending relationship
//! between client requests … leaving it vulnerable to a starvation
//! problem."
//!
//! Model: every service runs a delay-driven AIMD rate `R_s` (its own
//! protection), and each interval the *effective* limit
//! `E_s = min(R_s, min_child E_child / w(s, child))` propagates bottleneck
//! capacity up the call graph using the a-priori call weights `w` derived
//! from the execution paths. Admission enforces `E_s` with a token bucket
//! at dispatch time, so most drops happen at the top of the tree — but
//! drops remain identity-blind (random with respect to requests and
//! APIs), preserving the weaknesses the paper analyzes.
//!
//! WISP is discussed but not evaluated in the paper; this implementation
//! exists as an *extension* comparator (see the `retry-storm` and fig. 8
//! extension rows in EXPERIMENTS.md).

use cluster::admission::AdmissionControl;
use cluster::observe::ClusterObservation;
use cluster::types::{RequestMeta, ServiceId};
use cluster::Topology;
use simnet::{SimDuration, SimTime, TokenBucket};
use std::collections::HashMap;

/// WISP tuning parameters.
#[derive(Clone, Copy, Debug)]
pub struct WispConfig {
    /// Local queueing-delay target.
    pub target_delay: SimDuration,
    /// Additive rate growth per interval (requests/s).
    pub additive_step: f64,
    /// Multiplicative decrease factor under overload.
    pub beta: f64,
    /// Initial per-service rate (requests/s).
    pub initial_rate: f64,
    pub min_rate: f64,
}

impl Default for WispConfig {
    fn default() -> Self {
        WispConfig {
            target_delay: SimDuration::from_millis(20),
            additive_step: 40.0,
            beta: 0.4,
            initial_rate: 5_000.0,
            min_rate: 10.0,
        }
    }
}

/// WISP admission across all services.
pub struct Wisp {
    cfg: WispConfig,
    /// Local AIMD rates.
    rates: Vec<f64>,
    /// Effective (bottleneck-propagated) rates.
    effective: Vec<f64>,
    /// `children[s]` = `(child, weight)`: average calls to `child` per
    /// request processed at `s`, the a-priori weights.
    children: Vec<Vec<(ServiceId, f64)>>,
    buckets: Vec<TokenBucket>,
}

impl Wisp {
    /// Build WISP for a topology (the call-graph weights come from the
    /// execution paths, which WISP assumes known a priori).
    pub fn new(topo: &Topology, cfg: WispConfig) -> Self {
        let n = topo.num_services();
        // Count parent→child call edges over all paths, weighted by
        // branch weight, normalized per parent visit.
        let mut edge_calls: HashMap<(ServiceId, ServiceId), f64> = HashMap::new();
        let mut visits: HashMap<ServiceId, f64> = HashMap::new();
        for (_, api) in topo.apis() {
            let wsum: f64 = api.paths.iter().map(|(w, _)| *w).sum();
            for (w, root) in &api.paths {
                let share = if wsum > 0.0 { w / wsum } else { 0.0 };
                // Walk the tree, accumulating weighted visits and edges.
                let mut stack = vec![root];
                while let Some(node) = stack.pop() {
                    *visits.entry(node.service).or_insert(0.0) += share;
                    for c in &node.children {
                        *edge_calls.entry((node.service, c.service)).or_insert(0.0) += share;
                        stack.push(c);
                    }
                }
            }
        }
        let mut children: Vec<Vec<(ServiceId, f64)>> = vec![Vec::new(); n];
        for ((parent, child), calls) in edge_calls {
            let v = visits.get(&parent).copied().unwrap_or(1.0).max(1e-9);
            children[parent.idx()].push((child, calls / v));
        }
        for c in children.iter_mut() {
            c.sort_by_key(|(s, _)| *s);
        }
        Wisp {
            rates: vec![cfg.initial_rate; n],
            effective: vec![cfg.initial_rate; n],
            buckets: (0..n)
                .map(|_| TokenBucket::new(cfg.initial_rate, cfg.initial_rate * 0.05, SimTime::ZERO))
                .collect(),
            children,
            cfg,
        }
    }

    /// Current effective (propagated) rate of a service.
    pub fn effective_rate(&self, svc: ServiceId) -> f64 {
        self.effective[svc.idx()]
    }

    /// Current local AIMD rate of a service.
    pub fn local_rate(&self, svc: ServiceId) -> f64 {
        self.rates[svc.idx()]
    }

    /// Propagate bottleneck rates upward:
    /// `E_s = min(R_s, min_child E_child / w)`. The call graph is a DAG,
    /// so a few fixed-point sweeps converge.
    fn propagate(&mut self) {
        self.effective.copy_from_slice(&self.rates);
        for _ in 0..8 {
            let mut changed = false;
            for s in 0..self.children.len() {
                let mut e = self.rates[s];
                for (child, w) in &self.children[s] {
                    if *w > 1e-9 {
                        e = e.min(self.effective[child.idx()] / w);
                    }
                }
                if (e - self.effective[s]).abs() > 1e-9 {
                    self.effective[s] = e;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }
}

impl AdmissionControl for Wisp {
    fn admit(&mut self, service: ServiceId, _meta: &RequestMeta, now: SimTime) -> bool {
        self.buckets[service.idx()].try_admit(now)
    }

    fn on_interval(&mut self, obs: &ClusterObservation) {
        // Local AIMD on queueing delay (as in Breakwater's law).
        for w in &obs.services {
            let i = w.service.idx();
            let delay = w.mean_queuing_delay;
            if delay <= self.cfg.target_delay {
                self.rates[i] += self.cfg.additive_step;
            } else {
                let d = delay.as_secs_f64();
                let dt = self.cfg.target_delay.as_secs_f64();
                let severity = ((d - dt) / d).clamp(0.0, 1.0);
                self.rates[i] *= (1.0 - self.cfg.beta * severity).max(0.1);
            }
            self.rates[i] = self.rates[i].max(self.cfg.min_rate);
        }
        // Push bottleneck limits toward the entry.
        self.propagate();
        for (i, bucket) in self.buckets.iter_mut().enumerate() {
            let e = self.effective[i];
            bucket.set_rate_and_burst(e, (e * 0.05).max(1.0), obs.now);
        }
    }

    fn name(&self) -> &str {
        "wisp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::observe::{ApiWindow, ServiceWindow};
    use cluster::{ApiSpec, CallNode, ServiceSpec};

    fn chain_topo() -> (Topology, ServiceId, ServiceId, ServiceId) {
        // front → mid → back, one call each.
        let mut t = Topology::new("chain");
        let front = t.add_service(ServiceSpec::new("front", 4));
        let mid = t.add_service(ServiceSpec::new("mid", 2));
        let back = t.add_service(ServiceSpec::new("back", 1));
        t.add_api(ApiSpec::single(
            "x",
            CallNode::with_children(
                front,
                SimDuration::from_millis(1),
                vec![CallNode::with_children(
                    mid,
                    SimDuration::from_millis(1),
                    vec![CallNode::leaf(back, SimDuration::from_millis(1))],
                )],
            ),
        ));
        (t, front, mid, back)
    }

    fn obs(delays_ms: &[u64]) -> ClusterObservation {
        ClusterObservation {
            now: SimTime::from_secs(1),
            window: SimDuration::from_secs(1),
            services: delays_ms
                .iter()
                .enumerate()
                .map(|(i, d)| ServiceWindow {
                    service: ServiceId(i as u32),
                    name: format!("s{i}"),
                    utilization: 0.5,
                    alive_pods: 1,
                    desired_pods: 1,
                    queue_len: 0,
                    mean_queuing_delay: SimDuration::from_millis(*d),
                    started_calls: 100,
                    dropped_calls: 0,
                })
                .collect(),
            apis: Vec::<ApiWindow>::new(),
            api_paths: vec![],
            slo: SimDuration::from_secs(1),
            resilience: Default::default(),
            slo_burn: Vec::new(),
        }
    }

    #[test]
    fn weights_derive_from_paths() {
        let (t, front, mid, back) = chain_topo();
        let w = Wisp::new(&t, WispConfig::default());
        assert_eq!(w.children[front.idx()], vec![(mid, 1.0)]);
        assert_eq!(w.children[mid.idx()], vec![(back, 1.0)]);
        assert!(w.children[back.idx()].is_empty());
    }

    #[test]
    fn bottleneck_propagates_to_entry() {
        let (t, front, _mid, back) = chain_topo();
        let mut w = Wisp::new(&t, WispConfig::default());
        // Only the back service is overloaded.
        for _ in 0..10 {
            w.on_interval(&obs(&[1, 1, 200]));
        }
        let e_back = w.effective_rate(back);
        let e_front = w.effective_rate(front);
        assert!(
            (e_front - e_back).abs() < 1e-6,
            "entry limit tracks the downstream bottleneck: {e_front} vs {e_back}"
        );
        assert!(
            w.local_rate(front) > w.effective_rate(front),
            "front's own rate stays high; the propagated one binds"
        );
    }

    #[test]
    fn branch_weights_split_effective_rates() {
        // front calls `a` on 30% of requests (branch weight 0.3).
        let mut t = Topology::new("branch");
        let front = t.add_service(ServiceSpec::new("front", 4));
        let a = t.add_service(ServiceSpec::new("a", 1));
        t.add_api(ApiSpec::branching(
            "x",
            vec![
                (
                    0.3,
                    CallNode::with_children(
                        front,
                        SimDuration::from_millis(1),
                        vec![CallNode::leaf(a, SimDuration::from_millis(1))],
                    ),
                ),
                (0.7, CallNode::leaf(front, SimDuration::from_millis(1))),
            ],
        ));
        let mut w = Wisp::new(&t, WispConfig::default());
        for _ in 0..10 {
            w.on_interval(&obs(&[1, 300]));
        }
        // Only 30% of front's requests hit `a`, so front may run ~3.3×
        // faster than a's limit.
        let ratio = w.effective_rate(front) / w.effective_rate(a);
        assert!(
            (3.0..3.6).contains(&ratio),
            "weighted propagation: front/a = {ratio}"
        );
    }

    #[test]
    fn healthy_services_recover_additively() {
        let (t, front, _, _) = chain_topo();
        let mut w = Wisp::new(&t, WispConfig::default());
        for _ in 0..20 {
            w.on_interval(&obs(&[1, 1, 300]));
        }
        let low = w.effective_rate(front);
        for _ in 0..20 {
            w.on_interval(&obs(&[1, 1, 1]));
        }
        assert!(w.effective_rate(front) > low, "recovery after relief");
    }

    #[test]
    fn admission_enforces_effective_rate() {
        let (t, front, _, back) = chain_topo();
        let mut w = Wisp::new(&t, WispConfig::default());
        for _ in 0..30 {
            w.on_interval(&obs(&[1, 1, 500]));
        }
        let rate = w.effective_rate(front);
        let meta = RequestMeta {
            api: cluster::ApiId(0),
            business: cluster::types::BusinessPriority(0),
            user: 0,
            arrival: SimTime::ZERO,
            deadline: None,
        };
        let mut admitted = 0u64;
        let offers = 20_000u64;
        for k in 0..offers {
            let t = SimTime::from_secs(30) + SimDuration::from_nanos(k * 10_000_000_000 / offers);
            if w.admit(front, &meta, t) {
                admitted += 1;
            }
        }
        let admitted_rate = admitted as f64 / 10.0;
        assert!(
            (admitted_rate - rate).abs() / rate < 0.3,
            "bucket ≈ effective rate: {admitted_rate} vs {rate}"
        );
        let _ = back;
    }
}
