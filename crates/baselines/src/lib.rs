//! # baselines — comparator overload controllers
//!
//! Re-implementations of the two systems the paper benchmarks against
//! (§5 "Baseline implementation and parameters"), acting at the same
//! point they act in the paper: *inside* the application, per service,
//! via the engine's [`cluster::admission::AdmissionControl`] hook.
//!
//! * [`dagor`] — WeChat's DAGOR: per-service admission thresholds over
//!   (business, user) priority pairs, adjusted each second from local
//!   queueing delay, with thresholds propagated upstream so callers drop
//!   doomed sub-requests early.
//! * [`breakwater`] — Breakwater: per-server credit pools (modeled as a
//!   rate) grown additively while the local delay is under target and
//!   shrunk multiplicatively with overload severity, enforced with a
//!   token bucket on the server's incoming calls.
//! * [`wisp`] — WISP: per-service AIMD rate limits propagated toward the
//!   entry via a-priori call-graph weights. Discussed (not evaluated) in
//!   the paper's §7; implemented here as an extension comparator.
//!
//! The "no overload control" baseline is [`cluster::NoControl`] (entry)
//! plus no admission hook (services admit everything).

pub mod breakwater;
pub mod dagor;
pub mod wisp;

pub use breakwater::{Breakwater, BreakwaterConfig};
pub use dagor::{Dagor, DagorConfig};
pub use wisp::{Wisp, WispConfig};
