//! DAGOR: priority-threshold admission control per microservice.
//!
//! Re-implementation of WeChat's overload controller [Zhou et al., SoCC
//! '18] as the paper deploys it (§5): "every request is assigned a
//! pre-determined business priority for API type and random user priority
//! at the entry points. For every second, each pod sets a priority
//! threshold according to a queuing delay and the number of incoming
//! requests during the last second. The priority threshold is piggybacked
//! to its upstream service."
//!
//! A request carries a composite priority `level = business · 128 + user`
//! (lower = more important; the user part is drawn uniformly in `0..=127`
//! at entry and inherited by all sub-requests). Each service keeps an
//! admission threshold over levels and, critically, a **histogram of the
//! levels it saw last second** — WeChat adjusts the threshold so that a
//! *fraction of the observed load* is shed (α, default 5%) or re-admitted
//! (β, default 1%), not by a fixed number of levels. The engine consults
//! the downstream threshold at dispatch time, which models the
//! piggybacked early rejection exactly.
//!
//! The starvation the paper demonstrates (Figures 4, 11, 12) is inherent
//! to this design: each service sheds by priority using only local
//! signals, so an API throttled at one bottleneck still consumes
//! upstream capacity, and low-priority APIs are shed everywhere at once.

use cluster::admission::AdmissionControl;
use cluster::observe::ClusterObservation;
use cluster::types::{RequestMeta, ServiceId};
use simnet::{SimDuration, SimTime};

/// Levels per business priority tier (user priorities 0..=127).
pub const USER_LEVELS: u32 = 128;

/// DAGOR tuning parameters.
#[derive(Clone, Copy, Debug)]
pub struct DagorConfig {
    /// Queueing delay above which a service considers itself overloaded
    /// (WeChat uses ~20 ms of average queuing time).
    pub queuing_delay_threshold: SimDuration,
    /// Fraction of last-second load shed when overloaded (paper/Fig. 13:
    /// "static decisions of 0.05 multiplicative decreases").
    pub alpha: f64,
    /// Fraction of load re-admitted when healthy (paper: 0.01).
    pub beta: f64,
    /// Number of business tiers (level space is tiers × 128).
    pub business_tiers: u32,
}

impl Default for DagorConfig {
    fn default() -> Self {
        DagorConfig {
            queuing_delay_threshold: SimDuration::from_millis(20),
            alpha: 0.05,
            beta: 0.01,
            business_tiers: 8,
        }
    }
}

/// Per-service DAGOR state.
#[derive(Clone, Debug)]
struct SvcState {
    /// Admit levels strictly below this threshold.
    threshold: u32,
    /// Histogram of levels seen (admitted + rejected) last second.
    seen: Vec<u32>,
    /// Of which admitted.
    admitted: Vec<u32>,
}

/// DAGOR admission controller over all services.
#[derive(Clone, Debug)]
pub struct Dagor {
    cfg: DagorConfig,
    levels: u32,
    services: Vec<SvcState>,
}

impl Dagor {
    /// DAGOR for `num_services` services, initially admitting everything.
    pub fn new(num_services: usize, cfg: DagorConfig) -> Self {
        let levels = cfg.business_tiers * USER_LEVELS;
        Dagor {
            cfg,
            levels,
            services: (0..num_services)
                .map(|_| SvcState {
                    threshold: levels,
                    seen: vec![0; levels as usize],
                    admitted: vec![0; levels as usize],
                })
                .collect(),
        }
    }

    /// Composite priority level of a request (lower = more important).
    pub fn level(meta: &RequestMeta) -> u32 {
        u32::from(meta.business.0) * USER_LEVELS + u32::from(meta.user)
    }

    /// Current admission threshold of a service (for tests/inspection).
    pub fn threshold(&self, svc: ServiceId) -> u32 {
        self.services[svc.idx()].threshold
    }
}

impl AdmissionControl for Dagor {
    fn admit(&mut self, service: ServiceId, meta: &RequestMeta, _now: SimTime) -> bool {
        let level = Self::level(meta).min(self.levels - 1);
        let st = &mut self.services[service.idx()];
        st.seen[level as usize] += 1;
        let ok = level < st.threshold;
        if ok {
            st.admitted[level as usize] += 1;
        }
        ok
    }

    fn on_interval(&mut self, obs: &ClusterObservation) {
        for w in &obs.services {
            let st = &mut self.services[w.service.idx()];
            let overloaded = w.mean_queuing_delay > self.cfg.queuing_delay_threshold;
            let admitted_total: u64 = st.admitted.iter().map(|c| u64::from(*c)).sum();
            if overloaded {
                // Shed the top α fraction of last second's admitted load:
                // walk levels ascending until (1-α) of it is covered.
                if admitted_total > 0 {
                    let keep = (admitted_total as f64 * (1.0 - self.cfg.alpha)) as u64;
                    let mut acc = 0u64;
                    let mut new_th = 0u32;
                    for (lvl, c) in st.admitted.iter().enumerate() {
                        if acc >= keep {
                            break;
                        }
                        acc += u64::from(*c);
                        new_th = lvl as u32 + 1;
                    }
                    // Always make progress by at least one level.
                    st.threshold = new_th.min(st.threshold.saturating_sub(1));
                } else {
                    st.threshold = st.threshold.saturating_sub(1);
                }
            } else if st.threshold < self.levels {
                // Re-admit ≈β of the load: extend the threshold upward
                // until the rejected histogram would add β more requests
                // (at least one level so recovery always proceeds).
                let extra_target = ((admitted_total as f64 * self.cfg.beta) as u64).max(1);
                let mut acc = 0u64;
                let mut th = st.threshold;
                while th < self.levels {
                    acc += u64::from(st.seen[th as usize]);
                    th += 1;
                    if acc >= extra_target {
                        break;
                    }
                }
                st.threshold = th;
            }
            st.seen.iter_mut().for_each(|c| *c = 0);
            st.admitted.iter_mut().for_each(|c| *c = 0);
        }
    }

    fn name(&self) -> &str {
        "dagor"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::observe::{ApiWindow, ServiceWindow};
    use cluster::types::{ApiId, BusinessPriority};
    use rand::Rng;

    fn meta(business: u8, user: u8) -> RequestMeta {
        RequestMeta {
            api: ApiId(0),
            business: BusinessPriority(business),
            user,
            arrival: SimTime::ZERO,
            deadline: None,
        }
    }

    fn obs_with_delay(delays_ms: &[u64]) -> ClusterObservation {
        ClusterObservation {
            now: SimTime::from_secs(1),
            window: SimDuration::from_secs(1),
            services: delays_ms
                .iter()
                .enumerate()
                .map(|(i, d)| ServiceWindow {
                    service: ServiceId(i as u32),
                    name: format!("s{i}"),
                    utilization: 0.5,
                    alive_pods: 1,
                    desired_pods: 1,
                    queue_len: 0,
                    mean_queuing_delay: SimDuration::from_millis(*d),
                    started_calls: 100,
                    dropped_calls: 0,
                })
                .collect(),
            apis: Vec::<ApiWindow>::new(),
            api_paths: vec![],
            slo: SimDuration::from_secs(1),
            resilience: Default::default(),
            slo_burn: Vec::new(),
        }
    }

    /// Offer `n` uniform-priority requests of one business tier.
    fn offer(d: &mut Dagor, svc: ServiceId, business: u8, n: u32, rng: &mut impl Rng) -> u32 {
        let mut admitted = 0;
        for _ in 0..n {
            if d.admit(svc, &meta(business, rng.gen_range(0..=127)), SimTime::ZERO) {
                admitted += 1;
            }
        }
        admitted
    }

    #[test]
    fn level_orders_business_before_user() {
        assert!(Dagor::level(&meta(0, 127)) < Dagor::level(&meta(1, 0)));
        assert!(Dagor::level(&meta(1, 10)) < Dagor::level(&meta(1, 11)));
    }

    #[test]
    fn admits_everything_initially() {
        let mut d = Dagor::new(2, DagorConfig::default());
        assert!(d.admit(ServiceId(0), &meta(7, 127), SimTime::ZERO));
    }

    #[test]
    fn sheds_alpha_fraction_of_observed_load() {
        let mut d = Dagor::new(1, DagorConfig::default());
        let mut rng = simnet::rng::fork(1, "t");
        let svc = ServiceId(0);
        // One overloaded interval with 10k single-tier requests: the
        // threshold should move into the occupied band, shedding ≈5%.
        offer(&mut d, svc, 0, 10_000, &mut rng);
        d.on_interval(&obs_with_delay(&[50]));
        let th = d.threshold(svc);
        assert!(
            th < 128,
            "threshold must cut into the occupied tier, got {th}"
        );
        let admitted = offer(&mut d, svc, 0, 10_000, &mut rng);
        let frac = f64::from(admitted) / 10_000.0;
        assert!(
            (0.92..=0.98).contains(&frac),
            "≈95% admitted after one α=0.05 cut, got {frac}"
        );
    }

    #[test]
    fn repeated_overload_converges_to_load_fraction() {
        // 20 overloaded seconds at α=0.05 → ≈0.95^20 ≈ 36% admitted.
        let mut d = Dagor::new(1, DagorConfig::default());
        let mut rng = simnet::rng::fork(2, "t");
        let svc = ServiceId(0);
        let mut last = 0.0;
        for _ in 0..20 {
            let admitted = offer(&mut d, svc, 0, 5_000, &mut rng);
            last = f64::from(admitted) / 5_000.0;
            d.on_interval(&obs_with_delay(&[50]));
        }
        assert!(
            (0.25..=0.50).contains(&last),
            "≈0.95^19 ≈ 38% admitted, got {last}"
        );
    }

    #[test]
    fn recovery_readmits_beta_fraction() {
        let mut d = Dagor::new(1, DagorConfig::default());
        let mut rng = simnet::rng::fork(3, "t");
        let svc = ServiceId(0);
        for _ in 0..20 {
            offer(&mut d, svc, 0, 5_000, &mut rng);
            d.on_interval(&obs_with_delay(&[50]));
        }
        let low = d.threshold(svc);
        // Healthy intervals: threshold climbs back (at least one level
        // per interval, ≈β of load when the histogram is populated).
        for _ in 0..300 {
            offer(&mut d, svc, 0, 5_000, &mut rng);
            d.on_interval(&obs_with_delay(&[1]));
        }
        let high = d.threshold(svc);
        assert!(high > low, "threshold recovers: {low} → {high}");
        assert!(high <= 8 * 128);
    }

    #[test]
    fn sheds_low_business_priority_first() {
        let mut d = Dagor::new(1, DagorConfig::default());
        let mut rng = simnet::rng::fork(4, "t");
        let svc = ServiceId(0);
        // Two tiers offering equally; sustained overload. Each interval
        // sheds 5% of observed load from the top of the level space, so
        // the low tier empties long before the high tier.
        for _ in 0..30 {
            offer(&mut d, svc, 0, 2_000, &mut rng);
            offer(&mut d, svc, 5, 2_000, &mut rng);
            d.on_interval(&obs_with_delay(&[50]));
        }
        let high_adm = offer(&mut d, svc, 0, 1_000, &mut rng);
        let low_adm = offer(&mut d, svc, 5, 1_000, &mut rng);
        assert!(
            high_adm > 0,
            "high business priority still partially admitted"
        );
        assert_eq!(low_adm, 0, "low business priority fully shed first");
    }

    #[test]
    fn thresholds_are_per_service() {
        let mut d = Dagor::new(2, DagorConfig::default());
        let mut rng = simnet::rng::fork(5, "t");
        for _ in 0..10 {
            offer(&mut d, ServiceId(0), 0, 1_000, &mut rng);
            offer(&mut d, ServiceId(1), 0, 1_000, &mut rng);
            d.on_interval(&obs_with_delay(&[50, 1]));
        }
        assert!(d.threshold(ServiceId(0)) < d.threshold(ServiceId(1)));
    }

    #[test]
    fn admission_is_monotone_in_priority() {
        let mut d = Dagor::new(1, DagorConfig::default());
        let mut rng = simnet::rng::fork(6, "t");
        for _ in 0..15 {
            offer(&mut d, ServiceId(0), 3, 3_000, &mut rng);
            d.on_interval(&obs_with_delay(&[50]));
        }
        let mut last_admitted = true;
        for biz in 0..8u8 {
            let admitted = d.admit(ServiceId(0), &meta(biz, 64), SimTime::ZERO);
            assert!(
                last_admitted || !admitted,
                "admission must be monotone in priority"
            );
            last_admitted = admitted;
        }
    }
}
