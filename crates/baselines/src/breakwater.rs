//! Breakwater: credit-based per-server overload control.
//!
//! Re-implementation of Breakwater [Cho et al., OSDI '20] as the paper
//! deploys it (§5): "it is implemented in each pod regarding gRPC
//! exchange between pods as a client-server relationship. Each pod
//! informs its token thresholds to the upstream pods, where upstream pods
//! generate tokens following the thresholds."
//!
//! Per server (service), a credit pool sets how many requests upstream
//! clients may send. Following the paper's §6.3 description of the
//! control law: the pool "increases the admitted rate additively …
//! when the measured delay is less than the target delay" and
//! "multiplicatively decreases the admitted rate proportional to the
//! level of overload, … the difference between the measured delay and
//! the target delay". We model the distributed credit pool as a
//! per-service admitted-*rate* enforced with a token bucket at dispatch
//! time (client-side credit gating).
//!
//! Because every service sheds independently and *randomly* with respect
//! to request identity, a request crossing `k` overloaded tiers survives
//! with probability `(1-p)^k` — the multi-tier weakness §6.1 analyzes.
//!
//! A second weakness the paper measures (Fig. 9: "Breakwater suffers
//! from further performance degradation when user demands increase") is
//! the per-client credit floor: every connected client holds at least
//! one credit, so with `n` clients the server cannot issue fewer than
//! `n × (1/credit_lifetime)` requests/s of credit no matter how small
//! its pool. We model this floor with
//! [`BreakwaterConfig::min_credit_rate_per_client`], estimating the
//! clients contacting a service from the offered rate of the APIs whose
//! paths cross it (1 request/s per Locust user).

use cluster::admission::AdmissionControl;
use cluster::observe::ClusterObservation;
use cluster::types::{RequestMeta, ServiceId};
use simnet::{SimDuration, SimTime, TokenBucket};

/// Breakwater tuning parameters.
#[derive(Clone, Copy, Debug)]
pub struct BreakwaterConfig {
    /// Target queueing delay (Breakwater's `d_t`).
    pub target_delay: SimDuration,
    /// Additive credit growth per interval, in requests/s.
    pub additive_step: f64,
    /// Sensitivity of the multiplicative decrease to overload severity
    /// (Breakwater's β).
    pub beta: f64,
    /// Initial per-service admitted rate (requests/s).
    pub initial_rate: f64,
    /// Floor on the admitted rate so recovery is always possible.
    pub min_rate: f64,
    /// Credit floor per connected client, in requests/s (one credit per
    /// client, refreshed every ~3 s ⇒ ≈0.3). Set to 0 to disable the
    /// many-client weakness.
    pub min_credit_rate_per_client: f64,
}

impl Default for BreakwaterConfig {
    fn default() -> Self {
        BreakwaterConfig {
            target_delay: SimDuration::from_millis(20),
            additive_step: 40.0,
            beta: 0.4,
            initial_rate: 5_000.0,
            min_rate: 10.0,
            min_credit_rate_per_client: 0.3,
        }
    }
}

/// Breakwater admission across all services.
pub struct Breakwater {
    cfg: BreakwaterConfig,
    /// Per-service admitted rate (the distributed credit pool).
    rates: Vec<f64>,
    /// Per-service enforcement buckets.
    buckets: Vec<TokenBucket>,
}

impl Breakwater {
    /// Breakwater for `num_services` services.
    pub fn new(num_services: usize, cfg: BreakwaterConfig) -> Self {
        Breakwater {
            rates: vec![cfg.initial_rate; num_services],
            buckets: (0..num_services)
                .map(|_| TokenBucket::new(cfg.initial_rate, cfg.initial_rate * 0.05, SimTime::ZERO))
                .collect(),
            cfg,
        }
    }

    /// Current admitted rate of a service (for tests/inspection).
    pub fn rate(&self, svc: ServiceId) -> f64 {
        self.rates[svc.idx()]
    }
}

impl AdmissionControl for Breakwater {
    fn admit(&mut self, service: ServiceId, _meta: &RequestMeta, now: SimTime) -> bool {
        self.buckets[service.idx()].try_admit(now)
    }

    fn on_interval(&mut self, obs: &ClusterObservation) {
        // Clients contacting each service ≈ offered rate of the APIs
        // whose (possible) paths cross it, at 1 request/s per client.
        let mut clients = vec![0.0f64; self.rates.len()];
        for (api_idx, path) in obs.api_paths.iter().enumerate() {
            let offered = obs.apis.get(api_idx).map(|a| a.offered).unwrap_or(0.0);
            for svc in path {
                if let Some(c) = clients.get_mut(svc.idx()) {
                    *c += offered;
                }
            }
        }
        for w in &obs.services {
            let i = w.service.idx();
            let delay = w.mean_queuing_delay;
            let rate = &mut self.rates[i];
            if delay <= self.cfg.target_delay {
                *rate += self.cfg.additive_step;
            } else {
                // Overload level = (d - d_t) / d, in (0, 1).
                let d = delay.as_secs_f64();
                let dt = self.cfg.target_delay.as_secs_f64();
                let severity = ((d - dt) / d).clamp(0.0, 1.0);
                *rate *= (1.0 - self.cfg.beta * severity).max(0.1);
            }
            *rate = rate.max(self.cfg.min_rate);
            // The per-client credit floor: the server cannot issue less.
            let issued = rate.max(self.cfg.min_credit_rate_per_client * clients[i]);
            self.buckets[i].set_rate_and_burst(issued, (issued * 0.05).max(1.0), obs.now);
        }
    }

    fn name(&self) -> &str {
        "breakwater"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::observe::{ApiWindow, ServiceWindow};
    use cluster::types::{ApiId, BusinessPriority};

    fn meta() -> RequestMeta {
        RequestMeta {
            api: ApiId(0),
            business: BusinessPriority(0),
            user: 0,
            arrival: SimTime::ZERO,
            deadline: None,
        }
    }

    fn obs(now_s: u64, delays_ms: &[u64]) -> ClusterObservation {
        ClusterObservation {
            now: SimTime::from_secs(now_s),
            window: SimDuration::from_secs(1),
            services: delays_ms
                .iter()
                .enumerate()
                .map(|(i, d)| ServiceWindow {
                    service: ServiceId(i as u32),
                    name: format!("s{i}"),
                    utilization: 0.5,
                    alive_pods: 1,
                    desired_pods: 1,
                    queue_len: 0,
                    mean_queuing_delay: SimDuration::from_millis(*d),
                    started_calls: 100,
                    dropped_calls: 0,
                })
                .collect(),
            apis: Vec::<ApiWindow>::new(),
            api_paths: vec![],
            slo: SimDuration::from_secs(1),
            resilience: Default::default(),
            slo_burn: Vec::new(),
        }
    }

    #[test]
    fn decreases_multiplicatively_under_overload() {
        let mut b = Breakwater::new(1, BreakwaterConfig::default());
        let r0 = b.rate(ServiceId(0));
        b.on_interval(&obs(1, &[100]));
        let r1 = b.rate(ServiceId(0));
        assert!(r1 < r0 * 0.8, "severe overload cuts hard: {r0} → {r1}");
    }

    #[test]
    fn decrease_scales_with_severity() {
        let mut mild = Breakwater::new(1, BreakwaterConfig::default());
        let mut severe = Breakwater::new(1, BreakwaterConfig::default());
        mild.on_interval(&obs(1, &[25]));
        severe.on_interval(&obs(1, &[500]));
        assert!(severe.rate(ServiceId(0)) < mild.rate(ServiceId(0)));
    }

    #[test]
    fn increases_additively_when_healthy() {
        let mut b = Breakwater::new(1, BreakwaterConfig::default());
        // Crash the rate first.
        for s in 1..=20 {
            b.on_interval(&obs(s, &[200]));
        }
        let low = b.rate(ServiceId(0));
        for s in 21..=30 {
            b.on_interval(&obs(s, &[1]));
        }
        let grown = b.rate(ServiceId(0));
        let cfg = BreakwaterConfig::default();
        assert!(
            (grown - (low + 10.0 * cfg.additive_step)).abs() < 1e-6,
            "AI growth: {low} → {grown}"
        );
    }

    #[test]
    fn rate_never_falls_below_floor() {
        let mut b = Breakwater::new(1, BreakwaterConfig::default());
        for s in 1..=200 {
            b.on_interval(&obs(s, &[1_000]));
        }
        assert!(b.rate(ServiceId(0)) >= BreakwaterConfig::default().min_rate);
    }

    #[test]
    fn bucket_enforces_the_rate() {
        let mut b = Breakwater::new(1, BreakwaterConfig::default());
        for s in 1..=30 {
            b.on_interval(&obs(s, &[200]));
        }
        let rate = b.rate(ServiceId(0));
        // Offer 10× the rate for 10 s; admitted should track `rate`.
        let mut admitted = 0u64;
        let offers = (rate * 10.0) as u64 * 10;
        for k in 0..offers {
            let t = SimTime::from_secs(30)
                + SimDuration::from_nanos(k * 10_000_000_000 / offers.max(1));
            if b.admit(ServiceId(0), &meta(), t) {
                admitted += 1;
            }
        }
        let admitted_rate = admitted as f64 / 10.0;
        assert!(
            (admitted_rate - rate).abs() / rate < 0.25,
            "admitted {admitted_rate} vs credit rate {rate}"
        );
    }

    #[test]
    fn credit_floor_grows_with_client_count() {
        // Even with a crushed AIMD rate, many clients force issuance.
        let mut b = Breakwater::new(1, BreakwaterConfig::default());
        let mut o = obs(1, &[500]);
        o.api_paths = vec![vec![ServiceId(0)]];
        o.apis = vec![ApiWindow {
            api: ApiId(0),
            name: "a".into(),
            business: BusinessPriority(0),
            offered: 4_000.0,
            admitted: 4_000.0,
            goodput: 100.0,
            slo_violated: 0.0,
            failed: 0.0,
            p50: None,
            p95: None,
            p99: None,
            rate_limit: f64::INFINITY,
        }];
        for s in 1..=30 {
            o.now = SimTime::from_secs(s);
            b.on_interval(&o);
        }
        // AIMD rate is at the floor, but 4000 clients × 0.3 = 1200 rps
        // of credits must still be issued.
        let meta = meta();
        let mut admitted = 0u64;
        for k in 0..20_000u64 {
            let t = SimTime::from_secs(30) + SimDuration::from_nanos(k * 500_000);
            if b.admit(ServiceId(0), &meta, t) {
                admitted += 1;
            }
        }
        let rate = admitted as f64 / 10.0;
        assert!(
            rate > 900.0,
            "credit floor must dominate the crushed AIMD rate, got {rate}"
        );
    }

    #[test]
    fn services_are_independent() {
        let mut b = Breakwater::new(2, BreakwaterConfig::default());
        for s in 1..=10 {
            b.on_interval(&obs(s, &[300, 1]));
        }
        assert!(b.rate(ServiceId(0)) < b.rate(ServiceId(1)));
    }
}
