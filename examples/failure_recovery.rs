//! Pod-failure adaptation (the paper's Figure 18 scenario): 25 of 35
//! ts-station pods die at t = 50 s. Without overload control the whole
//! application collapses until replacements arrive; TopFull clamps the
//! load to what the surviving 10 pods can serve.
//!
//! ```text
//! cargo run --release --example failure_recovery
//! ```

use topfull_suite::apps::TrainTicket;
use topfull_suite::cluster::failure::FailureSpec;
use topfull_suite::cluster::{
    Controller, Engine, EngineConfig, Harness, NoControl, OpenLoopWorkload,
};
use topfull_suite::simnet::{SimDuration, SimTime};
use topfull_suite::topfull::{TopFull, TopFullConfig};

fn engine(seed: u64) -> Engine {
    let mut tt = TrainTicket::build();
    // 35 slow pods put ts-station near capacity under this workload (the
    // paper's deployment shape), so losing 25 is a 70% capacity cut.
    tt.topology.service_mut(tt.station).replicas = 35;
    tt.topology.service_mut(tt.station).pod_speed = 0.1;
    let rates: Vec<(topfull_suite::cluster::ApiId, f64)> =
        tt.apis().iter().map(|a| (*a, 600.0)).collect();
    let mut e = Engine::new(
        tt.topology.clone(),
        EngineConfig {
            seed,
            // Replacements take 90 s to schedule and become ready.
            pod_startup: SimDuration::from_secs(90),
            ..EngineConfig::default()
        },
        Box::new(OpenLoopWorkload::constant(rates)),
    );
    e.inject_failures(vec![FailureSpec {
        at: SimTime::from_secs(50),
        service: tt.station,
        pods: 25,
    }]);
    e
}

fn run(label: &str, controller: Box<dyn Controller>) -> Vec<(f64, f64)> {
    let mut h = Harness::new(engine(18), controller);
    h.run_for_secs(220);
    let series = h.result().total_goodput_series();
    let during = h.result().mean_total_goodput(60.0, 140.0);
    let after = h.result().mean_total_goodput(160.0, 220.0);
    println!(
        "{label:<14} goodput during failure: {during:>6.0} rps   after recovery: {after:>6.0} rps"
    );
    series
}

fn main() {
    println!("killing 25/35 ts-station pods at t=50s (replacements ready ≈t=140s)\n");
    let none = run("no control", Box::new(NoControl));
    // The cached RL policy recovers limits far faster than the MIMD
    // fallback once replacement pods land (run `figures train` once).
    let cfg = match topfull_suite::rl::policy::PolicyValue::load(std::path::Path::new(
        "artifacts/models/transfer_tt.json",
    )) {
        Ok(p) => TopFullConfig::default().with_rl(p),
        Err(_) => TopFullConfig::default().with_mimd(),
    };
    let tf = run("TopFull", Box::new(TopFull::new(cfg)));

    println!("\ntimeline (total goodput, rps):");
    println!("{:>5} {:>12} {:>12}", "t(s)", "no-control", "topfull");
    for i in (0..none.len()).step_by(10) {
        println!("{:>5.0} {:>12.0} {:>12.0}", none[i].0, none[i].1, tf[i].1);
    }
}
