//! Online Boutique under a traffic surge, with and without TopFull —
//! the scenario the paper's introduction motivates (the "success
//! disaster": a sudden user influx crash-loops the weakest service).
//!
//! Uses the cached Sim2Real policy when `artifacts/models/` exists
//! (create it once with `figures train`), otherwise pre-trains one on
//! the paper's graph simulator; then runs the surge with the
//! Kubernetes-style autoscaler alone versus autoscaler + TopFull.
//!
//! ```text
//! cargo run --release --example boutique_surge
//! ```

use topfull_suite::apps::OnlineBoutique;
use topfull_suite::cluster::autoscaler::HpaConfig;
use topfull_suite::cluster::{
    ClosedLoopWorkload, Controller, Engine, EngineConfig, Harness, NoControl, RateSchedule,
};
use topfull_suite::rl::graph_env::GraphEnv;
use topfull_suite::rl::ppo::PpoConfig;
use topfull_suite::rl::trainer::{Trainer, TrainerConfig};
use topfull_suite::simnet::{SimDuration, SimTime};
use topfull_suite::topfull::{TopFull, TopFullConfig};

fn engine(seed: u64) -> (OnlineBoutique, Engine) {
    let ob = OnlineBoutique::build();
    // 400 users surging to 8 000 between t=20 s and t=200 s; each user
    // issues ~1 request/s across the five APIs, Locust-style. A finite
    // VM pool and 30 s pod startup make the autoscaler realistically
    // slow (the Fig. 15 setup).
    let weights = ob.apis().iter().map(|a| (*a, 1.0)).collect();
    let users = RateSchedule::surge(
        400.0,
        8000.0,
        SimTime::from_secs(20),
        SimTime::from_secs(200),
    );
    let w = ClosedLoopWorkload::new(weights, users, SimDuration::from_secs(1));
    let mut e = Engine::new(
        ob.topology.clone(),
        EngineConfig {
            seed,
            pod_startup: SimDuration::from_secs(30),
            ..EngineConfig::default()
        },
        Box::new(w),
    );
    e.set_vm_pool(topfull_suite::cluster::autoscaler::VmPoolConfig {
        vcpus_per_vm: 48,
        initial_vms: 1,
        max_vms: 10,
        vm_startup: SimDuration::from_secs(40),
        vcpus_per_pod: 1.0,
    });
    e.enable_hpa(HpaConfig::default());
    (ob, e)
}

fn run(label: &str, controller: Box<dyn Controller>) -> (f64, u64) {
    let (_, e) = engine(7);
    let mut h = Harness::new(e, controller);
    h.run_for_secs(240);
    let crashes = h.engine.crash_events;
    let goodput = h.result().mean_total_goodput(20.0, 200.0);
    println!("{label:<22} goodput during surge: {goodput:>7.0} rps   pod crashes: {crashes}");
    (goodput, crashes)
}

fn main() {
    // Prefer the cached Sim2Real policy (created by `figures train`);
    // otherwise pre-train one here — a few minutes of CPU.
    let policy = match topfull_suite::rl::policy::PolicyValue::load(std::path::Path::new(
        "artifacts/models/transfer_ob.json",
    )) {
        Ok(p) => {
            println!("using the cached Transfer-OB policy\n");
            p
        }
        Err(_) => {
            println!("no cached policy; pre-training on the graph simulator (minutes)…");
            let mut trainer = Trainer::new(TrainerConfig {
                ppo: PpoConfig::fast(),
                episodes: 4000,
                checkpoint_every: 200,
                validation_episodes: 12,
                workers: 8,
                seed: 42,
            });
            let report = trainer.train(GraphEnv::new);
            println!(
                "trained {} episodes (best validation reward {:.2})\n",
                report.episodes_run, report.best_validation_reward
            );
            report.best_model
        }
    };

    let (solo, solo_crashes) = run("autoscaler alone", Box::new(NoControl));
    let (with_tf, tf_crashes) = run(
        "autoscaler + TopFull",
        Box::new(TopFull::new(TopFullConfig::default().with_rl(policy))),
    );
    println!(
        "\nTopFull gain: {:.2}x  (paper reports 3.91x on this scenario)",
        with_tf / solo.max(1.0)
    );
    println!("crash-loop events: {solo_crashes} without control vs {tf_crashes} with TopFull");
}
