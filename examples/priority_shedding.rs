//! Business-priority shedding: when the cluster cannot serve everyone,
//! TopFull sacrifices the lowest-priority APIs first (Algorithm 1) while
//! DAGOR-style per-service shedding starves them completely.
//!
//! ```text
//! cargo run --release --example priority_shedding
//! ```

use topfull_suite::apps::OnlineBoutique;
use topfull_suite::baselines::{Dagor, DagorConfig};
use topfull_suite::cluster::{Engine, EngineConfig, Harness, NoControl, OpenLoopWorkload};
use topfull_suite::topfull::{TopFull, TopFullConfig};

fn engine(seed: u64) -> (OnlineBoutique, Engine) {
    let mut ob = OnlineBoutique::build();
    // Assign business priorities (lower = more important):
    // postcheckout > getproduct > getcart > postcart, then overload all
    // four APIs simultaneously.
    for (i, api) in [ob.postcheckout, ob.getproduct, ob.getcart, ob.postcart]
        .into_iter()
        .enumerate()
    {
        ob.topology.api_mut(api).business =
            topfull_suite::cluster::types::BusinessPriority(i as u8);
    }
    let rates = vec![
        (ob.postcheckout, 900.0),
        (ob.getproduct, 700.0),
        (ob.getcart, 700.0),
        (ob.postcart, 700.0),
    ];
    let w = OpenLoopWorkload::constant(rates);
    let e = Engine::new(
        ob.topology.clone(),
        EngineConfig {
            seed,
            ..EngineConfig::default()
        },
        Box::new(w),
    );
    (ob, e)
}

fn report(label: &str, ob: &OnlineBoutique, h: &Harness) {
    let r = h.result();
    let apis = [ob.postcheckout, ob.getproduct, ob.getcart, ob.postcart];
    let names = ["postcheckout", "getproduct", "getcart", "postcart"];
    println!("\n{label}");
    for (api, name) in apis.iter().zip(names) {
        let g = r.mean_goodput_api(*api, 40.0, 120.0);
        let bar = "#".repeat((g / 12.0) as usize);
        println!("  {name:<14} {g:>6.0} rps  {bar}");
    }
}

fn main() {
    // DAGOR: per-service admission thresholds shed low priorities at
    // every microservice independently.
    let (ob, mut e) = engine(11);
    e.set_admission(Box::new(Dagor::new(
        e.topology().num_services(),
        DagorConfig::default(),
    )));
    let mut dagor = Harness::new(e, Box::new(NoControl));
    dagor.run_for_secs(120);
    report("DAGOR (per-service priority shedding)", &ob, &dagor);

    // TopFull: uses the cached RL policy when present (run
    // `figures train` to create it), else the MIMD fallback.
    let (ob2, e2) = engine(11);
    let policy = topfull_suite::rl::policy::PolicyValue::load(std::path::Path::new(
        "artifacts/models/transfer_ob.json",
    ));
    let cfg = match policy {
        Ok(p) => {
            println!(
                "
(using the cached RL policy)"
            );
            TopFullConfig::default().with_rl(p)
        }
        Err(_) => {
            println!(
                "
(no cached RL policy; using the MIMD fallback)"
            );
            TopFullConfig::default().with_mimd()
        }
    };
    let tf = TopFull::new(cfg);
    let mut topfull = Harness::new(e2, Box::new(tf));
    topfull.run_for_secs(120);
    report("TopFull (API-wise entry control)", &ob2, &topfull);

    let d = dagor.result().mean_total_goodput(40.0, 120.0);
    let t = topfull.result().mean_total_goodput(40.0, 120.0);
    println!(
        "\ntotal goodput: DAGOR {d:.0} rps vs TopFull {t:.0} rps ({:.2}x)",
        t / d.max(1.0)
    );
}
