//! Quickstart: build a small microservice app, overload it, and watch
//! TopFull hold goodput at the bottleneck capacity.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use topfull_suite::cluster::{
    ApiSpec, CallNode, Engine, EngineConfig, Harness, OpenLoopWorkload, ServiceSpec, Topology,
};
use topfull_suite::simnet::SimDuration;
use topfull_suite::topfull::{TopFull, TopFullConfig};

fn main() {
    // A two-tier application: frontend (plentiful) → backend (1 pod,
    // 10 ms per call ⇒ ~100 requests/s of capacity).
    let mut topo = Topology::new("quickstart");
    let frontend = topo.add_service(ServiceSpec::new("frontend", 4));
    // A bounded queue (≈2.5 s of work) keeps overload visible in latency
    // without hiding it behind tens of seconds of backlog.
    let backend = topo.add_service(ServiceSpec::new("backend", 1).queue_capacity(256));
    let api = topo.add_api(ApiSpec::single(
        "get",
        CallNode::with_children(
            frontend,
            SimDuration::from_millis(1),
            vec![CallNode::leaf(backend, SimDuration::from_millis(10))],
        ),
    ));

    // Offer 300 requests/s — a 3× overload of the backend.
    let workload = OpenLoopWorkload::constant(vec![(api, 300.0)]);
    let engine = Engine::new(topo, EngineConfig::default(), Box::new(workload));

    // TopFull with the built-in MIMD rate controller (no trained RL
    // model required for a quickstart; see the other examples for RL).
    let controller = TopFull::new(TopFullConfig::default().with_mimd());
    let mut harness = Harness::new(engine, Box::new(controller));

    println!("t(s)  offered(rps)  goodput(rps)  rate-limit(rps)");
    for step in 1..=12u64 {
        harness.run_until(topfull_suite::simnet::SimTime::from_secs(step * 10));
        let s = harness.result().samples.last().expect("samples");
        let limit = if s.rate_limit[0].is_finite() {
            format!("{:.0}", s.rate_limit[0])
        } else {
            "none".to_string()
        };
        println!(
            "{:>4}  {:>12.0}  {:>12.0}  {:>15}",
            step * 10,
            s.offered[0],
            s.goodput[0],
            limit
        );
    }
    let late = harness.result().mean_total_goodput(60.0, 120.0);
    println!("\nsteady-state goodput ≈ {late:.0} rps (backend capacity ≈ 100 rps)");
    assert!(late > 60.0, "TopFull should hold goodput near capacity");
}
