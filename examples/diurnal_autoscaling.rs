//! Diurnal load with an autoscaler: overload control covers the gaps.
//!
//! Load on real services breathes over the day. The HPA follows the
//! curve, but every upswing outruns provisioning for a while — exactly
//! the transient (§1: "autoscalers take several seconds to minutes to
//! provision additional resources") TopFull exists to cover. This
//! example runs two sinusoidal load cycles against Online Boutique and
//! compares the autoscaler alone with autoscaler + TopFull.
//!
//! ```text
//! cargo run --release --example diurnal_autoscaling
//! ```

use topfull_suite::apps::OnlineBoutique;
use topfull_suite::cluster::autoscaler::HpaConfig;
use topfull_suite::cluster::{
    ClosedLoopWorkload, Controller, Engine, EngineConfig, Harness, NoControl, RateSchedule,
};
use topfull_suite::simnet::{SimDuration, SimTime};
use topfull_suite::topfull::{TopFull, TopFullConfig};

const PERIOD_S: u64 = 150;
const RUN_S: u64 = 320;

fn engine(seed: u64) -> Engine {
    let ob = OnlineBoutique::build();
    let weights = ob.apis().iter().map(|a| (*a, 1.0)).collect();
    // 300 → 6000 users, two full cycles.
    let users = RateSchedule::diurnal(
        300.0,
        6000.0,
        SimDuration::from_secs(PERIOD_S),
        SimDuration::from_secs(RUN_S),
        SimDuration::from_secs(5),
    );
    let w = ClosedLoopWorkload::new(weights, users, SimDuration::from_secs(1));
    let mut e = Engine::new(
        ob.topology.clone(),
        EngineConfig {
            seed,
            pod_startup: SimDuration::from_secs(30),
            ..EngineConfig::default()
        },
        Box::new(w),
    );
    e.enable_hpa(HpaConfig::default());
    e
}

struct Outcome {
    overall: f64,
    /// Goodput during the upswings, where provisioning lags demand.
    upswings: f64,
    crashes: u64,
    series: Vec<(f64, f64)>,
}

fn run(controller: Box<dyn Controller>) -> Outcome {
    let mut h = Harness::new(engine(31), controller);
    h.run_until(SimTime::from_secs(RUN_S));
    let overall = h.result().mean_total_goodput(10.0, RUN_S as f64);
    // The first upswing hits a cold deployment — the window where the
    // HPA is furthest behind and crash-loops bite.
    let upswings = h.result().mean_total_goodput(50.0, 110.0);
    Outcome {
        overall,
        upswings,
        crashes: h.engine.crash_events,
        series: h.result().total_goodput_series(),
    }
}

fn main() {
    let solo = run(Box::new(NoControl));
    // Cyclic load wants eager limit release: once the trough arrives,
    // drop the limit entirely so the next upswing starts unthrottled.
    let cfg = TopFullConfig {
        release_headroom: 1.3,
        release_after: 3,
        ..TopFullConfig::default()
    }
    .with_mimd();
    let tf = run(Box::new(TopFull::new(cfg)));
    println!("two diurnal cycles (300–6000 users, period {PERIOD_S}s):\n");
    println!(
        "{:<22} {:>10} {:>12} {:>12}",
        "", "overall", "cold upswing", "pod crashes"
    );
    println!(
        "{:<22} {:>10.0} {:>12.0} {:>12}",
        "autoscaler alone", solo.overall, solo.upswings, solo.crashes
    );
    println!(
        "{:<22} {:>10.0} {:>12.0} {:>12}",
        "autoscaler + TopFull", tf.overall, tf.upswings, tf.crashes
    );
    println!("\ngoodput through the cycles (rps):");
    println!("{:>5} {:>10} {:>10}", "t(s)", "solo", "topfull");
    for i in (0..solo.series.len()).step_by(20) {
        println!(
            "{:>5.0} {:>10.0} {:>10.0}",
            solo.series[i].0, solo.series[i].1, tf.series[i].1
        );
    }
    println!(
        "\ncold-upswing coverage: {:.2}x, crash-loops {} → {}; once the HPA has\n\
         warmed up, uncontrolled queueing can ride closer to the edge, so the\n\
         controller's utilization margin costs a little overall — the RL policy\n\
         (see boutique_surge.rs) tracks allocations faster than this MIMD demo",
        tf.upswings / solo.upswings.max(1.0),
        solo.crashes,
        tf.crashes
    );
}
