//! Learned execution paths: run TopFull on paths discovered from
//! distributed-tracing spans instead of static configuration.
//!
//! In production (and in the paper, §4.1/§5) nobody hands the controller
//! a topology file — Istio traces reveal which services each API
//! actually touches. This example enables the engine's tracing collector,
//! shows the per-API paths being learned as traffic flows (including a
//! rarely-taken branch appearing late), and runs TopFull against the
//! learned paths under an overload.
//!
//! ```text
//! cargo run --release --example trace_learning
//! ```

use topfull_suite::cluster::{
    ApiSpec, CallNode, Engine, EngineConfig, Harness, OpenLoopWorkload, ServiceSpec, Topology,
};
use topfull_suite::simnet::{SimDuration, SimTime};
use topfull_suite::topfull::{TopFull, TopFullConfig};

fn main() {
    // A branching API: 95% of requests take the cheap path, 5% hit a
    // slow reporting backend.
    let mut topo = Topology::new("traced-app");
    let front = topo.add_service(ServiceSpec::new("frontend", 4));
    let cache = topo.add_service(ServiceSpec::new("cache", 2));
    let reports = topo.add_service(ServiceSpec::new("reports", 1));
    let api = topo.add_api(ApiSpec::branching(
        "query",
        vec![
            (
                0.95,
                CallNode::with_children(
                    front,
                    SimDuration::from_millis(1),
                    vec![CallNode::leaf(cache, SimDuration::from_millis(2))],
                ),
            ),
            (
                0.05,
                CallNode::with_children(
                    front,
                    SimDuration::from_millis(1),
                    vec![CallNode::leaf(reports, SimDuration::from_millis(20))],
                ),
            ),
        ],
    ));

    let w = OpenLoopWorkload::constant(vec![(api, 400.0)]);
    let engine = Engine::new(
        topo,
        EngineConfig {
            learn_paths: true, // ← paths come from spans, not config
            ..EngineConfig::default()
        },
        Box::new(w),
    );
    let controller = TopFull::new(TopFullConfig::default().with_mimd());
    let mut h = Harness::new(engine, Box::new(controller));

    println!("learning the execution path of 'query' from spans:");
    let names = ["frontend", "cache", "reports"];
    for s in [1u64, 2, 3, 5, 10, 30] {
        h.run_until(SimTime::from_secs(s));
        let obs = h.engine.latest_observation().expect("tick").clone();
        let path: Vec<&str> = obs.api_paths[0]
            .iter()
            .map(|svc| names[svc.0 as usize])
            .collect();
        let spans = h
            .engine
            .trace_collector()
            .expect("tracing enabled")
            .spans_recorded();
        println!("  t={s:>2}s  spans={spans:>6}  learned path: {path:?}");
    }
    let final_path = h.engine.latest_observation().expect("ran").api_paths[0].len();
    println!("\nall {final_path} services on the (branching) path were discovered from traffic;");
    println!("TopFull clusters and rate-limits using exactly these learned paths.");
    let goodput = h.result().mean_total_goodput(20.0, 30.0);
    println!("steady goodput under control: {goodput:.0} rps");
}
